//! Access-control lists over identities and groups.
//!
//! DLHub models are published with fine-grained visibility: the CANDLE
//! project (§VI-A) shares in-development models with "a subset of
//! selected users prior to their general release", then flips them
//! public. [`Acl`] captures exactly that lifecycle.

use crate::identity::IdentityId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Who may see / invoke a resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    /// Anyone, authenticated or not.
    Public,
    /// Only the listed identities (owners are always included by the
    /// enclosing [`Acl`]).
    Restricted,
}

/// An access-control policy: owners, explicitly allowed identities and
/// allowed groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Acl {
    /// Overall visibility.
    pub visibility: Visibility,
    /// Owning identities; always allowed, and only owners may edit.
    pub owners: BTreeSet<IdentityId>,
    /// Additional identities allowed when `Restricted`.
    pub allowed_users: BTreeSet<IdentityId>,
    /// Group names allowed when `Restricted`.
    pub allowed_groups: BTreeSet<String>,
}

impl Acl {
    /// A public ACL owned by `owner`.
    pub fn public(owner: IdentityId) -> Self {
        Acl {
            visibility: Visibility::Public,
            owners: BTreeSet::from([owner]),
            allowed_users: BTreeSet::new(),
            allowed_groups: BTreeSet::new(),
        }
    }

    /// A restricted ACL owned by `owner` with no other members yet.
    pub fn restricted(owner: IdentityId) -> Self {
        Acl {
            visibility: Visibility::Restricted,
            owners: BTreeSet::from([owner]),
            allowed_users: BTreeSet::new(),
            allowed_groups: BTreeSet::new(),
        }
    }

    /// Allow an additional identity.
    pub fn allow_user(&mut self, id: IdentityId) -> &mut Self {
        self.allowed_users.insert(id);
        self
    }

    /// Allow a group.
    pub fn allow_group(&mut self, group: impl Into<String>) -> &mut Self {
        self.allowed_groups.insert(group.into());
        self
    }

    /// Make the resource public (the CANDLE "general release" flip).
    pub fn make_public(&mut self) -> &mut Self {
        self.visibility = Visibility::Public;
        self
    }

    /// Evaluate access for a caller described by their linked identity
    /// set and group memberships. Anonymous callers pass an empty
    /// identity slice.
    pub fn permits(&self, identities: &[IdentityId], groups: &[String]) -> bool {
        if self.visibility == Visibility::Public {
            return true;
        }
        identities
            .iter()
            .any(|id| self.owners.contains(id) || self.allowed_users.contains(id))
            || groups.iter().any(|g| self.allowed_groups.contains(g))
    }

    /// True if any of `identities` is an owner (may edit metadata,
    /// change the ACL, publish new versions).
    pub fn is_owner(&self, identities: &[IdentityId]) -> bool {
        identities.iter().any(|id| self.owners.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_permits_anonymous() {
        let acl = Acl::public(IdentityId(1));
        assert!(acl.permits(&[], &[]));
    }

    #[test]
    fn restricted_denies_strangers() {
        let acl = Acl::restricted(IdentityId(1));
        assert!(!acl.permits(&[IdentityId(2)], &[]));
        assert!(acl.permits(&[IdentityId(1)], &[]));
    }

    #[test]
    fn allowed_user_and_group_grant_access() {
        let mut acl = Acl::restricted(IdentityId(1));
        acl.allow_user(IdentityId(2)).allow_group("candle-testers");
        assert!(acl.permits(&[IdentityId(2)], &[]));
        assert!(acl.permits(&[IdentityId(3)], &["candle-testers".into()]));
        assert!(!acl.permits(&[IdentityId(3)], &["other".into()]));
    }

    #[test]
    fn linked_identity_grants_access() {
        let mut acl = Acl::restricted(IdentityId(1));
        acl.allow_user(IdentityId(5));
        // Caller holds two linked identities; the second is allowed.
        assert!(acl.permits(&[IdentityId(9), IdentityId(5)], &[]));
    }

    #[test]
    fn make_public_flips_visibility() {
        let mut acl = Acl::restricted(IdentityId(1));
        assert!(!acl.permits(&[IdentityId(2)], &[]));
        acl.make_public();
        assert!(acl.permits(&[IdentityId(2)], &[]));
    }

    #[test]
    fn ownership_check() {
        let acl = Acl::restricted(IdentityId(1));
        assert!(acl.is_owner(&[IdentityId(1)]));
        assert!(!acl.is_owner(&[IdentityId(2)]));
    }
}
