//! Identities and identity providers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identity id, unique within an [`crate::AuthService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IdentityId(pub u64);

impl fmt::Display for IdentityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id-{}", self.0)
    }
}

/// An identity issued by one provider (e.g. `kchard@uchicago.edu`,
/// `0000-0002-…@orcid.org`). A person may hold several, linked
/// together in the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Identity {
    /// Service-assigned id.
    pub id: IdentityId,
    /// Provider domain this identity belongs to.
    pub provider: String,
    /// Username at the provider.
    pub username: String,
    /// Display name used to pre-complete publication metadata
    /// (DLHub fills creator fields from profile information, §IV-D).
    pub display_name: String,
}

impl Identity {
    /// Canonical `user@provider` form.
    pub fn qualified_name(&self) -> String {
        format!("{}@{}", self.username, self.provider)
    }
}

/// A registered identity provider (campus, ORCID, Google, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentityProvider {
    /// Provider domain, e.g. `uchicago.edu`.
    pub domain: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_name_formats() {
        let id = Identity {
            id: IdentityId(1),
            provider: "orcid.org".into(),
            username: "0000-0001".into(),
            display_name: "A Researcher".into(),
        };
        assert_eq!(id.qualified_name(), "0000-0001@orcid.org");
    }

    #[test]
    fn identity_id_display() {
        assert_eq!(IdentityId(7).to_string(), "id-7");
    }
}
