#![warn(missing_docs)]

//! # dlhub-auth
//!
//! A Globus-Auth-like identity and access-management substrate.
//!
//! DLHub (§IV-D) brokers every operation through Globus Auth: users
//! authenticate via one of hundreds of identity providers, the
//! Management Service is registered as a *resource server* with its own
//! scope, and short-term access tokens let the service act on the
//! user's behalf (profile lookup, linked identities, data transfer).
//! Model visibility is controlled with fine-grained ACLs (the CANDLE
//! use case, §VI-A).
//!
//! This crate reproduces that decision structure:
//!
//! * [`IdentityProvider`]s issue [`Identity`]s; identities belonging to
//!   the same person can be **linked**.
//! * [`AuthService`] registers resource servers and their scopes,
//!   issues expiring bearer [`Token`]s, and answers **introspection**
//!   queries (who is this, which scopes, which linked identities).
//! * [`Acl`] policies (public / users / groups) are evaluated against
//!   the full linked-identity set, so sharing with any of a user's
//!   identities grants access.
//!
//! ```
//! use dlhub_auth::{AuthService, Scope};
//!
//! let auth = AuthService::new();
//! auth.register_provider("uchicago.edu");
//! let user = auth.register_identity("uchicago.edu", "kchard").unwrap();
//! auth.register_resource_server("dlhub", &["dlhub:serve", "dlhub:publish"]);
//! let token = auth
//!     .issue_token(user, &[Scope::new("dlhub", "dlhub:serve")])
//!     .unwrap();
//! let info = auth.introspect(&token).unwrap();
//! assert!(info.has_scope(&Scope::new("dlhub", "dlhub:serve")));
//! ```

pub mod acl;
pub mod identity;
pub mod service;
pub mod token;

pub use acl::{Acl, Visibility};
pub use identity::{Identity, IdentityId, IdentityProvider};
pub use service::{AuthError, AuthService};
pub use token::{Scope, Token, TokenInfo};
