//! The authentication/authorization service.

use crate::identity::{Identity, IdentityId, IdentityProvider};
use crate::token::{Scope, Token, TokenInfo};
use parking_lot::RwLock;
use rand::distributions::Alphanumeric;
use rand::{thread_rng, Rng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors from the auth service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The identity provider is not registered.
    UnknownProvider(String),
    /// The identity id is not registered.
    UnknownIdentity(IdentityId),
    /// The resource server is not registered.
    UnknownResourceServer(String),
    /// The scope is not registered under its resource server.
    UnknownScope(Scope),
    /// The token is unknown or revoked.
    InvalidToken,
    /// The token exists but has expired.
    ExpiredToken,
    /// `username@provider` already exists.
    DuplicateIdentity(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownProvider(p) => write!(f, "unknown identity provider: {p}"),
            AuthError::UnknownIdentity(i) => write!(f, "unknown identity: {i}"),
            AuthError::UnknownResourceServer(r) => write!(f, "unknown resource server: {r}"),
            AuthError::UnknownScope(s) => write!(f, "unknown scope: {s}"),
            AuthError::InvalidToken => write!(f, "invalid token"),
            AuthError::ExpiredToken => write!(f, "expired token"),
            AuthError::DuplicateIdentity(q) => write!(f, "identity already exists: {q}"),
        }
    }
}

impl std::error::Error for AuthError {}

struct StoredToken {
    info: TokenInfo,
    revoked: bool,
}

#[derive(Default)]
struct State {
    providers: HashMap<String, IdentityProvider>,
    identities: HashMap<IdentityId, Identity>,
    by_qualified: HashMap<String, IdentityId>,
    /// Union-find-free linkage: each identity maps to a link-set id;
    /// all identities in a set belong to the same person.
    link_set: HashMap<IdentityId, u64>,
    resource_servers: HashMap<String, HashSet<String>>,
    tokens: HashMap<String, StoredToken>,
    groups: HashMap<String, HashSet<IdentityId>>,
}

/// Globus-Auth-like service: providers, identities, linking, resource
/// servers, scoped tokens, groups. Cheap to clone.
#[derive(Clone)]
pub struct AuthService {
    state: Arc<RwLock<State>>,
    default_ttl: Duration,
}

static NEXT_IDENTITY: AtomicU64 = AtomicU64::new(1);
static NEXT_LINK_SET: AtomicU64 = AtomicU64::new(1);

impl AuthService {
    /// Create a service whose tokens live 10 minutes by default
    /// ("short-term access tokens", §IV-D).
    pub fn new() -> Self {
        Self::with_token_ttl(Duration::from_secs(600))
    }

    /// Create a service with an explicit default token TTL.
    pub fn with_token_ttl(default_ttl: Duration) -> Self {
        AuthService {
            state: Arc::new(RwLock::new(State::default())),
            default_ttl,
        }
    }

    /// Register an identity provider domain.
    pub fn register_provider(&self, domain: &str) {
        self.state.write().providers.insert(
            domain.to_string(),
            IdentityProvider {
                domain: domain.to_string(),
            },
        );
    }

    /// Register `username` at `provider`, returning the new identity id.
    pub fn register_identity(
        &self,
        provider: &str,
        username: &str,
    ) -> Result<IdentityId, AuthError> {
        let mut st = self.state.write();
        if !st.providers.contains_key(provider) {
            return Err(AuthError::UnknownProvider(provider.to_string()));
        }
        let qualified = format!("{username}@{provider}");
        if st.by_qualified.contains_key(&qualified) {
            return Err(AuthError::DuplicateIdentity(qualified));
        }
        let id = IdentityId(NEXT_IDENTITY.fetch_add(1, Ordering::Relaxed));
        st.identities.insert(
            id,
            Identity {
                id,
                provider: provider.to_string(),
                username: username.to_string(),
                display_name: username.to_string(),
            },
        );
        st.by_qualified.insert(qualified, id);
        let set = NEXT_LINK_SET.fetch_add(1, Ordering::Relaxed);
        st.link_set.insert(id, set);
        Ok(id)
    }

    /// Link two identities as belonging to the same person; their link
    /// sets merge.
    pub fn link_identities(&self, a: IdentityId, b: IdentityId) -> Result<(), AuthError> {
        let mut st = self.state.write();
        let sa = *st.link_set.get(&a).ok_or(AuthError::UnknownIdentity(a))?;
        let sb = *st.link_set.get(&b).ok_or(AuthError::UnknownIdentity(b))?;
        if sa != sb {
            for set in st.link_set.values_mut() {
                if *set == sb {
                    *set = sa;
                }
            }
        }
        Ok(())
    }

    /// All identities linked with `id` (including `id` itself).
    pub fn linked_identities(&self, id: IdentityId) -> Result<Vec<IdentityId>, AuthError> {
        let st = self.state.read();
        let set = *st.link_set.get(&id).ok_or(AuthError::UnknownIdentity(id))?;
        let mut out: Vec<IdentityId> = st
            .link_set
            .iter()
            .filter(|(_, s)| **s == set)
            .map(|(i, _)| *i)
            .collect();
        out.sort();
        Ok(out)
    }

    /// Look up identity details.
    pub fn identity(&self, id: IdentityId) -> Result<Identity, AuthError> {
        self.state
            .read()
            .identities
            .get(&id)
            .cloned()
            .ok_or(AuthError::UnknownIdentity(id))
    }

    /// Resolve `username@provider` to an id.
    pub fn lookup(&self, qualified: &str) -> Option<IdentityId> {
        self.state.read().by_qualified.get(qualified).copied()
    }

    /// Register a resource server and the scopes it owns.
    pub fn register_resource_server(&self, name: &str, scopes: &[&str]) {
        let mut st = self.state.write();
        st.resource_servers.insert(
            name.to_string(),
            scopes.iter().map(|s| s.to_string()).collect(),
        );
    }

    /// Issue a bearer token for `identity` carrying `scopes`, valid for
    /// the default TTL.
    pub fn issue_token(&self, identity: IdentityId, scopes: &[Scope]) -> Result<Token, AuthError> {
        self.issue_token_ttl(identity, scopes, self.default_ttl, false)
    }

    /// Issue a *dependent* token: short-term credentials a resource
    /// server uses to act on the user's behalf (§IV-D).
    pub fn issue_dependent_token(
        &self,
        identity: IdentityId,
        scopes: &[Scope],
        ttl: Duration,
    ) -> Result<Token, AuthError> {
        self.issue_token_ttl(identity, scopes, ttl, true)
    }

    fn issue_token_ttl(
        &self,
        identity: IdentityId,
        scopes: &[Scope],
        ttl: Duration,
        dependent: bool,
    ) -> Result<Token, AuthError> {
        let linked = self.linked_identities(identity)?;
        {
            let st = self.state.read();
            for scope in scopes {
                let server_scopes =
                    st.resource_servers
                        .get(&scope.resource_server)
                        .ok_or_else(|| {
                            AuthError::UnknownResourceServer(scope.resource_server.clone())
                        })?;
                if !server_scopes.contains(&scope.name) {
                    return Err(AuthError::UnknownScope(scope.clone()));
                }
            }
        }
        let value: String = thread_rng()
            .sample_iter(&Alphanumeric)
            .take(32)
            .map(char::from)
            .collect();
        let info = TokenInfo {
            identity,
            linked_identities: linked,
            scopes: scopes.to_vec(),
            expires_at: Instant::now() + ttl,
            dependent,
        };
        self.state.write().tokens.insert(
            value.clone(),
            StoredToken {
                info,
                revoked: false,
            },
        );
        Ok(Token(value))
    }

    /// Introspect a token: validate it and return the caller's
    /// identity, linked identities and scopes.
    pub fn introspect(&self, token: &Token) -> Result<TokenInfo, AuthError> {
        let st = self.state.read();
        let stored = st.tokens.get(&token.0).ok_or(AuthError::InvalidToken)?;
        if stored.revoked {
            return Err(AuthError::InvalidToken);
        }
        if stored.info.expired() {
            return Err(AuthError::ExpiredToken);
        }
        Ok(stored.info.clone())
    }

    /// Validate that `token` is live and carries `scope`; returns the
    /// introspection on success. This is the single authorization
    /// gate resource servers call.
    pub fn authorize(&self, token: &Token, scope: &Scope) -> Result<TokenInfo, AuthError> {
        let info = self.introspect(token)?;
        if info.has_scope(scope) {
            Ok(info)
        } else {
            Err(AuthError::UnknownScope(scope.clone()))
        }
    }

    /// Revoke a token immediately.
    pub fn revoke(&self, token: &Token) {
        if let Some(stored) = self.state.write().tokens.get_mut(&token.0) {
            stored.revoked = true;
        }
    }

    /// Create a group (idempotent).
    pub fn create_group(&self, name: &str) {
        self.state
            .write()
            .groups
            .entry(name.to_string())
            .or_default();
    }

    /// Add an identity to a group (creating the group if needed).
    pub fn add_to_group(&self, group: &str, id: IdentityId) -> Result<(), AuthError> {
        let mut st = self.state.write();
        if !st.identities.contains_key(&id) {
            return Err(AuthError::UnknownIdentity(id));
        }
        st.groups.entry(group.to_string()).or_default().insert(id);
        Ok(())
    }

    /// Groups an identity (or any of its linked identities) belongs to.
    pub fn groups_of(&self, id: IdentityId) -> Result<Vec<String>, AuthError> {
        let linked: HashSet<IdentityId> = self.linked_identities(id)?.into_iter().collect();
        let st = self.state.read();
        let mut out: Vec<String> = st
            .groups
            .iter()
            .filter(|(_, members)| members.iter().any(|m| linked.contains(m)))
            .map(|(g, _)| g.clone())
            .collect();
        out.sort();
        Ok(out)
    }
}

impl Default for AuthService {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for AuthService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("AuthService")
            .field("providers", &st.providers.len())
            .field("identities", &st.identities.len())
            .field("tokens", &st.tokens.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> (AuthService, IdentityId) {
        let auth = AuthService::new();
        auth.register_provider("uchicago.edu");
        auth.register_resource_server("dlhub", &["dlhub:serve", "dlhub:publish"]);
        let id = auth.register_identity("uchicago.edu", "alice").unwrap();
        (auth, id)
    }

    #[test]
    fn register_and_lookup_identity() {
        let (auth, id) = svc();
        assert_eq!(auth.lookup("alice@uchicago.edu"), Some(id));
        assert_eq!(auth.identity(id).unwrap().username, "alice");
    }

    #[test]
    fn duplicate_identity_rejected() {
        let (auth, _) = svc();
        assert!(matches!(
            auth.register_identity("uchicago.edu", "alice"),
            Err(AuthError::DuplicateIdentity(_))
        ));
    }

    #[test]
    fn unknown_provider_rejected() {
        let (auth, _) = svc();
        assert!(matches!(
            auth.register_identity("nowhere.example", "bob"),
            Err(AuthError::UnknownProvider(_))
        ));
    }

    #[test]
    fn token_issue_and_introspect() {
        let (auth, id) = svc();
        let scope = Scope::new("dlhub", "dlhub:serve");
        let token = auth.issue_token(id, std::slice::from_ref(&scope)).unwrap();
        let info = auth.introspect(&token).unwrap();
        assert_eq!(info.identity, id);
        assert!(info.has_scope(&scope));
        assert!(!info.dependent);
    }

    #[test]
    fn unknown_scope_rejected_at_issue() {
        let (auth, id) = svc();
        let err = auth
            .issue_token(id, &[Scope::new("dlhub", "dlhub:admin")])
            .unwrap_err();
        assert!(matches!(err, AuthError::UnknownScope(_)));
        let err = auth
            .issue_token(id, &[Scope::new("elsewhere", "x")])
            .unwrap_err();
        assert!(matches!(err, AuthError::UnknownResourceServer(_)));
    }

    #[test]
    fn authorize_checks_scope() {
        let (auth, id) = svc();
        let serve = Scope::new("dlhub", "dlhub:serve");
        let publish = Scope::new("dlhub", "dlhub:publish");
        let token = auth.issue_token(id, std::slice::from_ref(&serve)).unwrap();
        assert!(auth.authorize(&token, &serve).is_ok());
        assert!(auth.authorize(&token, &publish).is_err());
    }

    #[test]
    fn expired_token_rejected() {
        let auth = AuthService::with_token_ttl(Duration::from_millis(1));
        auth.register_provider("p");
        auth.register_resource_server("dlhub", &["dlhub:serve"]);
        let id = auth.register_identity("p", "u").unwrap();
        let token = auth
            .issue_token(id, &[Scope::new("dlhub", "dlhub:serve")])
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            auth.introspect(&token).unwrap_err(),
            AuthError::ExpiredToken
        );
    }

    #[test]
    fn revoked_token_rejected() {
        let (auth, id) = svc();
        let token = auth
            .issue_token(id, &[Scope::new("dlhub", "dlhub:serve")])
            .unwrap();
        auth.revoke(&token);
        assert_eq!(
            auth.introspect(&token).unwrap_err(),
            AuthError::InvalidToken
        );
    }

    #[test]
    fn linking_merges_identity_sets() {
        let (auth, a) = svc();
        auth.register_provider("orcid.org");
        let b = auth.register_identity("orcid.org", "0000-0001").unwrap();
        let c = auth.register_identity("orcid.org", "0000-0002").unwrap();
        auth.link_identities(a, b).unwrap();
        auth.link_identities(b, c).unwrap();
        let linked = auth.linked_identities(a).unwrap();
        assert_eq!(linked.len(), 3);
        // Tokens report the full linked set.
        let token = auth
            .issue_token(a, &[Scope::new("dlhub", "dlhub:serve")])
            .unwrap();
        let info = auth.introspect(&token).unwrap();
        assert_eq!(info.linked_identities.len(), 3);
    }

    #[test]
    fn groups_include_linked_identities() {
        let (auth, a) = svc();
        auth.register_provider("orcid.org");
        let b = auth.register_identity("orcid.org", "0000-0003").unwrap();
        auth.link_identities(a, b).unwrap();
        auth.add_to_group("candle", b).unwrap();
        // Asking via the other linked identity still finds the group.
        assert_eq!(auth.groups_of(a).unwrap(), vec!["candle".to_string()]);
    }

    #[test]
    fn dependent_token_flagged() {
        let (auth, id) = svc();
        let token = auth
            .issue_dependent_token(
                id,
                &[Scope::new("dlhub", "dlhub:serve")],
                Duration::from_secs(5),
            )
            .unwrap();
        assert!(auth.introspect(&token).unwrap().dependent);
    }
}
