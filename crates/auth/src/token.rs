//! Bearer tokens, scopes and introspection results.

use crate::identity::IdentityId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// A scope is owned by a resource server and named within it, e.g. the
/// DLHub Management Service registers scope `dlhub:serve` (§IV-D).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scope {
    /// Resource server that owns the scope.
    pub resource_server: String,
    /// Scope name, conventionally `server:action`.
    pub name: String,
}

impl Scope {
    /// Construct a scope.
    pub fn new(resource_server: impl Into<String>, name: impl Into<String>) -> Self {
        Scope {
            resource_server: resource_server.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.resource_server, self.name)
    }
}

/// An opaque bearer token string. The value is random; all semantics
/// live server-side, exactly like Globus Auth opaque access tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token(pub String);

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid leaking full token material in logs.
        let shown = &self.0[..self.0.len().min(8)];
        write!(f, "tok-{shown}…")
    }
}

/// Result of token introspection: everything a resource server learns
/// about the caller.
#[derive(Debug, Clone)]
pub struct TokenInfo {
    /// Primary identity the token was issued to.
    pub identity: IdentityId,
    /// All identities linked to the primary one (including itself).
    pub linked_identities: Vec<IdentityId>,
    /// Scopes granted to the token.
    pub scopes: Vec<Scope>,
    /// Instant at which the token stops validating.
    pub expires_at: Instant,
    /// Whether this is a dependent token minted for a resource server
    /// acting on the user's behalf (e.g. the Management Service
    /// fetching model components from a Globus endpoint).
    pub dependent: bool,
}

impl TokenInfo {
    /// True if the token carries `scope`.
    pub fn has_scope(&self, scope: &Scope) -> bool {
        self.scopes.iter().any(|s| s == scope)
    }

    /// The tenant key a resource server should account this caller
    /// under: the *smallest* identity in the linked set. Linking is
    /// symmetric, so two tokens issued to different linked identities
    /// of the same person map to the same tenant — one human cannot
    /// multiply their quota by minting tokens under each alias.
    pub fn tenant(&self) -> IdentityId {
        self.linked_identities
            .iter()
            .copied()
            .min()
            .unwrap_or(self.identity)
    }

    /// Remaining validity; zero if expired.
    pub fn ttl(&self) -> Duration {
        self.expires_at.saturating_duration_since(Instant::now())
    }

    /// True once the expiry instant has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.expires_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_display_and_eq() {
        let s = Scope::new("dlhub", "dlhub:serve");
        assert_eq!(s.to_string(), "dlhub/dlhub:serve");
        assert_eq!(s, Scope::new("dlhub", "dlhub:serve"));
        assert_ne!(s, Scope::new("dlhub", "dlhub:publish"));
    }

    #[test]
    fn token_display_truncates() {
        let t = Token("abcdefghijklmnop".into());
        assert_eq!(t.to_string(), "tok-abcdefgh…");
    }

    #[test]
    fn token_info_scope_and_ttl() {
        let info = TokenInfo {
            identity: IdentityId(1),
            linked_identities: vec![IdentityId(1)],
            scopes: vec![Scope::new("dlhub", "dlhub:serve")],
            expires_at: Instant::now() + Duration::from_secs(60),
            dependent: false,
        };
        assert!(info.has_scope(&Scope::new("dlhub", "dlhub:serve")));
        assert!(!info.has_scope(&Scope::new("dlhub", "dlhub:publish")));
        assert!(!info.expired());
        assert!(info.ttl() > Duration::from_secs(50));
    }

    #[test]
    fn tenant_is_stable_across_linked_identities() {
        // Two tokens for the same person, issued under different linked
        // identities, must account to the same tenant key.
        let a = TokenInfo {
            identity: IdentityId(7),
            linked_identities: vec![IdentityId(7), IdentityId(3)],
            scopes: vec![],
            expires_at: Instant::now() + Duration::from_secs(60),
            dependent: false,
        };
        let b = TokenInfo {
            identity: IdentityId(3),
            linked_identities: vec![IdentityId(3), IdentityId(7)],
            scopes: vec![],
            expires_at: Instant::now() + Duration::from_secs(60),
            dependent: false,
        };
        assert_eq!(a.tenant(), b.tenant());
        assert_eq!(a.tenant(), IdentityId(3));
        // An unlinked identity is its own tenant.
        let solo = TokenInfo {
            identity: IdentityId(9),
            linked_identities: vec![IdentityId(9)],
            scopes: vec![],
            expires_at: Instant::now() + Duration::from_secs(60),
            dependent: false,
        };
        assert_eq!(solo.tenant(), IdentityId(9));
    }
}
