//! Property tests of identity linking and ACL evaluation.

use dlhub_auth::{Acl, AuthService, IdentityId, Scope};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identity linking forms equivalence classes: after an arbitrary
    /// sequence of link operations, membership is symmetric and
    /// transitive (every member of a set reports the same set).
    #[test]
    fn linking_forms_equivalence_classes(
        links in proptest::collection::vec((0usize..8, 0usize..8), 0..12)
    ) {
        let auth = AuthService::new();
        auth.register_provider("p");
        let ids: Vec<IdentityId> = (0..8)
            .map(|i| auth.register_identity("p", &format!("u{i}-{links:?}").replace([' ', ',', '(', ')', '[', ']'], "")).unwrap())
            .collect();
        for (a, b) in &links {
            auth.link_identities(ids[*a], ids[*b]).unwrap();
        }
        for &id in &ids {
            let set = auth.linked_identities(id).unwrap();
            prop_assert!(set.contains(&id), "reflexivity");
            for member in &set {
                let other_set = auth.linked_identities(*member).unwrap();
                prop_assert_eq!(&set, &other_set, "symmetry/transitivity");
            }
        }
    }

    /// ACL evaluation: a restricted ACL permits exactly the owners,
    /// allowed users, and allowed-group members — never anyone else.
    #[test]
    fn restricted_acl_is_exact(
        owner in 0u64..4,
        allowed in proptest::collection::btree_set(0u64..12, 0..5),
        caller in 0u64..12,
    ) {
        let mut acl = Acl::restricted(IdentityId(owner));
        for a in &allowed {
            acl.allow_user(IdentityId(*a));
        }
        let permitted = acl.permits(&[IdentityId(caller)], &[]);
        let expected = caller == owner || allowed.contains(&caller);
        prop_assert_eq!(permitted, expected);
        // Public always permits, regardless of caller.
        acl.make_public();
        prop_assert!(acl.permits(&[IdentityId(caller)], &[]));
        prop_assert!(acl.permits(&[], &[]));
    }
}

#[test]
fn tokens_issued_after_linking_carry_the_full_set() {
    let auth = AuthService::new();
    auth.register_provider("p");
    auth.register_resource_server("rs", &["s"]);
    let a = auth.register_identity("p", "a").unwrap();
    let b = auth.register_identity("p", "b").unwrap();
    let c = auth.register_identity("p", "c").unwrap();
    auth.link_identities(a, b).unwrap();
    let before = auth.issue_token(a, &[Scope::new("rs", "s")]).unwrap();
    assert_eq!(auth.introspect(&before).unwrap().linked_identities.len(), 2);
    // Linking after issuance does not retroactively grow old tokens
    // (they captured their linked set at issue time) …
    auth.link_identities(b, c).unwrap();
    assert_eq!(auth.introspect(&before).unwrap().linked_identities.len(), 2);
    // … but new tokens see all three.
    let after = auth.issue_token(a, &[Scope::new("rs", "s")]).unwrap();
    assert_eq!(auth.introspect(&after).unwrap().linked_identities.len(), 3);
}
