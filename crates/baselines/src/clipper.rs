//! Clipper (§III-B.4): "a prediction serving system that focuses on
//! low latency serving. It deploys models as Docker containers …
//! includes several optimizations … including data batching and
//! memoization … also provides a model selection framework to improve
//! prediction accuracy. However, because Clipper needs to dockerize
//! the models on the manager node, it requires privileged access."
//!
//! Architectural point that matters for Fig 8: Clipper's cache lives
//! in the *query frontend*, which is "deployed as a pod on the
//! Kubernetes cluster", so even cached responses pay the trip to the
//! cluster — unlike DLHub's Task-Manager cache.

use dlhub_container::{Cluster, Digest, PodSpec};
use dlhub_core::memo::{MemoCache, MemoKey, MemoStats};
use dlhub_core::{Servable, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Clipper errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClipperError {
    /// Deploying needs privileged access on the node.
    PrivilegeRequired,
    /// Unknown application name.
    NoSuchApplication(String),
    /// An application with no linked models cannot serve.
    NoModelLinked(String),
    /// Model execution failed.
    Execution(String),
    /// Cluster rejected the model container.
    Cluster(String),
}

impl std::fmt::Display for ClipperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClipperError::PrivilegeRequired => {
                write!(f, "dockerizing models requires privileged access")
            }
            ClipperError::NoSuchApplication(a) => write!(f, "no such application: {a}"),
            ClipperError::NoModelLinked(a) => write!(f, "no model linked to {a}"),
            ClipperError::Execution(e) => write!(f, "execution failed: {e}"),
            ClipperError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for ClipperError {}

struct DeployedModel {
    servable: Arc<dyn Servable>,
    /// Selection statistics: (uses, cumulative reward).
    uses: u64,
    reward: f64,
}

struct Application {
    /// Candidate model names, in registration order.
    candidates: Vec<String>,
    /// Default output if every candidate fails (Clipper applications
    /// declare a default prediction).
    default_output: Value,
}

/// The Clipper query frontend plus its model containers.
pub struct Clipper {
    cluster: Cluster,
    privileged: bool,
    models: RwLock<HashMap<String, DeployedModel>>,
    applications: RwLock<HashMap<String, Application>>,
    cache: MemoCache,
}

impl Clipper {
    /// Deploy Clipper onto a cluster. `privileged` mirrors the
    /// paper's observation that Clipper "requires privileged access,
    /// which is not available on all execution environments".
    pub fn deploy(cluster: Cluster, privileged: bool) -> Result<Self, ClipperError> {
        if !privileged {
            return Err(ClipperError::PrivilegeRequired);
        }
        // The query frontend itself runs as a pod on the cluster.
        cluster
            .create_deployment(
                "clipper-query-frontend",
                PodSpec {
                    image: Digest(0xC11, 0x1),
                    cpu_millis: 2000,
                    memory_mib: 4096,
                },
                1,
            )
            .map_err(|e| ClipperError::Cluster(e.to_string()))?;
        Ok(Clipper {
            cluster,
            privileged,
            models: RwLock::new(HashMap::new()),
            applications: RwLock::new(HashMap::new()),
            cache: MemoCache::new(32 * 1024 * 1024),
        })
    }

    /// Deploy a model as its own Docker container on the cluster.
    pub fn deploy_model(
        &self,
        name: &str,
        servable: Arc<dyn Servable>,
        replicas: usize,
    ) -> Result<(), ClipperError> {
        if !self.privileged {
            return Err(ClipperError::PrivilegeRequired);
        }
        self.cluster
            .create_deployment(
                &format!("clipper-model-{name}"),
                PodSpec {
                    image: Digest(0xC11, 0x2),
                    cpu_millis: 1000,
                    memory_mib: 2048,
                },
                replicas.max(1),
            )
            .map_err(|e| ClipperError::Cluster(e.to_string()))?;
        self.models.write().insert(
            name.to_string(),
            DeployedModel {
                servable,
                uses: 0,
                reward: 0.0,
            },
        );
        Ok(())
    }

    /// Register an application with a default output.
    pub fn register_application(&self, app: &str, default_output: Value) {
        self.applications.write().insert(
            app.to_string(),
            Application {
                candidates: Vec::new(),
                default_output,
            },
        );
    }

    /// Link a deployed model as a candidate for an application — the
    /// model-selection framework chooses among candidates at query
    /// time.
    pub fn link_model(&self, app: &str, model: &str) -> Result<(), ClipperError> {
        if !self.models.read().contains_key(model) {
            return Err(ClipperError::Execution(format!("unknown model {model}")));
        }
        let mut apps = self.applications.write();
        let entry = apps
            .get_mut(app)
            .ok_or_else(|| ClipperError::NoSuchApplication(app.to_string()))?;
        entry.candidates.push(model.to_string());
        Ok(())
    }

    /// Select a candidate: highest observed mean reward, unexplored
    /// candidates first (the exploration half of Clipper's bandit
    /// selection policy).
    fn select(&self, candidates: &[String]) -> Option<String> {
        let models = self.models.read();
        candidates
            .iter()
            .filter(|name| models.contains_key(*name))
            .max_by(|a, b| {
                let score = |name: &str| {
                    let m = &models[name];
                    if m.uses == 0 {
                        f64::INFINITY // explore before exploiting
                    } else {
                        m.reward / m.uses as f64
                    }
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
    }

    /// Serve one query through the frontend: memo cache first, then
    /// the selected candidate; on model failure the application's
    /// default output is returned (Clipper's fallback semantics).
    /// Returns `(output, cache_hit, model_used)`.
    pub fn query(
        &self,
        app: &str,
        input: &Value,
    ) -> Result<(Value, bool, Option<String>), ClipperError> {
        let (candidates, default_output) = {
            let apps = self.applications.read();
            let a = apps
                .get(app)
                .ok_or_else(|| ClipperError::NoSuchApplication(app.to_string()))?;
            (a.candidates.clone(), a.default_output.clone())
        };
        if candidates.is_empty() {
            return Err(ClipperError::NoModelLinked(app.to_string()));
        }
        let key = MemoKey::new(app, input);
        if let Some(cached) = self.cache.get(&key) {
            return Ok((cached, true, None));
        }
        let Some(chosen) = self.select(&candidates) else {
            return Ok((default_output, false, None));
        };
        let servable = {
            let models = self.models.read();
            Arc::clone(&models[&chosen].servable)
        };
        match servable.run(input) {
            Ok(output) => {
                self.cache.put(key, output.clone());
                let mut models = self.models.write();
                if let Some(m) = models.get_mut(&chosen) {
                    m.uses += 1;
                    m.reward += 1.0; // success reward
                }
                Ok((output, false, Some(chosen)))
            }
            Err(_) => {
                let mut models = self.models.write();
                if let Some(m) = models.get_mut(&chosen) {
                    m.uses += 1; // failure: reward 0 drags the mean down
                }
                Ok((default_output, false, Some(chosen)))
            }
        }
    }

    /// Record downstream feedback for a model (the exploitation half
    /// of the selection policy).
    pub fn feedback(&self, model: &str, reward: f64) {
        if let Some(m) = self.models.write().get_mut(model) {
            m.reward += reward;
        }
    }

    /// Frontend cache counters.
    pub fn cache_stats(&self) -> MemoStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_container::NodeSpec;
    use dlhub_core::servable::servable_fn;

    fn cluster() -> Cluster {
        Cluster::new(vec![NodeSpec::new("n0", 64_000, 65_536)])
    }

    fn clipper() -> Clipper {
        Clipper::deploy(cluster(), true).unwrap()
    }

    #[test]
    fn unprivileged_deploy_fails() {
        assert!(matches!(
            Clipper::deploy(cluster(), false),
            Err(ClipperError::PrivilegeRequired)
        ));
    }

    #[test]
    fn frontend_runs_as_a_pod() {
        let c = clipper();
        assert_eq!(c.cluster.running_pods("clipper-query-frontend").len(), 1);
    }

    #[test]
    fn query_through_linked_model() {
        let c = clipper();
        c.deploy_model("echo", servable_fn(|v| Ok(v.clone())), 2)
            .unwrap();
        c.register_application("app", Value::Null);
        c.link_model("app", "echo").unwrap();
        let (out, hit, used) = c.query("app", &Value::Int(5)).unwrap();
        assert_eq!(out, Value::Int(5));
        assert!(!hit);
        assert_eq!(used.as_deref(), Some("echo"));
        assert_eq!(c.cluster.running_pods("clipper-model-echo").len(), 2);
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let c = clipper();
        c.deploy_model("echo", servable_fn(|v| Ok(v.clone())), 1)
            .unwrap();
        c.register_application("app", Value::Null);
        c.link_model("app", "echo").unwrap();
        let (_, hit1, _) = c.query("app", &Value::Int(1)).unwrap();
        let (out, hit2, used) = c.query("app", &Value::Int(1)).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(out, Value::Int(1));
        assert_eq!(used, None, "cache hits bypass model selection");
        assert_eq!(c.cache_stats().hits, 1);
    }

    #[test]
    fn failed_model_returns_default_output() {
        let c = clipper();
        c.deploy_model("broken", servable_fn(|_| Err("oom".into())), 1)
            .unwrap();
        c.register_application("app", Value::Str("default".into()));
        c.link_model("app", "broken").unwrap();
        let (out, _, used) = c.query("app", &Value::Int(1)).unwrap();
        assert_eq!(out, Value::Str("default".into()));
        assert_eq!(used.as_deref(), Some("broken"));
    }

    #[test]
    fn selection_prefers_rewarded_models() {
        let c = clipper();
        c.deploy_model("good", servable_fn(|_| Ok(Value::Str("good".into()))), 1)
            .unwrap();
        c.deploy_model("bad", servable_fn(|_| Err("always fails".into())), 1)
            .unwrap();
        c.register_application("app", Value::Null);
        c.link_model("app", "bad").unwrap();
        c.link_model("app", "good").unwrap();
        // Distinct inputs defeat the cache; after exploring both, the
        // selector settles on the succeeding model.
        let mut last_used = None;
        for i in 0..10 {
            let (_, _, used) = c.query("app", &Value::Int(i)).unwrap();
            last_used = used;
        }
        assert_eq!(last_used.as_deref(), Some("good"));
    }

    #[test]
    fn application_errors() {
        let c = clipper();
        assert!(matches!(
            c.query("ghost", &Value::Null),
            Err(ClipperError::NoSuchApplication(_))
        ));
        c.register_application("empty", Value::Null);
        assert!(matches!(
            c.query("empty", &Value::Null),
            Err(ClipperError::NoModelLinked(_))
        ));
        assert!(c.link_model("empty", "ghost").is_err());
    }
}
