#![warn(missing_docs)]

//! # dlhub-baselines
//!
//! Native implementations of the serving systems the paper compares
//! DLHub against (§III-B, §V-B5):
//!
//! * [`tfserving::TensorFlowModelServer`] — the
//!   `tensorflow_model_server` analogue: multi-model, multi-version
//!   serving of TensorFlow-exportable servables over both a gRPC-style
//!   binary protocol and a REST/JSON protocol.
//! * [`sagemaker::SageMaker`] — the hosted platform: training jobs,
//!   model creation, endpoint deployment with instance counts, Flask-
//!   style JSON invocation, and container export.
//! * [`clipper::Clipper`] — the low-latency prediction server: one
//!   Docker container per model on the cluster, a query frontend with
//!   memoization and batching, and a model-selection policy.
//!
//! Each system keeps the architectural property that drives its
//! measured behaviour in Fig 8 (binary vs JSON protocol costs, cache
//! placement, container-per-model deployment); see DESIGN.md.

pub mod clipper;
pub mod protocol;
pub mod sagemaker;
pub mod tfserving;

pub use clipper::Clipper;
pub use sagemaker::SageMaker;
pub use tfserving::TensorFlowModelServer;
