//! Wire protocols: a compact gRPC-style binary encoding and a
//! REST-style JSON encoding for [`dlhub_core::Value`].
//!
//! The paper attributes part of Fig 8's ordering to protocol choice:
//! "gRPC leads to slightly better performance than REST due to the
//! overhead of the HTTP protocol". Encoding a tensor as length-
//! prefixed little-endian floats versus a JSON array reproduces that
//! cost difference for real.

use dlhub_core::Value;

/// Protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Binary, length-prefixed (gRPC-like).
    Grpc,
    /// JSON over HTTP (REST-like).
    Rest,
}

/// Encode a value for transport.
pub fn encode(protocol: Protocol, value: &Value) -> Result<Vec<u8>, String> {
    match protocol {
        Protocol::Grpc => Ok(encode_binary(value)),
        Protocol::Rest => serde_json::to_vec(value).map_err(|e| e.to_string()),
    }
}

/// Decode a transported value.
pub fn decode(protocol: Protocol, bytes: &[u8]) -> Result<Value, String> {
    match protocol {
        Protocol::Grpc => {
            let mut cursor = 0usize;
            let v = decode_binary(bytes, &mut cursor)?;
            if cursor != bytes.len() {
                return Err("trailing bytes in binary payload".into());
            }
            Ok(v)
        }
        Protocol::Rest => serde_json::from_slice(bytes).map_err(|e| e.to_string()),
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_TENSOR: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_JSON: u8 = 8;

fn encode_binary(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.approx_size() + 16);
    write_binary(value, &mut out);
    out
}

fn write_binary(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u64).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Tensor { shape, data } => {
            out.push(TAG_TENSOR);
            out.extend_from_slice(&(shape.len() as u64).to_le_bytes());
            for d in shape {
                out.extend_from_slice(&(*d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                write_binary(item, out);
            }
        }
        Value::Json(j) => {
            let text = j.to_string();
            out.push(TAG_JSON);
            out.extend_from_slice(&(text.len() as u64).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
    }
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, String> {
    let end = *cursor + 8;
    if end > bytes.len() {
        return Err("truncated binary payload".into());
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*cursor..end]);
    *cursor = end;
    Ok(u64::from_le_bytes(buf))
}

fn read_slice<'a>(bytes: &'a [u8], cursor: &mut usize, len: usize) -> Result<&'a [u8], String> {
    let end = *cursor + len;
    if end > bytes.len() {
        return Err("truncated binary payload".into());
    }
    let s = &bytes[*cursor..end];
    *cursor = end;
    Ok(s)
}

fn decode_binary(bytes: &[u8], cursor: &mut usize) -> Result<Value, String> {
    let tag = *bytes.get(*cursor).ok_or("empty binary payload")?;
    *cursor += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let b = *bytes.get(*cursor).ok_or("truncated bool")?;
            *cursor += 1;
            Ok(Value::Bool(b != 0))
        }
        TAG_INT => Ok(Value::Int(read_u64(bytes, cursor)? as i64)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(read_u64(bytes, cursor)?))),
        TAG_STR => {
            let len = read_u64(bytes, cursor)? as usize;
            let raw = read_slice(bytes, cursor, len)?;
            Ok(Value::Str(
                String::from_utf8(raw.to_vec()).map_err(|e| e.to_string())?,
            ))
        }
        TAG_BYTES => {
            let len = read_u64(bytes, cursor)? as usize;
            Ok(Value::Bytes(read_slice(bytes, cursor, len)?.to_vec()))
        }
        TAG_TENSOR => {
            let rank = read_u64(bytes, cursor)? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(bytes, cursor)? as usize);
            }
            let n = read_u64(bytes, cursor)? as usize;
            let raw = read_slice(bytes, cursor, n * 4)?;
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(Value::Tensor { shape, data })
        }
        TAG_LIST => {
            let n = read_u64(bytes, cursor)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_binary(bytes, cursor)?);
            }
            Ok(Value::List(items))
        }
        TAG_JSON => {
            let len = read_u64(bytes, cursor)? as usize;
            let raw = read_slice(bytes, cursor, len)?;
            Ok(Value::Json(
                serde_json::from_slice(raw).map_err(|e| e.to_string())?,
            ))
        }
        other => Err(format!("unknown binary tag {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Str("héllo".into()),
            Value::Bytes(vec![0, 255, 3]),
            Value::Tensor {
                shape: vec![2, 2],
                data: vec![1.0, -1.0, 0.5, 0.0],
            },
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            Value::Json(serde_json::json!({"a": [1, 2], "b": "c"})),
        ]
    }

    #[test]
    fn grpc_round_trips_all_types() {
        for v in samples() {
            let bytes = encode(Protocol::Grpc, &v).unwrap();
            assert_eq!(decode(Protocol::Grpc, &bytes).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn rest_round_trips_all_types() {
        for v in samples() {
            let bytes = encode(Protocol::Rest, &v).unwrap();
            assert_eq!(decode(Protocol::Rest, &bytes).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn binary_is_smaller_for_tensors() {
        let t = Value::Tensor {
            shape: vec![1000],
            data: (0..1000).map(|i| i as f32 * 0.123).collect(),
        };
        let binary = encode(Protocol::Grpc, &t).unwrap();
        let json = encode(Protocol::Rest, &t).unwrap();
        assert!(
            binary.len() < json.len() / 2,
            "binary {} vs json {}",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn corrupt_binary_is_rejected() {
        assert!(decode(Protocol::Grpc, &[]).is_err());
        assert!(decode(Protocol::Grpc, &[99]).is_err());
        let mut good = encode(Protocol::Grpc, &Value::Str("abc".into())).unwrap();
        good.truncate(good.len() - 1);
        assert!(decode(Protocol::Grpc, &good).is_err());
        // Trailing garbage is also an error.
        let mut extra = encode(Protocol::Grpc, &Value::Int(1)).unwrap();
        extra.push(0);
        assert!(decode(Protocol::Grpc, &extra).is_err());
    }
}
