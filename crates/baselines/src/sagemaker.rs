//! SageMaker (§III-B.3): a hosted platform that "supports both the
//! training of models and the deployment of trained models as Docker
//! containers for serving … trained models can be exported as Docker
//! containers for local deployment."

use crate::protocol::{decode, encode, Protocol};
use dlhub_container::{Image, ImageBuilder, Recipe};
use dlhub_core::servable::servable_fn;
use dlhub_core::{Servable, Value};
use dlhub_matsci::forest::{ForestConfig, RandomForest};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// SageMaker API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SageMakerError {
    /// Unknown model name.
    NoSuchModel(String),
    /// Unknown endpoint name.
    NoSuchEndpoint(String),
    /// Training input malformed.
    Training(String),
    /// The model failed while serving.
    Execution(String),
    /// Name collision.
    AlreadyExists(String),
}

impl std::fmt::Display for SageMakerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SageMakerError::NoSuchModel(m) => write!(f, "no such model: {m}"),
            SageMakerError::NoSuchEndpoint(e) => write!(f, "no such endpoint: {e}"),
            SageMakerError::Training(m) => write!(f, "training failed: {m}"),
            SageMakerError::Execution(m) => write!(f, "invocation failed: {m}"),
            SageMakerError::AlreadyExists(n) => write!(f, "already exists: {n}"),
        }
    }
}

impl std::error::Error for SageMakerError {}

/// A labelled training set for the built-in algorithm.
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub targets: Vec<f64>,
}

struct Endpoint {
    model: String,
    instances: usize,
    invocations: u64,
}

/// The hosted SageMaker service.
pub struct SageMaker {
    models: RwLock<HashMap<String, Arc<dyn Servable>>>,
    endpoints: RwLock<HashMap<String, Endpoint>>,
    builder: Mutex<ImageBuilder>,
}

impl SageMaker {
    /// Start the service.
    pub fn new() -> Self {
        SageMaker {
            models: RwLock::new(HashMap::new()),
            endpoints: RwLock::new(HashMap::new()),
            builder: Mutex::new(ImageBuilder::new()),
        }
    }

    /// `CreateModel`: register a pre-trained model ("integrate their
    /// own algorithms").
    pub fn create_model(
        &self,
        name: &str,
        servable: Arc<dyn Servable>,
    ) -> Result<(), SageMakerError> {
        let mut models = self.models.write();
        if models.contains_key(name) {
            return Err(SageMakerError::AlreadyExists(name.to_string()));
        }
        models.insert(name.to_string(), servable);
        Ok(())
    }

    /// `CreateTrainingJob` with the built-in random-forest algorithm
    /// ("ML algorithms that are optimized for distributed
    /// environments" — our forest trains its trees in parallel).
    /// Produces a registered model named `model_name`.
    pub fn create_training_job(
        &self,
        model_name: &str,
        data: &TrainingData,
        seed: u64,
    ) -> Result<(), SageMakerError> {
        if data.features.is_empty() || data.features.len() != data.targets.len() {
            return Err(SageMakerError::Training(
                "training set is empty or misaligned".into(),
            ));
        }
        let width = data.features[0].len();
        if data.features.iter().any(|r| r.len() != width) {
            return Err(SageMakerError::Training("ragged feature rows".into()));
        }
        let forest = RandomForest::fit(
            &data.features,
            &data.targets,
            &ForestConfig {
                n_trees: 30,
                seed,
                ..ForestConfig::default()
            },
        );
        let servable = servable_fn(move |input: &Value| {
            let tensor = input
                .to_tensor()
                .ok_or_else(|| "expected a feature tensor".to_string())?;
            let features: Vec<f64> = tensor.data().iter().map(|v| *v as f64).collect();
            Ok(Value::Float(forest.predict(&features)))
        });
        self.create_model(model_name, servable)
    }

    /// `CreateTrainingJob` with the built-in image-classification
    /// algorithm: trains a small CNN (conv → ReLU → pool → dense) by
    /// SGD with momentum on labelled image tensors and registers the
    /// frozen network as a model. Returns the final training accuracy.
    pub fn create_cnn_training_job(
        &self,
        model_name: &str,
        input_shape: Vec<usize>,
        n_classes: usize,
        data: &[(dlhub_core::tensor::Tensor, usize)],
        epochs: usize,
        seed: u64,
    ) -> Result<f64, SageMakerError> {
        use dlhub_core::tensor::{layer::Layer, Trainable};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        if data.is_empty() {
            return Err(SageMakerError::Training("empty training set".into()));
        }
        if input_shape.len() != 3 {
            return Err(SageMakerError::Training("input shape must be CHW".into()));
        }
        if data
            .iter()
            .any(|(x, label)| x.shape() != input_shape || *label >= n_classes)
        {
            return Err(SageMakerError::Training(
                "example shape or label out of range".into(),
            ));
        }
        let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
        if h < 2 || w < 2 {
            return Err(SageMakerError::Training("image too small".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_vec = |n: usize, scale: f32| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        let filters = 8usize;
        let pooled = (h / 2) * (w / 2) * filters;
        let mut net = Trainable::new(
            input_shape.clone(),
            vec![
                Layer::Conv2d {
                    weights: rand_vec(filters * c * 9, 0.3),
                    bias: vec![0.0; filters],
                    c_out: filters,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                },
                Layer::ReLU,
                Layer::MaxPool { size: 2, stride: 2 },
                Layer::Flatten,
                Layer::Dense {
                    weights: rand_vec(n_classes * pooled, 0.15),
                    bias: vec![0.0; n_classes],
                    out: n_classes,
                    input: pooled,
                },
            ],
        )
        .map_err(|e| SageMakerError::Training(e.to_string()))?;
        net.fit(data, epochs, 16, 0.1, 0.9)
            .map_err(|e| SageMakerError::Training(e.to_string()))?;
        let accuracy = net.accuracy(data);
        let network = net.into_network(model_name.to_string());
        let servable = servable_fn(move |input: &Value| {
            let tensor = input
                .to_tensor()
                .ok_or_else(|| "expected an image tensor".to_string())?;
            let probs = network.forward(tensor);
            let class = probs.argmax().ok_or("empty output")?;
            Ok(Value::Json(serde_json::json!({
                "class": class,
                "probability": probs.data()[class],
            })))
        });
        self.create_model(model_name, servable)?;
        Ok(accuracy)
    }

    /// `CreateEndpoint`: deploy a model behind a named endpoint with
    /// an instance count.
    pub fn create_endpoint(
        &self,
        endpoint: &str,
        model: &str,
        instances: usize,
    ) -> Result<(), SageMakerError> {
        if !self.models.read().contains_key(model) {
            return Err(SageMakerError::NoSuchModel(model.to_string()));
        }
        let mut endpoints = self.endpoints.write();
        if endpoints.contains_key(endpoint) {
            return Err(SageMakerError::AlreadyExists(endpoint.to_string()));
        }
        endpoints.insert(
            endpoint.to_string(),
            Endpoint {
                model: model.to_string(),
                instances: instances.max(1),
                invocations: 0,
            },
        );
        Ok(())
    }

    /// `InvokeEndpoint`: the Flask path — JSON in, JSON out.
    pub fn invoke_endpoint(&self, endpoint: &str, input: &Value) -> Result<Value, SageMakerError> {
        let model = {
            let mut endpoints = self.endpoints.write();
            let ep = endpoints
                .get_mut(endpoint)
                .ok_or_else(|| SageMakerError::NoSuchEndpoint(endpoint.to_string()))?;
            ep.invocations += 1;
            ep.model.clone()
        };
        let servable = self
            .models
            .read()
            .get(&model)
            .cloned()
            .ok_or(SageMakerError::NoSuchModel(model))?;
        // Flask interface: HTTP JSON body in, JSON response out.
        let body = encode(Protocol::Rest, input).map_err(SageMakerError::Execution)?;
        let decoded = decode(Protocol::Rest, &body).map_err(SageMakerError::Execution)?;
        let output = servable.run(&decoded).map_err(SageMakerError::Execution)?;
        let response = encode(Protocol::Rest, &output).map_err(SageMakerError::Execution)?;
        decode(Protocol::Rest, &response).map_err(SageMakerError::Execution)
    }

    /// Endpoint bookkeeping: `(model, instances, invocations)`.
    pub fn describe_endpoint(
        &self,
        endpoint: &str,
    ) -> Result<(String, usize, u64), SageMakerError> {
        let endpoints = self.endpoints.read();
        let ep = endpoints
            .get(endpoint)
            .ok_or_else(|| SageMakerError::NoSuchEndpoint(endpoint.to_string()))?;
        Ok((ep.model.clone(), ep.instances, ep.invocations))
    }

    /// Export a model as a Docker container "for local deployment".
    pub fn export_container(&self, model: &str) -> Result<Image, SageMakerError> {
        if !self.models.read().contains_key(model) {
            return Err(SageMakerError::NoSuchModel(model.to_string()));
        }
        let mut recipe = Recipe::from_base("sagemaker/base:1.0");
        recipe.add_file(format!("{model}.artifact"), model.as_bytes().to_vec());
        recipe.entrypoint("serve");
        Ok(self.builder.lock().build(&recipe))
    }
}

impl Default for SageMaker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_training() -> TrainingData {
        // y = x0 + 2*x1 on a grid.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                features.push(vec![a as f64, b as f64]);
                targets.push(a as f64 + 2.0 * b as f64);
            }
        }
        TrainingData { features, targets }
    }

    #[test]
    fn train_deploy_invoke_cycle() {
        let sm = SageMaker::new();
        sm.create_training_job("rf", &toy_training(), 1).unwrap();
        sm.create_endpoint("prod", "rf", 2).unwrap();
        let out = sm
            .invoke_endpoint(
                "prod",
                &Value::Tensor {
                    shape: vec![2],
                    data: vec![5.0, 5.0],
                },
            )
            .unwrap();
        match out {
            // True value is 15; the forest should be close.
            Value::Float(v) => assert!((v - 15.0).abs() < 3.0, "prediction {v}"),
            other => panic!("unexpected {other}"),
        }
        let (model, instances, invocations) = sm.describe_endpoint("prod").unwrap();
        assert_eq!(model, "rf");
        assert_eq!(instances, 2);
        assert_eq!(invocations, 1);
    }

    /// Bright-quadrant images: class = which half (top/bottom) holds
    /// the bright pixel.
    fn image_dataset(n: usize, seed: u64) -> Vec<(dlhub_core::tensor::Tensor, usize)> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.gen_range(0..2usize);
                let mut data = vec![0.0f32; 64];
                let row = if label == 0 {
                    rng.gen_range(0..3)
                } else {
                    rng.gen_range(5..8)
                };
                data[row * 8 + rng.gen_range(0..8)] = 1.0;
                (
                    dlhub_core::tensor::Tensor::new(vec![1, 8, 8], data).unwrap(),
                    label,
                )
            })
            .collect()
    }

    #[test]
    fn cnn_training_job_learns_and_serves() {
        let sm = SageMaker::new();
        let data = image_dataset(200, 4);
        let accuracy = sm
            .create_cnn_training_job("quadrant", vec![1, 8, 8], 2, &data, 6, 4)
            .unwrap();
        assert!(accuracy > 0.9, "train accuracy {accuracy}");
        sm.create_endpoint("quadrant-prod", "quadrant", 1).unwrap();
        // Fresh unseen samples classify correctly through the endpoint.
        let mut correct = 0;
        let test = image_dataset(40, 5);
        for (x, label) in &test {
            let out = sm
                .invoke_endpoint("quadrant-prod", &Value::from_tensor(x))
                .unwrap();
            if let Value::Json(doc) = out {
                if doc["class"].as_u64() == Some(*label as u64) {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 35, "test accuracy {correct}/40");
    }

    #[test]
    fn cnn_training_job_validates_inputs() {
        let sm = SageMaker::new();
        assert!(matches!(
            sm.create_cnn_training_job("m", vec![1, 8, 8], 2, &[], 1, 0),
            Err(SageMakerError::Training(_))
        ));
        // Label out of range.
        let bad = vec![(dlhub_core::tensor::Tensor::zeros(vec![1, 8, 8]), 5usize)];
        assert!(matches!(
            sm.create_cnn_training_job("m", vec![1, 8, 8], 2, &bad, 1, 0),
            Err(SageMakerError::Training(_))
        ));
        // Wrong shape.
        let bad = vec![(dlhub_core::tensor::Tensor::zeros(vec![1, 4, 4]), 0usize)];
        assert!(matches!(
            sm.create_cnn_training_job("m", vec![1, 8, 8], 2, &bad, 1, 0),
            Err(SageMakerError::Training(_))
        ));
    }

    #[test]
    fn byo_model_and_endpoint() {
        let sm = SageMaker::new();
        sm.create_model("echo", servable_fn(|v| Ok(v.clone())))
            .unwrap();
        sm.create_endpoint("e", "echo", 1).unwrap();
        assert_eq!(
            sm.invoke_endpoint("e", &Value::Str("x".into())).unwrap(),
            Value::Str("x".into())
        );
    }

    #[test]
    fn name_collisions_rejected() {
        let sm = SageMaker::new();
        sm.create_model("m", servable_fn(|v| Ok(v.clone())))
            .unwrap();
        assert!(matches!(
            sm.create_model("m", servable_fn(|v| Ok(v.clone()))),
            Err(SageMakerError::AlreadyExists(_))
        ));
        sm.create_endpoint("e", "m", 1).unwrap();
        assert!(matches!(
            sm.create_endpoint("e", "m", 1),
            Err(SageMakerError::AlreadyExists(_))
        ));
    }

    #[test]
    fn bad_training_data_rejected() {
        let sm = SageMaker::new();
        let empty = TrainingData {
            features: vec![],
            targets: vec![],
        };
        assert!(matches!(
            sm.create_training_job("m", &empty, 0),
            Err(SageMakerError::Training(_))
        ));
        let ragged = TrainingData {
            features: vec![vec![1.0], vec![1.0, 2.0]],
            targets: vec![0.0, 1.0],
        };
        assert!(matches!(
            sm.create_training_job("m", &ragged, 0),
            Err(SageMakerError::Training(_))
        ));
    }

    #[test]
    fn missing_names_error() {
        let sm = SageMaker::new();
        assert!(matches!(
            sm.create_endpoint("e", "ghost", 1),
            Err(SageMakerError::NoSuchModel(_))
        ));
        assert!(matches!(
            sm.invoke_endpoint("ghost", &Value::Null),
            Err(SageMakerError::NoSuchEndpoint(_))
        ));
        assert!(matches!(
            sm.export_container("ghost"),
            Err(SageMakerError::NoSuchModel(_))
        ));
    }

    #[test]
    fn export_builds_a_container() {
        let sm = SageMaker::new();
        sm.create_model("m", servable_fn(|v| Ok(v.clone())))
            .unwrap();
        let image = sm.export_container("m").unwrap();
        assert!(image.layers.iter().any(|l| l.step.contains("m.artifact")));
        assert_eq!(image.entrypoint, "serve");
    }
}
