//! TensorFlow Serving (§III-B.2): "high performance serving via gRPC
//! and REST APIs … capable of simultaneously serving many models, with
//! many versions, at scale", but "limited in terms of its support for
//! custom transformation codes" — it only accepts models exportable as
//! TensorFlow servables, and offers no pipelines.

use crate::protocol::{decode, encode, Protocol};
use dlhub_core::servable::ModelType;
use dlhub_core::{Servable, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from the model server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfServingError {
    /// Model type is not exportable as a TensorFlow servable.
    NotAServable(String),
    /// Unknown model name.
    NoSuchModel(String),
    /// Unknown version of a known model.
    NoSuchVersion(String, u32),
    /// The servable itself failed.
    Execution(String),
    /// Protocol encode/decode failure.
    Protocol(String),
}

impl std::fmt::Display for TfServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TfServingError::NotAServable(t) => {
                write!(f, "model type {t} cannot be exported as a TF servable")
            }
            TfServingError::NoSuchModel(m) => write!(f, "no such model: {m}"),
            TfServingError::NoSuchVersion(m, v) => write!(f, "no version {v} of {m}"),
            TfServingError::Execution(e) => write!(f, "execution failed: {e}"),
            TfServingError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TfServingError {}

struct ModelEntry {
    versions: BTreeMap<u32, Arc<dyn Servable>>,
}

/// The `tensorflow_model_server` analogue.
pub struct TensorFlowModelServer {
    models: RwLock<HashMap<String, ModelEntry>>,
}

impl TensorFlowModelServer {
    /// Start an empty server.
    pub fn new() -> Self {
        TensorFlowModelServer {
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Load a model version. Only TensorFlow-exportable model types
    /// are accepted (Table II: "TF Servables").
    pub fn load_model(
        &self,
        name: &str,
        version: u32,
        model_type: ModelType,
        servable: Arc<dyn Servable>,
    ) -> Result<(), TfServingError> {
        if !matches!(model_type, ModelType::TensorFlow | ModelType::Keras) {
            return Err(TfServingError::NotAServable(model_type.to_string()));
        }
        let mut models = self.models.write();
        models
            .entry(name.to_string())
            .or_insert_with(|| ModelEntry {
                versions: BTreeMap::new(),
            })
            .versions
            .insert(version, servable);
        Ok(())
    }

    /// Unload one version; removes the model entirely when its last
    /// version goes.
    pub fn unload_version(&self, name: &str, version: u32) -> Result<(), TfServingError> {
        let mut models = self.models.write();
        let entry = models
            .get_mut(name)
            .ok_or_else(|| TfServingError::NoSuchModel(name.to_string()))?;
        if entry.versions.remove(&version).is_none() {
            return Err(TfServingError::NoSuchVersion(name.to_string(), version));
        }
        if entry.versions.is_empty() {
            models.remove(name);
        }
        Ok(())
    }

    /// Loaded models and their version lists.
    pub fn model_status(&self) -> Vec<(String, Vec<u32>)> {
        let models = self.models.read();
        let mut out: Vec<(String, Vec<u32>)> = models
            .iter()
            .map(|(name, entry)| (name.clone(), entry.versions.keys().copied().collect()))
            .collect();
        out.sort();
        out
    }

    fn resolve(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<Arc<dyn Servable>, TfServingError> {
        let models = self.models.read();
        let entry = models
            .get(name)
            .ok_or_else(|| TfServingError::NoSuchModel(name.to_string()))?;
        match version {
            Some(v) => entry
                .versions
                .get(&v)
                .cloned()
                .ok_or(TfServingError::NoSuchVersion(name.to_string(), v)),
            None => Ok(entry
                .versions
                .values()
                .next_back()
                .cloned()
                .expect("entries never empty")),
        }
    }

    /// Serve one request over the chosen protocol: the payload is
    /// decoded, run against the requested (or latest) version, and the
    /// response re-encoded — the real encode/run/encode path a client
    /// of `tensorflow_model_server` exercises.
    pub fn predict(
        &self,
        protocol: Protocol,
        name: &str,
        version: Option<u32>,
        request_payload: &[u8],
    ) -> Result<Vec<u8>, TfServingError> {
        let servable = self.resolve(name, version)?;
        let input = decode(protocol, request_payload).map_err(TfServingError::Protocol)?;
        let output = servable.run(&input).map_err(TfServingError::Execution)?;
        encode(protocol, &output).map_err(TfServingError::Protocol)
    }

    /// Convenience: predict with in-memory values (encodes, serves,
    /// decodes — still paying the protocol cost).
    pub fn predict_value(
        &self,
        protocol: Protocol,
        name: &str,
        version: Option<u32>,
        input: &Value,
    ) -> Result<Value, TfServingError> {
        let payload = encode(protocol, input).map_err(TfServingError::Protocol)?;
        let response = self.predict(protocol, name, version, &payload)?;
        decode(protocol, &response).map_err(TfServingError::Protocol)
    }
}

impl Default for TensorFlowModelServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_core::servable::servable_fn;

    fn echo() -> Arc<dyn Servable> {
        servable_fn(|v| Ok(v.clone()))
    }

    fn constant(i: i64) -> Arc<dyn Servable> {
        servable_fn(move |_| Ok(Value::Int(i)))
    }

    #[test]
    fn serves_grpc_and_rest() {
        let server = TensorFlowModelServer::new();
        server
            .load_model("cifar10", 1, ModelType::Keras, echo())
            .unwrap();
        for protocol in [Protocol::Grpc, Protocol::Rest] {
            let out = server
                .predict_value(protocol, "cifar10", None, &Value::Int(9))
                .unwrap();
            assert_eq!(out, Value::Int(9));
        }
    }

    #[test]
    fn rejects_non_tf_models() {
        let server = TensorFlowModelServer::new();
        for bad in [ModelType::ScikitLearn, ModelType::PythonFunction] {
            assert!(matches!(
                server.load_model("m", 1, bad, echo()),
                Err(TfServingError::NotAServable(_))
            ));
        }
    }

    #[test]
    fn multiple_versions_latest_wins_by_default() {
        let server = TensorFlowModelServer::new();
        server
            .load_model("m", 1, ModelType::TensorFlow, constant(1))
            .unwrap();
        server
            .load_model("m", 2, ModelType::TensorFlow, constant(2))
            .unwrap();
        let latest = server
            .predict_value(Protocol::Grpc, "m", None, &Value::Null)
            .unwrap();
        assert_eq!(latest, Value::Int(2));
        let pinned = server
            .predict_value(Protocol::Grpc, "m", Some(1), &Value::Null)
            .unwrap();
        assert_eq!(pinned, Value::Int(1));
        assert_eq!(server.model_status(), vec![("m".to_string(), vec![1, 2])]);
    }

    #[test]
    fn unload_removes_versions_then_model() {
        let server = TensorFlowModelServer::new();
        server
            .load_model("m", 1, ModelType::TensorFlow, constant(1))
            .unwrap();
        server
            .load_model("m", 2, ModelType::TensorFlow, constant(2))
            .unwrap();
        server.unload_version("m", 2).unwrap();
        assert_eq!(
            server
                .predict_value(Protocol::Grpc, "m", None, &Value::Null)
                .unwrap(),
            Value::Int(1)
        );
        server.unload_version("m", 1).unwrap();
        assert!(matches!(
            server.predict_value(Protocol::Grpc, "m", None, &Value::Null),
            Err(TfServingError::NoSuchModel(_))
        ));
        assert!(matches!(
            server.unload_version("m", 1),
            Err(TfServingError::NoSuchModel(_))
        ));
    }

    #[test]
    fn missing_model_and_version_errors() {
        let server = TensorFlowModelServer::new();
        assert!(matches!(
            server.predict_value(Protocol::Rest, "ghost", None, &Value::Null),
            Err(TfServingError::NoSuchModel(_))
        ));
        server
            .load_model("m", 1, ModelType::TensorFlow, echo())
            .unwrap();
        assert!(matches!(
            server.predict_value(Protocol::Rest, "m", Some(9), &Value::Null),
            Err(TfServingError::NoSuchVersion(_, 9))
        ));
    }

    #[test]
    fn execution_errors_surface() {
        let server = TensorFlowModelServer::new();
        server
            .load_model(
                "bad",
                1,
                ModelType::TensorFlow,
                servable_fn(|_| Err("tensor shape mismatch".into())),
            )
            .unwrap();
        assert!(matches!(
            server.predict_value(Protocol::Grpc, "bad", None, &Value::Null),
            Err(TfServingError::Execution(_))
        ));
    }
}
