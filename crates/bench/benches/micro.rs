//! Criterion micro-benchmarks for the design choices DESIGN.md calls
//! out: memo-cache lookups, batcher coalescing, broker RPC round
//! trips, wire protocols (the gRPC-vs-REST ablation behind Fig 8),
//! compute kernels, search queries and container builds.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dlhub_baselines::protocol::{decode, encode, Protocol};
use dlhub_core::memo::{MemoCache, MemoKey};
use dlhub_core::value::Value;
use dlhub_queue::{Broker, BrokerConfig, RpcClient, RpcServer};
use dlhub_search::{Document, Index, Query};

fn bench_memo_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo");
    group.measurement_time(Duration::from_secs(2));
    let cache = MemoCache::new(64 * 1024 * 1024);
    let hot = MemoKey::new("m", &Value::Int(0));
    cache.put(hot.clone(), Value::Str("out".into()));
    for i in 0..1000 {
        cache.put(MemoKey::new("m", &Value::Int(i)), Value::Int(i));
    }
    group.bench_function("hit", |b| b.iter(|| black_box(cache.get(&hot))));
    let cold = MemoKey::new("m", &Value::Int(-1));
    group.bench_function("miss", |b| b.iter(|| black_box(cache.get(&cold))));
    // Key construction includes the content hash of the input — the
    // per-request cost of enabling memoization at all.
    let image = Value::Tensor {
        shape: vec![3, 32, 32],
        data: vec![0.5; 3 * 32 * 32],
    };
    group.bench_function("key_hash_cifar_input", |b| {
        b.iter(|| black_box(MemoKey::new("m", &image)))
    });
    group.finish();
}

fn bench_queue_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.measurement_time(Duration::from_secs(3));
    let broker = Broker::new(BrokerConfig::default());
    let client = RpcClient::connect(&broker, "bench");
    let server = RpcServer::bind(&broker, "bench");
    let worker = std::thread::spawn(move || {
        server.serve_forever(|req| bytes::Bytes::copy_from_slice(req));
    });
    group.bench_function("rpc_round_trip_small", |b| {
        b.iter(|| {
            client
                .call_wait(bytes::Bytes::from_static(b"ping"), Duration::from_secs(5))
                .unwrap()
        })
    });
    let payload = bytes::Bytes::from(vec![7u8; 64 * 1024]);
    group.bench_function("rpc_round_trip_64k", |b| {
        b.iter(|| {
            client
                .call_wait(payload.clone(), Duration::from_secs(5))
                .unwrap()
        })
    });
    group.finish();
    broker.close_topic("bench").unwrap();
    let _ = worker.join();
}

fn bench_protocols(c: &mut Criterion) {
    // The Fig 8 ablation: binary vs JSON transport of a CIFAR-10
    // input tensor.
    let mut group = c.benchmark_group("protocol");
    group.measurement_time(Duration::from_secs(2));
    let tensor = Value::Tensor {
        shape: vec![3, 32, 32],
        data: (0..3 * 32 * 32).map(|i| (i % 255) as f32 / 255.0).collect(),
    };
    for protocol in [Protocol::Grpc, Protocol::Rest] {
        let label = match protocol {
            Protocol::Grpc => "grpc",
            Protocol::Rest => "rest",
        };
        group.bench_function(format!("encode_{label}"), |b| {
            b.iter(|| black_box(encode(protocol, &tensor).unwrap()))
        });
        let encoded = encode(protocol, &tensor).unwrap();
        group.bench_function(format!("decode_{label}"), |b| {
            b.iter(|| black_box(decode(protocol, &encoded).unwrap()))
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    // GEMM at the size the CIFAR-10 conv layers hit.
    let m = 64;
    let k = 288;
    let n = 1024;
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32).collect();
    let b_mat: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32).collect();
    group.bench_function("gemm_64x288x1024", |bch| {
        bch.iter(|| black_box(dlhub_tensor::ops::matmul(&a, &b_mat, m, k, n)))
    });
    let cifar = dlhub_tensor::models::cifar10(7);
    let img = dlhub_tensor::models::synthetic_image(&dlhub_tensor::models::CIFAR10_INPUT, 0);
    group.bench_function("cifar10_forward", |bch| {
        bch.iter(|| black_box(cifar.forward(img.clone())))
    });
    group.finish();
}

fn bench_matsci(c: &mut Criterion) {
    let mut group = c.benchmark_group("matsci");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("parse_formula", |b| {
        b.iter(|| black_box(dlhub_matsci::parse_formula("Ba(Ti0.8Zr0.2)O3").unwrap()))
    });
    let composition = dlhub_matsci::parse_formula("BaTiO3").unwrap();
    group.bench_function("featurize", |b| {
        b.iter(|| black_box(dlhub_matsci::featurize(&composition)))
    });
    let data = dlhub_matsci::dataset::generate(300, 1);
    let forest = dlhub_matsci::RandomForest::fit(
        &data.features(),
        &data.targets(),
        &dlhub_matsci::ForestConfig {
            n_trees: 25,
            ..Default::default()
        },
    );
    let probe = dlhub_matsci::featurize(&composition);
    group.bench_function("forest_predict", |b| {
        b.iter(|| black_box(forest.predict(&probe)))
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.measurement_time(Duration::from_secs(2));
    let index = Index::new();
    for i in 0..1000 {
        index
            .upsert(Document::new(
                format!("model-{i}"),
                serde_json::json!({
                    "title": format!("model number {i} for domain {}", i % 7),
                    "model_type": if i % 2 == 0 { "keras" } else { "sklearn" },
                    "year": 2015 + (i % 5),
                }),
                vec!["public".into()],
            ))
            .unwrap();
    }
    group.bench_function("free_text_1k_docs", |b| {
        b.iter(|| black_box(index.search(&Query::free_text("model domain 3"), &[])))
    });
    group.bench_function("boolean_range_1k_docs", |b| {
        let q =
            Query::field_match("model_type", "keras").and(Query::range("year", Some(2017.0), None));
        b.iter(|| black_box(index.search(&q, &[])))
    });
    group.finish();
}

fn bench_container_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("container");
    group.measurement_time(Duration::from_secs(2));
    let mut recipe = dlhub_container::Recipe::from_base("python:3.7");
    recipe
        .add_dependency(dlhub_container::Dependency::new("keras", "2.2.4"))
        .unwrap();
    recipe.add_file("weights.h5", vec![7u8; 64 * 1024]);
    recipe.entrypoint("dlhub-shim");
    group.bench_function("image_build_cold_cache", |b| {
        b.iter_batched(
            dlhub_container::ImageBuilder::new,
            |mut builder| black_box(builder.build(&recipe)),
            BatchSize::SmallInput,
        )
    });
    let mut warm = dlhub_container::ImageBuilder::new();
    warm.build(&recipe);
    group.bench_function("image_build_warm_cache", |b| {
        b.iter(|| black_box(warm.build(&recipe)))
    });
    group.finish();
}

fn bench_hpc_scheduler(c: &mut Criterion) {
    use dlhub_container::hpc::{BatchScheduler, JobRequest};
    let mut group = c.benchmark_group("hpc");
    group.measurement_time(Duration::from_secs(2));
    // Submit+advance a 200-job backfill workload: the scheduler's
    // decision cost, not the (virtual) job time.
    group.bench_function("schedule_200_jobs_with_backfill", |b| {
        b.iter(|| {
            let sched = BatchScheduler::new(64);
            for i in 0..200u64 {
                sched
                    .submit(JobRequest {
                        name: format!("j{i}"),
                        nodes: 1 + (i % 16) as usize,
                        walltime_s: 10 + i % 50,
                        sif: dlhub_container::Digest(1, 1),
                    })
                    .unwrap();
            }
            sched.advance(100_000);
            black_box(sched.free_nodes())
        })
    });
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    use dlhub_transfer::TransferService;
    let mut group = c.benchmark_group("transfer");
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    let svc = TransferService::new();
    let src = svc.create_endpoint("src", 1000.0);
    let dst = svc.create_endpoint("dst", 1000.0);
    src.put("/mb", vec![7u8; 1024 * 1024]);
    group.bench_function("staged_1mb_verified", |b| {
        b.iter(|| {
            let task = svc.submit(&src, "/mb", &dst, "/mb").unwrap();
            black_box(svc.wait(&task).unwrap())
        })
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    use dlhub_tensor::layer::Layer;
    use dlhub_tensor::{Tensor, Trainable};
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    let make_net = || {
        Trainable::new(
            vec![1, 16, 16],
            vec![
                Layer::Conv2d {
                    weights: vec![0.01; 8 * 9],
                    bias: vec![0.0; 8],
                    c_out: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                },
                Layer::ReLU,
                Layer::MaxPool { size: 2, stride: 2 },
                Layer::Flatten,
                Layer::Dense {
                    weights: vec![0.01; 4 * 512],
                    bias: vec![0.0; 4],
                    out: 4,
                    input: 512,
                },
            ],
        )
        .unwrap()
    };
    let batch: Vec<(Tensor, usize)> = (0..16)
        .map(|i| {
            (
                Tensor::new(
                    vec![1, 16, 16],
                    (0..256).map(|p| ((p + i) % 7) as f32 / 7.0).collect(),
                )
                .unwrap(),
                i % 4,
            )
        })
        .collect();
    group.bench_function("sgd_step_batch16_conv8_16x16", |b| {
        b.iter_batched(
            make_net,
            |mut net| black_box(net.sgd_step(&batch, 0.05, 0.9).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_uncertainty(c: &mut Criterion) {
    let mut group = c.benchmark_group("uq");
    group.measurement_time(Duration::from_secs(2));
    let data = dlhub_matsci::dataset::generate(300, 1);
    let forest = dlhub_matsci::RandomForest::fit(
        &data.features(),
        &data.targets(),
        &dlhub_matsci::ForestConfig {
            n_trees: 25,
            ..Default::default()
        },
    );
    let probe = dlhub_matsci::featurize(&dlhub_matsci::parse_formula("BaTiO3").unwrap());
    group.bench_function("forest_predict_with_uncertainty", |b| {
        b.iter(|| black_box(forest.predict_with_uncertainty(&probe)))
    });
    group.finish();
}

fn bench_memo_contention(c: &mut Criterion) {
    // The sharded cache's reason to exist: get/put latency while other
    // threads hammer the cache. With a single global lock these
    // numbers collapse; with shards they should stay near the
    // uncontended cost.
    let mut group = c.benchmark_group("memo_contended");
    group.measurement_time(Duration::from_secs(2));
    for contenders in [0usize, 3, 7] {
        let cache = std::sync::Arc::new(MemoCache::new(64 * 1024 * 1024));
        for i in 0..1000 {
            cache.put(MemoKey::new("m", &Value::Int(i)), Value::Int(i));
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammers: Vec<_> = (0..contenders)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let key = MemoKey::new("m", &Value::Int((t as i64) * 1000 + i % 500));
                        if i % 4 == 0 {
                            cache.put(key, Value::Int(i));
                        } else {
                            black_box(cache.get(&key));
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let hot = MemoKey::new("m", &Value::Int(0));
        group.bench_function(format!("get_with_{contenders}_contenders"), |b| {
            b.iter(|| black_box(cache.get(&hot)))
        });
        group.bench_function(format!("put_with_{contenders}_contenders"), |b| {
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                cache.put(MemoKey::new("bench", &Value::Int(i % 500)), Value::Int(i));
            })
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in hammers {
            h.join().unwrap();
        }
    }
    group.finish();
}

fn bench_memo_eviction(c: &mut Criterion) {
    // Eviction must be O(1): a put that evicts from a 100k-entry cache
    // should cost the same as one evicting from a 10k-entry cache
    // (the old implementation scanned every entry for the LRU victim).
    let mut group = c.benchmark_group("memo_eviction");
    group.measurement_time(Duration::from_secs(2));
    for entries in [10_000i64, 100_000] {
        let payload_size = Value::Bytes(vec![0u8; 64]).approx_size();
        let cache = MemoCache::new(entries as usize * payload_size);
        for i in 0..entries {
            cache.put(
                MemoKey::new("m", &Value::Int(i)),
                Value::Bytes(vec![0u8; 64]),
            );
        }
        // The cache is exactly full: every further put evicts.
        let mut i = entries;
        group.bench_function(format!("evicting_put_at_{entries}_entries"), |b| {
            b.iter(|| {
                i += 1;
                cache.put(
                    MemoKey::new("m", &Value::Int(i)),
                    Value::Bytes(vec![0u8; 64]),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_memo_cache,
    bench_memo_contention,
    bench_memo_eviction,
    bench_queue_rpc,
    bench_protocols,
    bench_kernels,
    bench_matsci,
    bench_search,
    bench_container_build,
    bench_hpc_scheduler,
    bench_training,
    bench_transfer,
    bench_uncertainty,
);
criterion_main!(benches);
