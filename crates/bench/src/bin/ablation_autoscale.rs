//! Ablation: profile-driven replica autoscaling on the real threaded
//! runtime (the §VII "automated tuning of servable execution" loop).
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_autoscale
//! ```
//!
//! A compute-heavy servable starts at 1 replica. Concurrent clients
//! measure throughput; the autoscaler reads the live profile, scales
//! the Parsl pool to the knee, and throughput is re-measured.

use dlhub_bench::report::{print_table, shape_check, write_csv};
use dlhub_core::autoscale::{AutoscalePolicy, Autoscaler};
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

fn measure_throughput(hub: &TestHub) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&hub.service);
            let token = hub.token.clone();
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    service
                        .run(&token, "dlhub/heavy", Value::Int((c * 100 + i) as i64))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (CLIENTS * REQUESTS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(false)
        .replicas(1)
        .consumers(CLIENTS)
        .build();
    hub.publish_simple(
        "heavy",
        ModelType::PythonFunction,
        servable_fn(|v| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(v.clone())
        }),
    );

    // Warm the pool and seed the profile.
    for i in 0..6 {
        hub.service
            .run(&hub.token, "dlhub/heavy", Value::Int(-i))
            .unwrap();
    }

    let before_replicas = hub.parsl.replicas("dlhub/heavy");
    let before = measure_throughput(&hub);

    let scaler = Autoscaler::new(
        hub.service.profiles().clone(),
        Arc::clone(&hub.parsl),
        AutoscalePolicy {
            max_replicas: CLIENTS,
            ..AutoscalePolicy::default()
        },
    );
    let decisions = scaler.reconcile();
    let after_replicas = hub.parsl.replicas("dlhub/heavy");
    let after = measure_throughput(&hub);

    let rows = vec![
        vec![
            "before".to_string(),
            before_replicas.to_string(),
            format!("{before:.1}"),
        ],
        vec![
            "after".to_string(),
            after_replicas.to_string(),
            format!("{after:.1}"),
        ],
    ];
    print_table(
        "Ablation: autoscaler (10 ms servable, 8 concurrent clients)",
        &["phase", "replicas", "req/s"],
        &rows,
    );
    let path = write_csv(
        "ablation_autoscale.csv",
        &["phase", "replicas", "throughput_rps"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!("\nautoscaler decisions: {decisions:?}");

    println!("\nshape checks:");
    shape_check(
        &format!("autoscaler raised replicas ({before_replicas} -> {after_replicas})"),
        after_replicas > before_replicas,
    );
    shape_check(
        &format!("throughput improved ({before:.1} -> {after:.1} req/s)"),
        after > before * 1.5,
    );
}
