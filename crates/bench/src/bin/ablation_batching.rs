//! Ablation: fixed vs profile-adaptive auto-batching (the paper's
//! proposed extension, §V-B3) on the *real* threaded runtime.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_batching
//! ```
//!
//! Workload: bursts of concurrent single requests against a cheap
//! servable (µs compute — batching is pure win) and an expensive one
//! (ms compute — big batches only add queueing delay). The adaptive
//! policy should batch the cheap servable aggressively while flushing
//! the expensive one almost immediately.

use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static CHEAP_CALLS: AtomicUsize = AtomicUsize::new(0);
static HEAVY_CALLS: AtomicUsize = AtomicUsize::new(0);

fn build_hub(adaptive: bool) -> TestHub {
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(false)
        .replicas(2)
        .config(ServingConfig {
            adaptive_batching: adaptive,
            batch_max: 64,
            batch_delay: Duration::from_millis(4),
            ..ServingConfig::default()
        })
        .build();
    hub.publish_simple(
        "cheap",
        ModelType::PythonFunction,
        servable_fn(|v| {
            CHEAP_CALLS.fetch_add(1, Ordering::Relaxed);
            Ok(v.clone())
        }),
    );
    hub.publish_simple(
        "heavy",
        ModelType::PythonFunction,
        servable_fn(|v| {
            HEAVY_CALLS.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(6));
            Ok(v.clone())
        }),
    );
    hub
}

/// Fire `n` concurrent requests through the auto-batcher; return
/// (wall time, per-request latencies).
fn burst(hub: &TestHub, servable: &str, n: usize) -> (Duration, Vec<Duration>) {
    let service = Arc::clone(&hub.service);
    let start = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let service = Arc::clone(&service);
            let token = hub.token.clone();
            let id = servable.to_string();
            std::thread::spawn(move || {
                let t = Instant::now();
                service
                    .run_batched(&token, &id, Value::Int(i as i64))
                    .unwrap();
                t.elapsed()
            })
        })
        .collect();
    let latencies: Vec<Duration> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (start.elapsed(), latencies)
}

fn median(v: Vec<Duration>) -> Duration {
    dlhub_core::metrics::percentile(&v, 0.5).unwrap_or_default()
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut results = std::collections::HashMap::new();
    for adaptive in [false, true] {
        let hub = build_hub(adaptive);
        // Seed profiles with a couple of requests each (also warms the
        // executor pools so the comparison is fair).
        for id in ["dlhub/cheap", "dlhub/heavy"] {
            for _ in 0..3 {
                hub.service.run(&hub.token, id, Value::Int(-1)).unwrap();
            }
        }
        for servable in ["cheap", "heavy"] {
            let id = format!("dlhub/{servable}");
            let mut wall = Duration::ZERO;
            let mut lat = Vec::new();
            for _ in 0..5 {
                let (w, l) = burst(&hub, &id, 24);
                wall += w;
                lat.extend(l);
            }
            let p50 = median(lat);
            let label = if adaptive { "adaptive" } else { "fixed" };
            results.insert((servable, adaptive), p50);
            rows.push(vec![
                servable.to_string(),
                label.to_string(),
                ms(wall.as_secs_f64() * 1e3 / 5.0),
                ms(p50.as_secs_f64() * 1e3),
            ]);
            csv.push(vec![
                servable.to_string(),
                label.to_string(),
                (wall.as_secs_f64() * 1e3 / 5.0).to_string(),
                (p50.as_secs_f64() * 1e3).to_string(),
            ]);
        }
    }

    print_table(
        "Ablation: auto-batcher sizing policy (bursts of 24 concurrent requests, 5 rounds)",
        &["servable", "policy", "burst wall ms", "p50 latency ms"],
        &rows,
    );
    let path = write_csv(
        "ablation_batching.csv",
        &["servable", "policy", "burst_wall_ms", "p50_latency_ms"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks:");
    let p50 =
        |servable: &'static str, adaptive: bool| results[&(servable, adaptive)].as_secs_f64() * 1e3;
    shape_check(
        &format!(
            "cheap servable: adaptive at least as good as fixed (fixed {} ms vs adaptive {} ms)",
            ms(p50("cheap", false)),
            ms(p50("cheap", true)),
        ),
        p50("cheap", true) <= p50("cheap", false) * 1.25,
    );
    shape_check(
        &format!(
            "heavy servable: adaptive avoids giant-batch queueing (fixed {} ms vs adaptive {} ms)",
            ms(p50("heavy", false)),
            ms(p50("heavy", true)),
        ),
        p50("heavy", true) <= p50("heavy", false) * 1.25,
    );
}
