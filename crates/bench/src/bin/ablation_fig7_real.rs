//! Ablation: Fig 7's replica-scaling shape on the **real** threaded
//! runtime (no simulator).
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_fig7_real
//! ```
//!
//! The DES reproduces Fig 7 with calibrated service times; this
//! ablation cross-checks the mechanism on actual threads: a 20 ms
//! servable behind the real broker → Task Manager → Parsl pool, with
//! enough concurrent clients to keep the pool saturated. Makespan
//! must fall near-linearly until the replica pool out-runs the
//! dispatch path, then flatten — the same knee the paper observed.

use dlhub_bench::report::{print_table, shape_check, write_csv};
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPLICAS: [usize; 5] = [1, 2, 4, 8, 16];
const REQUESTS: usize = 192;
const SERVICE_MS: u64 = 20;

fn main() {
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(false)
        .consumers(24)
        .replicas(1)
        .build();
    hub.publish_simple(
        "fixed-cost",
        ModelType::PythonFunction,
        servable_fn(|v| {
            std::thread::sleep(Duration::from_millis(SERVICE_MS));
            Ok(v.clone())
        }),
    );
    // Warm the pool and the queue path.
    hub.service
        .run(&hub.token, "dlhub/fixed-cost", Value::Int(-1))
        .unwrap();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut series = Vec::new();
    for r in REPLICAS {
        hub.parsl.scale("dlhub/fixed-cost", r);
        // Saturating client pool: 24 concurrent callers, REQUESTS total.
        let start = Instant::now();
        let handles: Vec<_> = (0..24)
            .map(|c| {
                let service = Arc::clone(&hub.service);
                let token = hub.token.clone();
                std::thread::spawn(move || {
                    for i in 0..REQUESTS / 24 {
                        service
                            .run(
                                &token,
                                "dlhub/fixed-cost",
                                Value::Int((c * 1000 + i) as i64),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let makespan = start.elapsed();
        let throughput = REQUESTS as f64 / makespan.as_secs_f64();
        series.push((r, makespan.as_secs_f64(), throughput));
        rows.push(vec![
            r.to_string(),
            format!("{:.0}", makespan.as_secs_f64() * 1e3),
            format!("{throughput:.0}"),
        ]);
        csv.push(vec![
            r.to_string(),
            (makespan.as_secs_f64() * 1e3).to_string(),
            throughput.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Ablation: real-runtime replica scaling ({REQUESTS} requests of a {SERVICE_MS} ms servable, 24 concurrent clients)"
        ),
        &["replicas", "makespan ms", "req/s"],
        &rows,
    );
    let path = write_csv(
        "ablation_fig7_real.csv",
        &["replicas", "makespan_ms", "throughput_rps"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks (cross-validating the Fig 7 simulator):");
    let rate = |replicas: usize| {
        series
            .iter()
            .find(|(r, _, _)| *r == replicas)
            .map(|(_, _, t)| *t)
            .unwrap()
    };
    shape_check(
        &format!(
            "near-linear early scaling ({:.0} -> {:.0} req/s from 1 -> 4 replicas)",
            rate(1),
            rate(4)
        ),
        rate(4) > rate(1) * 2.5,
    );
    shape_check(
        &format!(
            "diminishing returns at the tail ({:.0} -> {:.0} req/s from 8 -> 16 replicas)",
            rate(8),
            rate(16)
        ),
        rate(16) / rate(8) < rate(4) / rate(1),
    );
}
