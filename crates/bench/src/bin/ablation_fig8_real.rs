//! Ablation: Fig 8's protocol/architecture mechanism on the **real**
//! in-process serving systems (no simulator, no modeled RTTs).
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_fig8_real
//! ```
//!
//! With the WAN removed, what remains of Fig 8 is the per-request
//! mechanism the paper names: protocol encoding (gRPC binary vs
//! REST/JSON) and interface stack (direct server vs Flask-style JSON
//! round-trips). We serve the same CIFAR-10 network through the real
//! TensorFlow-Serving, SageMaker and Clipper implementations and
//! measure wall time per request.

use dlhub_baselines::protocol::Protocol;
use dlhub_baselines::{Clipper, SageMaker, TensorFlowModelServer};
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_container::Cluster;
use dlhub_core::servable::builtins::ImageClassifier;
use dlhub_core::servable::ModelType;
use dlhub_core::value::Value;
use std::sync::Arc;
use std::time::Instant;

const RUNS: usize = 60;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_runs<F: FnMut() -> Value>(mut f: F) -> f64 {
    // Warm up.
    f();
    let samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert!(matches!(out, Value::List(_)));
            elapsed
        })
        .collect();
    median_ms(samples)
}

fn main() {
    let seed = 7;
    let input = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        0,
    ));

    let tfs = TensorFlowModelServer::new();
    tfs.load_model(
        "cifar10",
        1,
        ModelType::Keras,
        Arc::new(ImageClassifier::cifar10(seed)),
    )
    .unwrap();
    let sm = SageMaker::new();
    sm.create_model("cifar10", Arc::new(ImageClassifier::cifar10(seed)))
        .unwrap();
    sm.create_endpoint("prod", "cifar10", 1).unwrap();
    let clipper = Clipper::deploy(Cluster::petrelkube(), true).unwrap();
    clipper
        .deploy_model("cifar10", Arc::new(ImageClassifier::cifar10(seed)), 1)
        .unwrap();
    clipper.register_application("app", Value::Null);
    clipper.link_model("app", "cifar10").unwrap();

    let tfs_grpc = time_runs(|| {
        tfs.predict_value(Protocol::Grpc, "cifar10", None, &input)
            .unwrap()
    });
    let tfs_rest = time_runs(|| {
        tfs.predict_value(Protocol::Rest, "cifar10", None, &input)
            .unwrap()
    });
    let sm_flask = time_runs(|| sm.invoke_endpoint("prod", &input).unwrap());
    // Clipper's cache would answer after the first query; use fresh
    // inputs per run to measure the serving path.
    let mut variant = 1u64;
    let clipper_time = time_runs(|| {
        variant += 1;
        let fresh = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
            &dlhub_core::tensor::models::CIFAR10_INPUT,
            variant,
        ));
        clipper.query("app", &fresh).unwrap().0
    });
    // Clipper cache hit path: same input repeatedly.
    let mut first = true;
    let clipper_hit = time_runs(|| {
        let out = clipper.query("app", &input).unwrap();
        if first {
            first = false;
        }
        out.0
    });

    let rows = vec![
        vec!["TFServing-gRPC".into(), ms(tfs_grpc)],
        vec!["TFServing-REST".into(), ms(tfs_rest)],
        vec!["SageMaker-Flask".into(), ms(sm_flask)],
        vec!["Clipper (miss)".into(), ms(clipper_time)],
        vec!["Clipper (cache hit)".into(), ms(clipper_hit)],
    ];
    print_table(
        &format!("Ablation: real in-process serving of CIFAR-10, median of {RUNS} runs (ms)"),
        &["system", "per-request ms"],
        &rows,
    );
    let path = write_csv(
        "ablation_fig8_real.csv",
        &["system", "per_request_ms"],
        &rows,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks (the mechanisms behind Fig 8, measured for real):");
    shape_check(
        &format!(
            "gRPC beats REST on the same server ({} vs {} ms)",
            ms(tfs_grpc),
            ms(tfs_rest)
        ),
        tfs_grpc < tfs_rest,
    );
    shape_check(
        &format!(
            "Flask-style JSON round-trips cost more than the direct server ({} vs {} ms)",
            ms(sm_flask),
            ms(tfs_grpc)
        ),
        sm_flask > tfs_grpc,
    );
    shape_check(
        &format!(
            "cache hits skip inference entirely ({} vs {} ms)",
            ms(clipper_hit),
            ms(clipper_time)
        ),
        clipper_hit < clipper_time / 2.0,
    );
}
