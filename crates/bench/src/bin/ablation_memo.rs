//! Ablation: memo-cache capacity under a skewed request mix.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_memo
//! ```
//!
//! Fig 4 measures memoization with a single repeated input — the
//! best case. Real workloads repeat *some* inputs (hot compositions,
//! reference images) under a long tail. This ablation drives the real
//! LRU [`MemoCache`] with a Zipf-distributed stream over 10,000
//! distinct CIFAR-sized inputs, sweeps the byte budget, and converts
//! the measured hit rate into an expected request latency on the
//! paper testbed (hit: Fig 4's memoized path; miss: Fig 3's full
//! path).

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_core::memo::{MemoCache, MemoKey};
use dlhub_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DISTINCT: usize = 10_000;
const REQUESTS: usize = 60_000;
const ZIPF_S: f64 = 1.1;

/// Draw Zipf-ish ranks via inverse-CDF over a precomputed table.
fn zipf_table(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let cifar = dlhub_bench::calibrate::find(&servables, "cifar10");
    let profile = dlhub_sim::testbed::dlhub();
    // Per-request costs from the testbed model (medians, no jitter).
    let miss_sample = {
        let mut p = profile.clone();
        p.jitter = 0.0;
        p.run_sequential(&cifar.model, 1, false, true, 0)[0]
    };
    let hit_sample = {
        let mut p = profile.clone();
        p.jitter = 0.0;
        p.run_sequential(&cifar.model, 2, true, true, 0)[1]
    };
    let miss_ms = miss_sample.request.as_millis();
    let hit_ms = hit_sample.request.as_millis();

    // One entry ≈ a cached CIFAR-10 output (top-1 JSON): small; the
    // *input hash* is the key, so capacity is effectively entry-count
    // driven. Use a representative 256-byte output.
    let output = Value::Json(serde_json::json!({
        "label": "airplane",
        "probability": 0.73212,
        "pad": "x".repeat(180),
    }));
    let entry_bytes = output.approx_size();

    let cdf = zipf_table(DISTINCT, ZIPF_S);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut hit_rates = Vec::new();
    for capacity_entries in [10usize, 100, 1000, 5000, 20_000] {
        let cache = MemoCache::new(capacity_entries * entry_bytes);
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = 0u64;
        for _ in 0..REQUESTS {
            let u: f64 = rng.gen();
            let rank = cdf.partition_point(|c| *c < u);
            let key = MemoKey::new("dlhub/cifar10", &Value::Int(rank as i64));
            if cache.get(&key).is_some() {
                hits += 1;
            } else {
                cache.put(key, output.clone());
            }
        }
        let hit_rate = hits as f64 / REQUESTS as f64;
        let mean_ms = hit_rate * hit_ms + (1.0 - hit_rate) * miss_ms;
        hit_rates.push((capacity_entries, hit_rate));
        rows.push(vec![
            capacity_entries.to_string(),
            format!("{:.1}%", hit_rate * 100.0),
            ms(mean_ms),
            cache.stats().evictions.to_string(),
        ]);
        csv.push(vec![
            capacity_entries.to_string(),
            hit_rate.to_string(),
            mean_ms.to_string(),
            cache.stats().evictions.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Ablation: memo capacity under Zipf(s={ZIPF_S}) over {DISTINCT} inputs ({REQUESTS} requests; hit {} ms, miss {} ms)",
            ms(hit_ms),
            ms(miss_ms)
        ),
        &["capacity (entries)", "hit rate", "mean request ms", "evictions"],
        &rows,
    );
    let path = write_csv(
        "ablation_memo.csv",
        &[
            "capacity_entries",
            "hit_rate",
            "mean_request_ms",
            "evictions",
        ],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks:");
    let rate = |cap: usize| {
        hit_rates
            .iter()
            .find(|(c, _)| *c == cap)
            .map(|(_, r)| *r)
            .unwrap()
    };
    shape_check(
        "hit rate grows monotonically with capacity",
        hit_rates.windows(2).all(|w| w[1].1 >= w[0].1),
    );
    shape_check(
        &format!(
            "Zipf head concentration: 100 entries (1% of inputs) already catch {:.0}% of requests",
            rate(100) * 100.0
        ),
        rate(100) > 0.25,
    );
    shape_check(
        &format!(
            "full-working-set cache approaches the compulsory-miss bound ({:.1}% hits)",
            rate(20_000) * 100.0
        ),
        rate(20_000) > 0.8,
    );
}
