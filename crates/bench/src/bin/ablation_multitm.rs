//! Ablation: scaling Task Managers past the Fig 7 dispatch ceiling.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_multitm
//! ```
//!
//! Fig 7 saturates because a single Task Manager serializes dispatch
//! at ~1/d req/s. The paper deploys "one or more Task Managers" (§IV);
//! this ablation sweeps the TM count on the testbed model and shows
//! the ceiling lifting to k/d until the replica pool becomes the
//! bottleneck instead.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{print_table, shape_check, write_csv};
use dlhub_sim::testbed;

const TASK_MANAGERS: [usize; 4] = [1, 2, 4, 8];
const REPLICAS: usize = 64;
const N_REQUESTS: usize = 5000;

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();
    let inception = dlhub_bench::calibrate::find(&servables, "inception");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut throughputs = Vec::new();
    for (k, tms) in TASK_MANAGERS.iter().enumerate() {
        let makespan = profile.run_throughput_multi_tm(
            &inception.model,
            N_REQUESTS,
            REPLICAS,
            *tms,
            55 + k as u64,
        );
        let throughput = N_REQUESTS as f64 / makespan.as_secs();
        throughputs.push((*tms, throughput));
        rows.push(vec![
            tms.to_string(),
            format!("{:.2}", makespan.as_secs()),
            format!("{throughput:.0}"),
        ]);
        csv.push(vec![
            tms.to_string(),
            makespan.as_millis().to_string(),
            throughput.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Ablation: Task-Manager scaling ({N_REQUESTS} Inception inferences, {REPLICAS} replicas)"
        ),
        &["task managers", "makespan s", "req/s"],
        &rows,
    );
    let path = write_csv(
        "ablation_multitm.csv",
        &["task_managers", "makespan_ms", "throughput_rps"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks:");
    let rate = |tms: usize| {
        throughputs
            .iter()
            .find(|(t, _)| *t == tms)
            .map(|(_, r)| *r)
            .unwrap()
    };
    shape_check(
        &format!(
            "2 TMs ≈ 2x the single-TM dispatch ceiling ({:.0} -> {:.0} req/s)",
            rate(1),
            rate(2)
        ),
        rate(2) / rate(1) > 1.7,
    );
    shape_check(
        &format!(
            "scaling flattens once the {REPLICAS}-replica pool binds ({:.0} -> {:.0} req/s from 4 -> 8 TMs)",
            rate(4),
            rate(8)
        ),
        rate(8) / rate(4) < rate(2) / rate(1),
    );
}
