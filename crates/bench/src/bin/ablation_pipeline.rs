//! Ablation: server-side pipelines vs client-side chaining (§VI-D).
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin ablation_pipeline
//! ```
//!
//! "Defining these steps as a pipeline means data are automatically
//! passed between each servable in the pipeline, meaning the entire
//! execution is performed server-side, drastically lowering both the
//! latency and user burden." On the paper testbed, client-side
//! chaining of the formation-enthalpy stages pays the 20.7 ms WAN RTT
//! (plus MS/TM overheads) once *per stage*; the registered pipeline
//! pays it once total.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::serving::percentiles;
use dlhub_sim::{testbed, SimTime};

const STAGES: [&str; 3] = ["matminer util", "matminer featurize", "matminer model"];
const RUNS: usize = 100;

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    // Client-side chaining: each stage is its own request; the WAN
    // round trip and MS/TM overheads repeat per stage.
    let mut client_side = vec![SimTime::ZERO; RUNS];
    for (k, stage) in STAGES.iter().enumerate() {
        let c = dlhub_bench::calibrate::find(&servables, stage);
        let samples = profile.run_sequential(&c.model, RUNS, false, false, 900 + k as u64);
        for (total, s) in client_side.iter_mut().zip(&samples) {
            *total += s.request;
        }
    }

    // Server-side pipeline: one request-level envelope, three
    // executor invocations chained at the Task Manager without
    // returning to the client between stages.
    let mut server_side = vec![SimTime::ZERO; RUNS];
    let mut per_stage_invocations: Vec<Vec<SimTime>> = Vec::new();
    for (k, stage) in STAGES.iter().enumerate() {
        let c = dlhub_bench::calibrate::find(&servables, stage);
        let samples = profile.run_sequential(&c.model, RUNS, false, false, 900 + k as u64);
        per_stage_invocations.push(samples.iter().map(|s| s.invocation).collect());
    }
    // The request-minus-invocation envelope (MS overhead + WAN + TM),
    // paid once: reuse the first stage's samples to extract it.
    let c0 = dlhub_bench::calibrate::find(&servables, STAGES[0]);
    let envelope_samples = profile.run_sequential(&c0.model, RUNS, false, false, 900);
    for i in 0..RUNS {
        let envelope = envelope_samples[i]
            .request
            .saturating_sub(envelope_samples[i].invocation);
        server_side[i] = per_stage_invocations
            .iter()
            .fold(envelope, |acc, stage| acc + stage[i]);
    }

    let (c5, c50, c95) = percentiles(&client_side);
    let (s5, s50, s95) = percentiles(&server_side);
    let rows = vec![
        vec![
            "client-side chaining".to_string(),
            ms(c50.as_millis()),
            format!("[{}..{}]", ms(c5.as_millis()), ms(c95.as_millis())),
        ],
        vec![
            "server-side pipeline".to_string(),
            ms(s50.as_millis()),
            format!("[{}..{}]", ms(s5.as_millis()), ms(s95.as_millis())),
        ],
    ];
    print_table(
        "Ablation: formation-enthalpy pipeline, end-to-end ms (100 runs)",
        &["strategy", "median", "p5..p95"],
        &rows,
    );
    let path = write_csv(
        "ablation_pipeline.csv",
        &["strategy", "median_ms", "p5_ms", "p95_ms"],
        &[
            vec![
                "client-side".into(),
                c50.as_millis().to_string(),
                c5.as_millis().to_string(),
                c95.as_millis().to_string(),
            ],
            vec![
                "server-side".into(),
                s50.as_millis().to_string(),
                s5.as_millis().to_string(),
                s95.as_millis().to_string(),
            ],
        ],
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks against the paper:");
    let speedup = c50.as_millis() / s50.as_millis();
    shape_check(
        &format!("server-side pipeline drastically lowers latency ({speedup:.2}x)"),
        speedup > 1.8,
    );
    // The saving equals roughly two extra WAN envelopes (2 stages'
    // worth of ms_overhead + RTT + tm_overhead ≈ 2 × 27 ms).
    let saved = c50.as_millis() - s50.as_millis();
    shape_check(
        &format!("saving ≈ two request envelopes ({} ms)", ms(saved)),
        (40.0..75.0).contains(&saved),
    );
}
