//! Broker throughput: the sharded-ring substrate alone and the full
//! serving path on a memo-bypass workload.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin broker
//! ```
//!
//! Three series, each over 1/2/4/8/16 threads:
//!
//! * **raw** — broker-only hand-off: `t` producers and `t` consumers
//!   on one bounded topic, counting acked deliveries. This isolates
//!   the sharded MPMC ring (segment locks, ticket counters, condvar
//!   parking) from everything above it.
//! * **serve_rtt0** — closed-loop clients driving the Management
//!   Service with the memo cache disabled, zero simulated RTT. Every
//!   request runs broker → Task Manager → executor with the binary
//!   wire codec and the refcounted payload path; single-thread req/s
//!   here is the broker-path service rate the gate compares against
//!   the committed hot-path baseline.
//! * **serve_rtt200** — the same workload behind the §V-A testbed's
//!   simulated client RTT (default 200 µs, `BROKER_RTT_US` to
//!   override). With the RTT spent client-side, aggregate throughput
//!   can only rise with the client count if the broker path does not
//!   serialize — this series carries the scaling gate.
//!
//! Prints the table and writes `results/BENCH_broker.json`, mirrored
//! to the workspace root (`BROKER_MIRROR=0` to disable, as CI smoke
//! runs do) so the committed numbers live next to the code they
//! measure. `scripts/bench_gate.py --check broker` enforces the
//! thresholds against the committed artifact.

use bytes::Bytes;
use dlhub_bench::report::{print_table, shape_check, write_json};
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use dlhub_queue::{Broker, BrokerConfig, TopicConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Bounded topic for the raw series: backpressure keeps the queue at
/// steady state so the measurement is hand-off rate, not enqueue rate
/// into an ever-growing backlog.
const RAW_CAPACITY: usize = 1024;

struct Cell {
    threads: usize,
    ops: u64,
    elapsed: Duration,
}

impl Cell {
    fn per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Raw broker hand-off: `threads` producers and `threads` consumers on
/// one topic; one op = one message sent, delivered, and acked.
fn drive_raw(threads: usize, window: Duration) -> Cell {
    let broker = Broker::new(BrokerConfig::default());
    broker
        .create_topic_with(
            "bench",
            TopicConfig {
                capacity: Some(RAW_CAPACITY),
                ..TopicConfig::default()
            },
        )
        .expect("create bench topic");
    let barrier = Arc::new(Barrier::new(threads * 2 + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let payload = Bytes::from_static(&[0u8; 64]);

    let producers: Vec<_> = (0..threads)
        .map(|_| {
            let broker = broker.clone();
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            let payload = payload.clone();
            std::thread::spawn(move || {
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // `try_send` + yield rather than the blocking send:
                    // producers must observe `stop` even when consumers
                    // have already quit and the topic stays full.
                    if broker.try_send("bench", payload.clone()).is_err() {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..threads)
        .map(|_| {
            let broker = broker.clone();
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut acked = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(delivery) = broker.recv_timeout("bench", Duration::from_millis(5)) {
                        delivery.ack();
                        acked += 1;
                    }
                }
                acked
            })
        })
        .collect();

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = consumers
        .into_iter()
        .map(|h| h.join().expect("consumer thread"))
        .sum();
    let elapsed = started.elapsed();
    for p in producers {
        p.join().expect("producer thread");
    }
    Cell {
        threads,
        ops,
        elapsed,
    }
}

/// Closed-loop serving-path clients, memo bypassed: every request is
/// unique, so each one crosses the broker to a Task Manager and back.
fn drive_serve(hub: &TestHub, threads: usize, window: Duration, rtt: Duration) -> Cell {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&hub.service);
            let token = hub.token.clone();
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut i = 0i64;
                // Per-thread xorshift for think-time jitter; seeded by
                // thread index so runs are reproducible.
                let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((t as u64 + 1) << 17);
                let mut next_unit = move || {
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    (rng_state >> 11) as f64 / (1u64 << 53) as f64
                };
                barrier.wait();
                if !rtt.is_zero() && threads > 1 {
                    // De-phase the closed loops across one RTT period:
                    // independent remote clients are not barrier-
                    // synchronized, and without this the identical
                    // sleep periods keep every client arriving in one
                    // lockstep burst whose tail queues behind the whole
                    // batch on every round.
                    std::thread::sleep(rtt * t as u32 / threads as u32);
                }
                while !stop.load(Ordering::Relaxed) {
                    // Unique per thread and iteration: never memoizable.
                    let input = Value::Int(((t as i64) << 40) | i);
                    service
                        .run(&token, "dlhub/echo", input)
                        .expect("echo request");
                    ops += 1;
                    i += 1;
                    if !rtt.is_zero() {
                        // Client-side network gap, spent outside the
                        // service as in the hotpath bench. Jittered
                        // ±25% around the nominal RTT (mean unchanged)
                        // so independent clients stay de-phased instead
                        // of drifting back into lockstep arrivals.
                        let jitter = 0.75 + 0.5 * next_unit();
                        std::thread::sleep(rtt.mul_f64(jitter));
                    }
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    Cell {
        threads,
        ops,
        elapsed: started.elapsed(),
    }
}

fn main() {
    let window = Duration::from_millis(
        std::env::var("BROKER_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1500),
    );
    let rtt = Duration::from_micros(
        std::env::var("BROKER_RTT_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    );
    // Same shape as the hotpath hub — generous downstream capacity so
    // the broker path, not executor starvation, is what's measured —
    // but with the memo cache off so no request can short-circuit.
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(false)
        .replicas(16)
        .consumers(16)
        .config(ServingConfig {
            async_workers: 16,
            // Sample the run into the time-series store so the
            // artifact carries a queue-wait/throughput time axis.
            telemetry_interval: Duration::from_millis(50),
            ..ServingConfig::default()
        })
        .build();
    hub.publish_simple(
        "echo",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );

    let mut table = Vec::new();
    let mut json_modes = serde_json::Map::new();
    let mut record = |label: &str, cells: &[Cell], table: &mut Vec<Vec<String>>| {
        let series: Vec<_> = cells
            .iter()
            .map(|cell| {
                table.push(vec![
                    label.to_string(),
                    cell.threads.to_string(),
                    format!("{:.0}", cell.per_s()),
                ]);
                serde_json::json!({
                    "threads": cell.threads,
                    "ops": cell.ops,
                    "elapsed_s": cell.elapsed.as_secs_f64(),
                    "per_s": cell.per_s(),
                })
            })
            .collect();
        json_modes.insert(label.to_string(), serde_json::Value::Array(series));
    };

    let raw: Vec<_> = THREADS
        .iter()
        .map(|&t| drive_raw(t, window.min(Duration::from_millis(800))))
        .collect();
    record("raw", &raw, &mut table);

    let serve_rtt0: Vec<_> = THREADS
        .iter()
        .map(|&t| drive_serve(&hub, t, window, Duration::ZERO))
        .collect();
    record("serve_rtt0", &serve_rtt0, &mut table);

    let serve_rtt: Vec<_> = THREADS
        .iter()
        .map(|&t| drive_serve(&hub, t, window, rtt))
        .collect();
    record(
        &format!("serve_rtt{}", rtt.as_micros()),
        &serve_rtt,
        &mut table,
    );

    print_table(
        &format!(
            "Broker throughput ({}ms per cell, {}us client RTT on the scaled series)",
            window.as_millis(),
            rtt.as_micros()
        ),
        &["mode", "threads", "ops/s"],
        &table,
    );

    let rate = |cells: &[Cell], threads: usize| {
        cells
            .iter()
            .find(|c| c.threads == threads)
            .map(|c| c.per_s())
            .unwrap_or(0.0)
    };
    let single = rate(&serve_rtt0, 1);
    let speedup = rate(&serve_rtt, 8) / rate(&serve_rtt, 1).max(1.0);
    println!("\nshape checks:");
    shape_check(
        &format!("memo-bypass single-thread path sustains load ({single:.0} req/s)"),
        single > 0.0,
    );
    shape_check(
        &format!(
            "RTT series scales from 1 to 8 clients ({:.0} → {:.0} req/s, {speedup:.2}x)",
            rate(&serve_rtt, 1),
            rate(&serve_rtt, 8)
        ),
        speedup >= 2.0,
    );

    let store = hub
        .service
        .telemetry_store()
        .expect("telemetry enabled on the serve hub");
    shape_check(
        &format!(
            "telemetry collector sampled the serve runs ({} passes)",
            store.samples_taken()
        ),
        store.samples_taken() > 0,
    );

    let doc = serde_json::json!({
        "bench": "broker",
        "window_ms": window.as_millis() as u64,
        "client_rtt_us": rtt.as_micros() as u64,
        "thread_counts": THREADS.to_vec(),
        "raw_capacity": RAW_CAPACITY,
        "modes": serde_json::Value::Object(json_modes),
        "serve_rtt0_1t_req_per_s": single,
        "serve_rtt_speedup_8t_over_1t": speedup,
        // Time axis of the serve runs: broker queue wait, per-servable
        // rates and pool gauges from the sampling collector, capped to
        // the newest points per ring tier to keep the artifact small.
        "telemetry": store.to_json_capped(6),
    });
    let path = write_json("BENCH_broker.json", &doc);
    let mirror = std::env::var("BROKER_MIRROR").map_or(true, |v| v != "0");
    if mirror {
        let root_copy = std::path::Path::new("BENCH_broker.json");
        std::fs::copy(&path, root_copy).expect("copy BENCH_broker.json");
        println!(
            "wrote {} (mirrored to {})",
            path.display(),
            root_copy.display()
        );
    } else {
        println!("wrote {} (mirror disabled)", path.display());
    }
}
