//! Fig 3: request, invocation and inference times for the six
//! evaluation servables — 100 requests each through the DLHub stack on
//! the paper testbed, memoization disabled, batch size 1 (§V-B1).
//!
//! Expected shape (paper): per-layer overheads of ~10–20 ms (the
//! request−invocation gap includes the 20.7 ms MS↔TM RTT); Inception
//! and CIFAR-10 show extra overhead from shipping image inputs; bars
//! are medians with 5th/95th-percentile whiskers.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::serving::percentiles;
use dlhub_sim::{testbed, SimTime};

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut overhead_gaps = Vec::new();
    for (i, c) in servables.iter().enumerate() {
        let samples = profile.run_sequential(&c.model, 100, false, true, 42 + i as u64);
        let series = |f: fn(&dlhub_sim::RequestSample) -> SimTime| {
            let v: Vec<SimTime> = samples.iter().map(f).collect();
            percentiles(&v)
        };
        let (inf5, inf50, inf95) = series(|s| s.inference);
        let (inv5, inv50, inv95) = series(|s| s.invocation);
        let (req5, req50, req95) = series(|s| s.request);
        rows.push(vec![
            c.name.to_string(),
            format!(
                "{} [{}..{}]",
                ms(inf50.as_millis()),
                ms(inf5.as_millis()),
                ms(inf95.as_millis())
            ),
            format!(
                "{} [{}..{}]",
                ms(inv50.as_millis()),
                ms(inv5.as_millis()),
                ms(inv95.as_millis())
            ),
            format!(
                "{} [{}..{}]",
                ms(req50.as_millis()),
                ms(req5.as_millis()),
                ms(req95.as_millis())
            ),
        ]);
        csv.push(vec![
            c.name.to_string(),
            inf50.as_millis().to_string(),
            inf5.as_millis().to_string(),
            inf95.as_millis().to_string(),
            inv50.as_millis().to_string(),
            inv5.as_millis().to_string(),
            inv95.as_millis().to_string(),
            req50.as_millis().to_string(),
            req5.as_millis().to_string(),
            req95.as_millis().to_string(),
        ]);
        overhead_gaps.push((
            c.name,
            inv50.saturating_sub(inf50).as_millis(), // TM + dispatch costs
            req50.saturating_sub(inv50).as_millis(), // MS + WAN costs
        ));
    }

    print_table(
        "Fig 3: per-servable timings, median [p5..p95] in ms (100 requests, memo off, batch 1)",
        &["servable", "inference", "invocation", "request"],
        &rows,
    );
    let path = write_csv(
        "fig3.csv",
        &[
            "servable",
            "inference_p50_ms",
            "inference_p5_ms",
            "inference_p95_ms",
            "invocation_p50_ms",
            "invocation_p5_ms",
            "invocation_p95_ms",
            "request_p50_ms",
            "request_p5_ms",
            "request_p95_ms",
        ],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks against the paper:");
    // "In most cases, costs are around 10–20ms" — the MS-side gap
    // includes the 20.7ms RTT, so check the 20-35ms envelope; the
    // TM-side gap should be a few ms.
    let ms_gaps_ok = overhead_gaps
        .iter()
        .all(|(_, _, ms_gap)| (20.0..40.0).contains(ms_gap));
    shape_check(
        "MS-side overhead ≈ RTT + ~10ms for every servable",
        ms_gaps_ok,
    );
    let image_models_pay_more = {
        let gap = |name: &str| {
            overhead_gaps
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, tm, _)| *tm)
                .unwrap()
        };
        gap("inception") > gap("matminer util") && gap("cifar10") >= gap("matminer util")
    };
    shape_check(
        "higher overheads for Inception/CIFAR-10 (input transfer)",
        image_models_pay_more,
    );
    let inception_dominates = rows[1][1] != rows[0][1];
    shape_check(
        "inference ordering inception > cifar10 > util",
        inception_dominates,
    );
}
