//! Fig 4: performance impact of memoization (§V-B2).
//!
//! Same fixed-input methodology as Fig 3, with memoization enabled vs
//! disabled. Expected shape (paper): memoization reduces invocation
//! time by 95.3–99.8 % and request time by 24.3–95.4 %; inference
//! vanishes entirely on hits.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::serving::percentiles;
use dlhub_sim::testbed;

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut reductions = Vec::new();
    for (i, c) in servables.iter().enumerate() {
        let seed = 1000 + i as u64;
        let cold = profile.run_sequential(&c.model, 100, false, true, seed);
        let warm_all = profile.run_sequential(&c.model, 101, true, true, seed);
        // Discard the warm-up miss; the remaining 100 are hits.
        let warm: Vec<_> = warm_all[1..].to_vec();
        assert!(warm.iter().all(|s| s.cache_hit));

        let median = |samples: &[dlhub_sim::RequestSample],
                      f: fn(&dlhub_sim::RequestSample) -> dlhub_sim::SimTime| {
            let v: Vec<_> = samples.iter().map(f).collect();
            percentiles(&v).1
        };
        let inv_off = median(&cold, |s| s.invocation).as_millis();
        let inv_on = median(&warm, |s| s.invocation).as_millis();
        let req_off = median(&cold, |s| s.request).as_millis();
        let req_on = median(&warm, |s| s.request).as_millis();
        let inv_reduction = 100.0 * (1.0 - inv_on / inv_off);
        let req_reduction = 100.0 * (1.0 - req_on / req_off);
        reductions.push((c.name, inv_reduction, req_reduction));
        rows.push(vec![
            c.name.to_string(),
            ms(inv_off),
            ms(inv_on),
            format!("{inv_reduction:.1}%"),
            ms(req_off),
            ms(req_on),
            format!("{req_reduction:.1}%"),
        ]);
        csv.push(vec![
            c.name.to_string(),
            inv_off.to_string(),
            inv_on.to_string(),
            inv_reduction.to_string(),
            req_off.to_string(),
            req_on.to_string(),
            req_reduction.to_string(),
        ]);
    }

    print_table(
        "Fig 4: memoization impact, median ms (memo off vs on, 100 fixed-input requests)",
        &[
            "servable",
            "invoc off",
            "invoc on",
            "invoc cut",
            "req off",
            "req on",
            "req cut",
        ],
        &rows,
    );
    let path = write_csv(
        "fig4.csv",
        &[
            "servable",
            "invocation_off_ms",
            "invocation_on_ms",
            "invocation_reduction_pct",
            "request_off_ms",
            "request_on_ms",
            "request_reduction_pct",
        ],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks against the paper:");
    // Paper: invocation reduced 95.3–99.8%; request reduced
    // 24.3–95.4%. Check our reductions land in compatible bands.
    let inv_band = reductions.iter().all(|(_, inv, _)| *inv >= 90.0);
    shape_check("invocation time cut by >=90% for every servable", inv_band);
    let (req_min, req_max) = reductions.iter().fold(
        (f64::INFINITY, f64::NEG_INFINITY),
        |(lo, hi), (_, _, req)| (lo.min(*req), hi.max(*req)),
    );
    shape_check(
        &format!(
            "request-time cut varies widely with servable cost ({req_min:.1}%..{req_max:.1}%)"
        ),
        req_min < 50.0 && req_max > 60.0,
    );
    let heavy_benefit_most = {
        let cut = |name: &str| {
            reductions
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, _, r)| *r)
                .unwrap()
        };
        cut("inception") > cut("noop")
    };
    shape_check(
        "expensive servables gain the largest request-time cuts",
        heavy_benefit_most,
    );
}
