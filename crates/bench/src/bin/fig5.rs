//! Fig 5: servable invocation time with and without batching, for
//! 1–100 requests (§V-B3).
//!
//! Expected shape (paper): "batching significantly reduces overall
//! invocation time" — the unbatched series pays per-request dispatch,
//! the batched series amortizes it across the batch.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::{testbed, BatchPolicy};

const SIZES: [usize; 7] = [1, 2, 5, 10, 20, 50, 100];
const SERVABLES: [&str; 3] = ["noop", "cifar10", "matminer model"];

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut ratio_at_100 = Vec::new();
    for name in SERVABLES {
        let c = dlhub_bench::calibrate::find(&servables, name);
        for (k, n) in SIZES.iter().enumerate() {
            let unbatched = profile.run_batch(&c.model, *n, None, 7 + k as u64);
            let batched = profile.run_batch(
                &c.model,
                *n,
                Some(BatchPolicy { max_batch: 10_000 }),
                7 + k as u64,
            );
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                ms(unbatched.as_millis()),
                ms(batched.as_millis()),
                format!("{:.2}x", unbatched.as_millis() / batched.as_millis()),
            ]);
            csv.push(vec![
                name.to_string(),
                n.to_string(),
                unbatched.as_millis().to_string(),
                batched.as_millis().to_string(),
            ]);
            if *n == 100 {
                ratio_at_100.push((name, unbatched.as_millis() / batched.as_millis()));
            }
        }
    }

    print_table(
        "Fig 5: total invocation time (ms) for n requests, unbatched vs batched",
        &["servable", "n", "unbatched", "batched", "speedup"],
        &rows,
    );
    let path = write_csv(
        "fig5.csv",
        &["servable", "n_requests", "unbatched_ms", "batched_ms"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks against the paper:");
    shape_check(
        "batching reduces invocation time for every servable at n=100",
        ratio_at_100.iter().all(|(_, r)| *r > 1.0),
    );
    let cheap_gain = ratio_at_100
        .iter()
        .find(|(n, _)| *n == "noop")
        .map(|(_, r)| *r)
        .unwrap();
    let heavy_gain = ratio_at_100
        .iter()
        .find(|(n, _)| *n == "cifar10")
        .map(|(_, r)| *r)
        .unwrap();
    shape_check(
        &format!(
            "cheap servables gain most (noop {cheap_gain:.1}x vs cifar10 {heavy_gain:.1}x): overheads dominate their unbatched time"
        ),
        cheap_gain > heavy_gain,
    );
}
