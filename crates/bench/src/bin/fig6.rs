//! Fig 6: invocation time vs number of requests with batching, up to
//! 10,000 requests (§V-B3).
//!
//! Expected shape (paper): "a roughly linear relationship between
//! invocation time and number of requests" — verified here with a
//! least-squares fit (R² close to 1).

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{linear_fit, ms, print_table, shape_check, write_csv};
use dlhub_sim::{testbed, BatchPolicy};

const SIZES: [usize; 8] = [100, 500, 1000, 2000, 4000, 6000, 8000, 10_000];
const SERVABLES: [&str; 3] = ["noop", "cifar10", "matminer model"];

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut fits = Vec::new();
    for name in SERVABLES {
        let c = dlhub_bench::calibrate::find(&servables, name);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (k, n) in SIZES.iter().enumerate() {
            let total = profile.run_batch(
                &c.model,
                *n,
                Some(BatchPolicy { max_batch: 10_000 }),
                31 + k as u64,
            );
            xs.push(*n as f64);
            ys.push(total.as_millis());
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                ms(total.as_millis()),
                ms(total.as_millis() / *n as f64),
            ]);
            csv.push(vec![
                name.to_string(),
                n.to_string(),
                total.as_millis().to_string(),
            ]);
        }
        let (a, b, r2) = linear_fit(&xs, &ys);
        fits.push((name, a, b, r2));
    }

    print_table(
        "Fig 6: batched invocation time vs request count (to 10,000)",
        &["servable", "n", "total ms", "ms/request"],
        &rows,
    );
    let path = write_csv(
        "fig6.csv",
        &["servable", "n_requests", "invocation_ms"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nlinear fits (time = a + b·n):");
    for (name, a, b, r2) in &fits {
        println!("  {name:<16} a={a:9.2} ms  b={b:7.4} ms/req  R²={r2:.5}");
    }

    println!("\nshape checks against the paper:");
    // For compute-bearing servables the per-item term dominates and
    // linearity is near-perfect; noop's per-item cost is sub-µs, so
    // its series is one jittered constant — hold it to a looser bound.
    shape_check(
        "roughly linear relationship (R² ≥ 0.999 compute-bound, ≥ 0.9 noop)",
        fits.iter().all(|(name, _, _, r2)| {
            if *name == "noop" {
                *r2 >= 0.9
            } else {
                *r2 >= 0.999
            }
        }),
    );
    shape_check("per-request slope tracks servable cost (cifar10 > noop)", {
        let slope = |name: &str| {
            fits.iter()
                .find(|(n, ..)| *n == name)
                .map(|(_, _, b, _)| *b)
                .unwrap()
        };
        slope("cifar10") > slope("noop")
    });
}
