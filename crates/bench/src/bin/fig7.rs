//! Fig 7: time for three models to process 5,000 inferences at varying
//! replica counts (§V-B4).
//!
//! Expected shape (paper): "when serving Inception requests,
//! throughput increases rapidly up to ∼15 replicas, after which
//! subsequent replicas have diminishing effect and executor throughput
//! eventually saturates … servables that execute for shorter periods
//! benefit less from additional replicas, presumably because task
//! dispatch activities eventually come to dominate."

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::testbed;

const REPLICAS: [usize; 10] = [1, 2, 4, 6, 8, 12, 15, 20, 26, 32];
const SERVABLES: [&str; 3] = ["inception", "cifar10", "matminer featurize"];
const N_REQUESTS: usize = 5000;

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);
    let profile = testbed::dlhub();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut knees = Vec::new();
    for name in SERVABLES {
        let c = dlhub_bench::calibrate::find(&servables, name);
        let mut series = Vec::new();
        for (k, r) in REPLICAS.iter().enumerate() {
            let makespan = profile.run_throughput(&c.model, N_REQUESTS, *r, 77 + k as u64);
            let secs = makespan.as_secs();
            let throughput = N_REQUESTS as f64 / secs;
            series.push((*r, secs));
            rows.push(vec![
                name.to_string(),
                r.to_string(),
                format!("{:.2}", secs),
                format!("{throughput:.0}"),
            ]);
            csv.push(vec![
                name.to_string(),
                r.to_string(),
                ms(makespan.as_millis()),
                throughput.to_string(),
            ]);
        }
        // Knee: smallest replica count already within 10% of the best
        // (fully scaled-out) makespan — where extra replicas stop
        // paying off.
        let best = series.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
        let knee = series
            .iter()
            .find(|(_, s)| *s <= best * 1.10)
            .map(|(r, _)| *r);
        knees.push((name, knee, c.model.service_time.as_millis()));
    }

    print_table(
        &format!("Fig 7: makespan for {N_REQUESTS} inferences vs replica count"),
        &["servable", "replicas", "makespan s", "req/s"],
        &rows,
    );
    let path = write_csv(
        "fig7.csv",
        &["servable", "replicas", "makespan_ms", "throughput_rps"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nsaturation knees (smallest replica count within 10% of the best makespan):");
    for (name, knee, service_ms) in &knees {
        println!(
            "  {name:<20} service {service_ms:>7.2} ms  saturates at {} replicas",
            knee.map(|k| k.to_string()).unwrap_or_else(|| ">32".into())
        );
    }

    println!("\nshape checks against the paper:");
    let knee_of = |name: &str| {
        knees
            .iter()
            .find(|(n, _, _)| *n == name)
            .and_then(|(_, k, _)| *k)
            .unwrap_or(64)
    };
    shape_check(
        &format!(
            "Inception saturates around ~15 replicas (measured {})",
            knee_of("inception")
        ),
        (8..=26).contains(&knee_of("inception")),
    );
    shape_check(
        "shorter servables saturate earlier (featurize < cifar10 <= inception)",
        knee_of("matminer featurize") <= knee_of("cifar10")
            && knee_of("cifar10") <= knee_of("inception"),
    );
}
