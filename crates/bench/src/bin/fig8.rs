//! Fig 8: serving comparison across TensorFlow Serving, SageMaker,
//! Clipper and DLHub on CIFAR-10 and Inception (§V-B5).
//!
//! Expected shape (paper): TF-Serving-framework systems beat the
//! Python-based ones (C++ server); gRPC slightly beats REST; DLHub is
//! comparable to the other Python stacks; with memoization DLHub's
//! invocation collapses to ~1 ms — below everything, including
//! Clipper's cluster-side cache, which still pays the trip to the
//! frontend.

use dlhub_bench::calibrate_servables;
use dlhub_bench::report::{ms, print_table, shape_check, write_csv};
use dlhub_sim::serving::percentiles;
use dlhub_sim::{testbed, ServingProfile, SimTime};

const MODELS: [&str; 2] = ["cifar10", "inception"];

fn median_times(
    profile: &ServingProfile,
    servable: &dlhub_sim::ServableModel,
    memo: bool,
    seed: u64,
) -> (SimTime, SimTime) {
    let samples = if memo {
        // Discard the warm-up miss, report steady-state hits.
        profile.run_sequential(servable, 101, true, true, seed)[1..].to_vec()
    } else {
        profile.run_sequential(servable, 100, false, true, seed)
    };
    let inv: Vec<SimTime> = samples.iter().map(|s| s.invocation).collect();
    let req: Vec<SimTime> = samples.iter().map(|s| s.request).collect();
    (percentiles(&inv).1, percentiles(&req).1)
}

fn main() {
    println!("calibrating real kernels…");
    let servables = calibrate_servables(7);

    // (profile, memoized) pairs in presentation order.
    let mut systems: Vec<(ServingProfile, bool)> = testbed::all_profiles()
        .into_iter()
        .map(|p| (p, false))
        .collect();
    systems.push((testbed::clipper(), true));
    systems.push((testbed::dlhub(), true));

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut medians = std::collections::HashMap::new();
    for model_name in MODELS {
        let c = dlhub_bench::calibrate::find(&servables, model_name);
        for (k, (profile, memo)) in systems.iter().enumerate() {
            let label = if *memo {
                format!("{}+memo", profile.name)
            } else {
                profile.name.clone()
            };
            let (inv, req) = median_times(profile, &c.model, *memo, 400 + k as u64);
            medians.insert((model_name, label.clone()), (inv, req));
            rows.push(vec![
                model_name.to_string(),
                label.clone(),
                ms(inv.as_millis()),
                ms(req.as_millis()),
            ]);
            csv.push(vec![
                model_name.to_string(),
                label,
                inv.as_millis().to_string(),
                req.as_millis().to_string(),
            ]);
        }
    }

    print_table(
        "Fig 8: median invocation/request time (ms), 100 requests per system and model",
        &["model", "system", "invocation", "request"],
        &rows,
    );
    let path = write_csv(
        "fig8.csv",
        &["model", "system", "invocation_ms", "request_ms"],
        &csv,
    );
    println!("\nwrote {}", path.display());

    println!("\nshape checks against the paper:");
    let inv = |model: &'static str, system: &str| {
        medians
            .get(&(model, system.to_string()))
            .map(|(i, _)| i.as_millis())
            .unwrap_or_else(|| panic!("missing {model}/{system}"))
    };
    for model in MODELS {
        shape_check(
            &format!("[{model}] TFServing-gRPC < TFServing-REST"),
            inv(model, "TFServing-gRPC") < inv(model, "TFServing-REST"),
        );
        shape_check(
            &format!("[{model}] TF-Serving framework beats SageMaker-Flask"),
            inv(model, "TFServing-gRPC") < inv(model, "SageMaker-Flask")
                && inv(model, "TFServing-REST") < inv(model, "SageMaker-Flask"),
        );
        let dlhub_vs_flask = inv(model, "DLHub") / inv(model, "SageMaker-Flask");
        shape_check(
            &format!(
                "[{model}] DLHub comparable to Python stacks (DLHub/Flask = {dlhub_vs_flask:.2})"
            ),
            (0.7..1.4).contains(&dlhub_vs_flask),
        );
        shape_check(
            &format!(
                "[{model}] DLHub+memo invocation ≈ 1 ms (measured {})",
                ms(inv(model, "DLHub+memo"))
            ),
            inv(model, "DLHub+memo") < 1.5,
        );
        shape_check(
            &format!("[{model}] DLHub+memo beats Clipper+memo (cache placement)"),
            inv(model, "DLHub+memo") < inv(model, "Clipper+memo"),
        );
        shape_check(
            &format!("[{model}] Clipper+memo still beats every non-memoized system"),
            inv(model, "Clipper+memo") < inv(model, "TFServing-gRPC"),
        );
    }
}
