//! Request hot-path scaling: aggregate throughput of the Management
//! Service under concurrent clients.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin hotpath
//! ```
//!
//! Drives `ManagementService::run` with 1/2/4/8/16 closed-loop client
//! threads in two regimes:
//!
//! * **hit100** — every request hits the memo cache (the §V-B5 fast
//!   path). This isolates the service's own locking: preflight,
//!   sharded memo lookup, stats. With the sharded cache and atomic
//!   counters, aggregate throughput should scale with the client
//!   count.
//! * **hit0** — every request carries a fresh input, so each one runs
//!   the full broker → Task Manager → executor path with a memo miss
//!   and a put on the way back.
//!
//! Like the rest of the harness, clients are separated from the
//! service by a simulated network RTT (§V-A testbed; default 200 µs,
//! `HOTPATH_RTT_US` to override, 0 for raw in-process mode). The RTT
//! is spent in the client between requests and excluded from the
//! reported latencies, so p50/p99 measure the service alone while
//! req/s reflects what concurrent remote clients would see: if the
//! request path serialized, adding clients could not raise aggregate
//! throughput.
//!
//! Prints req/s and p50/p99 latency per cell and writes the series as
//! JSON (`results/BENCH_hotpath.json`, mirrored to the workspace root
//! so the numbers are committed alongside the code they measure).

use dlhub_bench::report::{print_table, shape_check, write_json};
use dlhub_core::admission::AdmissionConfig;
use dlhub_core::autoscale::ControlPolicy;
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Hot keys shared by every client in the 100%-hit regime: enough to
/// spread across the cache shards, few enough to always be resident.
const HOT_KEYS: i64 = 64;

struct Cell {
    threads: usize,
    requests: u64,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
}

impl Cell {
    fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    dlhub_core::metrics::percentile(sorted, p).unwrap_or_default()
}

fn drive(hub: &TestHub, threads: usize, window: Duration, rtt: Duration, all_hits: bool) -> Cell {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&hub.service);
            let token = hub.token.clone();
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut latencies: Vec<Duration> = Vec::with_capacity(1 << 16);
                let mut i = 0i64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let input = if all_hits {
                        Value::Int(i % HOT_KEYS)
                    } else {
                        // Unique per thread and iteration: never hits.
                        Value::Int(((t as i64) << 40) | (i + HOT_KEYS))
                    };
                    let started = Instant::now();
                    service
                        .run(&token, "dlhub/echo", input)
                        .expect("echo request");
                    latencies.push(started.elapsed());
                    i += 1;
                    if !rtt.is_zero() {
                        // Client-side network gap; not part of the
                        // measured service latency.
                        std::thread::sleep(rtt);
                    }
                }
                latencies
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = started.elapsed();
    all.sort_unstable();
    Cell {
        threads,
        requests: all.len() as u64,
        elapsed,
        p50: percentile(&all, 0.50),
        p99: percentile(&all, 0.99),
    }
}

/// Alternate `AB_TRIALS` 100%-hit cells between the two hubs and keep
/// each side's best throughput. External noise (scheduler, other
/// containers, frequency drift) only ever *lowers* a cell, so peak
/// versus peak is the statistic that isolates the enabled feature's
/// own cost — a single pair of cells on a shared box swings far more
/// than the 5% contract being measured. Alternating (d, e, d, e, …)
/// rather than batching keeps slow drift from biasing one side.
const AB_TRIALS: usize = 3;

fn ab_cells(
    disabled: &TestHub,
    enabled: &TestHub,
    threads: usize,
    window: Duration,
    rtt: Duration,
) -> (Cell, Cell) {
    let mut best_d: Option<Cell> = None;
    let mut best_e: Option<Cell> = None;
    for _ in 0..AB_TRIALS {
        let d = drive(disabled, threads, window, rtt, true);
        if best_d
            .as_ref()
            .is_none_or(|b| d.req_per_s() > b.req_per_s())
        {
            best_d = Some(d);
        }
        let e = drive(enabled, threads, window, rtt, true);
        if best_e
            .as_ref()
            .is_none_or(|b| e.req_per_s() > b.req_per_s())
        {
            best_e = Some(e);
        }
    }
    (best_d.expect("ab trials"), best_e.expect("ab trials"))
}

fn run_mode(hub: &TestHub, window: Duration, rtt: Duration, all_hits: bool) -> Vec<Cell> {
    if all_hits {
        // Warm the cache so every measured request hits.
        for i in 0..HOT_KEYS {
            hub.service
                .run(&hub.token, "dlhub/echo", Value::Int(i))
                .expect("warm request");
        }
    }
    THREADS
        .iter()
        .map(|&threads| drive(hub, threads, window, rtt, all_hits))
        .collect()
}

fn main() {
    let window = Duration::from_millis(
        std::env::var("HOTPATH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1500),
    );
    let rtt = Duration::from_micros(
        std::env::var("HOTPATH_RTT_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    );
    // Generous downstream capacity (replicas, consumers) so the
    // request path itself — locks, memo, dispatch — is what's being
    // measured rather than executor starvation.
    // A (loose) SLO keeps the full analytics path hot during the
    // bench: every request updates burn-rate windows and exemplar
    // slots, so the committed numbers include that cost.
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .replicas(16)
        .consumers(16)
        .config(ServingConfig {
            async_workers: 16,
            ..ServingConfig::default()
        })
        .slo(dlhub_core::obs::SloSpec::new(
            "dlhub/echo",
            Duration::from_secs(1),
        ))
        .build();
    hub.publish_simple(
        "echo",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );

    let mut table = Vec::new();
    let mut json_modes = serde_json::Map::new();
    let mut hit_cells = Vec::new();
    for (label, all_hits) in [("hit100", true), ("hit0", false)] {
        let cells = run_mode(&hub, window, rtt, all_hits);
        let mut series = Vec::new();
        for cell in &cells {
            table.push(vec![
                label.to_string(),
                cell.threads.to_string(),
                format!("{:.0}", cell.req_per_s()),
                format!("{:.1}", cell.p50.as_secs_f64() * 1e6),
                format!("{:.1}", cell.p99.as_secs_f64() * 1e6),
            ]);
            series.push(serde_json::json!({
                "threads": cell.threads,
                "requests": cell.requests,
                "elapsed_s": cell.elapsed.as_secs_f64(),
                "req_per_s": cell.req_per_s(),
                "p50_us": cell.p50.as_secs_f64() * 1e6,
                "p99_us": cell.p99.as_secs_f64() * 1e6,
            }));
        }
        json_modes.insert(label.to_string(), serde_json::Value::Array(series));
        if all_hits {
            hit_cells = cells;
        }
    }

    print_table(
        &format!(
            "Hot-path scaling ({}ms per cell, {}us client RTT)",
            window.as_millis(),
            rtt.as_micros()
        ),
        &["mode", "threads", "req/s", "p50 us", "p99 us"],
        &table,
    );

    let rate = |threads: usize| {
        hit_cells
            .iter()
            .find(|c| c.threads == threads)
            .map(|c| c.req_per_s())
            .unwrap_or(0.0)
    };
    let speedup = rate(8) / rate(1).max(1.0);
    println!("\nshape checks:");
    shape_check(
        &format!(
            "100%-hit throughput scales ≥2x from 1 to 8 threads ({:.0} → {:.0} req/s, {speedup:.2}x)",
            rate(1),
            rate(8)
        ),
        speedup >= 2.0,
    );

    // The run's own telemetry rides along in the artifact: per-servable
    // latency histograms from the service's metrics registry, so the
    // committed JSON carries the paper's three measurement points
    // without a separate collection step.
    let metrics = hub.service.metrics_snapshot();
    let echo_series = metrics
        .servables
        .iter()
        .find(|(id, _)| id == "dlhub/echo")
        .map(|(_, s)| s.clone())
        .expect("echo servable recorded metrics");
    shape_check(
        &format!(
            "metrics registry observed every request ({} recorded)",
            echo_series.requests
        ),
        echo_series.requests > 0 && echo_series.request_latency.is_some(),
    );
    let echo_slo = metrics
        .slos
        .iter()
        .find(|s| s.servable == "dlhub/echo")
        .expect("echo SLO tracked");
    shape_check(
        &format!(
            "SLO engine observed the run without firing ({} observed)",
            echo_slo.observed
        ),
        echo_slo.observed > 0 && !echo_slo.firing && echo_slo.alerts_fired == 0,
    );
    let exemplars: usize = echo_series
        .request_latency_buckets
        .iter()
        .map(|b| b.exemplars.len())
        .sum();
    shape_check(
        &format!("latency histogram retained trace exemplars ({exemplars})"),
        exemplars > 0,
    );

    // Profiler overhead A/B: the same 100%-hit cell on the default
    // (profiler disabled) hub versus a second deployment with the
    // continuous profiler sampling and the flight recorder armed. The
    // disabled side is the zero-cost contract — every frame mark is
    // one relaxed atomic load — and the enabled side must stay within
    // noise of it. `scripts/bench_gate.py --check overhead` enforces
    // the committed ratio in CI.
    const OVERHEAD_THREADS: usize = 4;
    const OVERHEAD_HZ: u32 = 99;
    let ab_window = window.min(Duration::from_millis(1000));
    shape_check(
        "default config leaves the profiler statically disabled",
        hub.service.profile_report().is_none(),
    );
    let profiled = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .replicas(16)
        .consumers(16)
        .config(ServingConfig {
            async_workers: 16,
            profile_hz: OVERHEAD_HZ,
            recorder_capacity: 8,
            ..ServingConfig::default()
        })
        .slo(dlhub_core::obs::SloSpec::new(
            "dlhub/echo",
            Duration::from_secs(1),
        ))
        .build();
    profiled.publish_simple(
        "echo",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );
    for i in 0..HOT_KEYS {
        profiled
            .service
            .run(&profiled.token, "dlhub/echo", Value::Int(i))
            .expect("warm request");
    }
    let (disabled_cell, enabled_cell) = ab_cells(&hub, &profiled, OVERHEAD_THREADS, ab_window, rtt);
    let profile = profiled
        .service
        .profile_report()
        .expect("profiler enabled for the A/B hub");
    shape_check(
        &format!(
            "enabled profiler observed the run ({} samples @ {} Hz)",
            profile.total_samples, profile.hz
        ),
        profile.total_samples > 0,
    );
    let per_thread: u64 = profile.threads.iter().map(|t| t.samples).sum();
    shape_check(
        &format!(
            "per-thread sample counts partition the total ({per_thread} == {})",
            profile.total_samples
        ),
        per_thread == profile.total_samples,
    );
    let overhead_ratio = enabled_cell.req_per_s() / disabled_cell.req_per_s().max(1.0);
    // Local sanity floor only; the CI contract (default 0.95, env
    // tunable) lives in bench_gate.py against the committed artifact.
    shape_check(
        &format!(
            "profiler-enabled throughput within noise of disabled ({:.0} → {:.0} req/s, ratio {:.3})",
            disabled_cell.req_per_s(),
            enabled_cell.req_per_s(),
            overhead_ratio
        ),
        overhead_ratio >= 0.85,
    );

    // Telemetry collector A/B, mirroring the profiler's: the same
    // 100%-hit cell against a third deployment with the time-series
    // collector sampling every 50 ms. The disabled side reuses the
    // default hub (collector statically off — one relaxed pointer load
    // per query accessor); `bench_gate.py --check telemetry` enforces
    // the committed ratio in CI. The telemetered run's exported series
    // becomes the artifact's time axis.
    const TELEMETRY_INTERVAL_MS: u64 = 50;
    shape_check(
        "default config leaves the telemetry collector statically disabled",
        hub.service.telemetry_store().is_none(),
    );
    let telemetered = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .replicas(16)
        .consumers(16)
        .config(ServingConfig {
            async_workers: 16,
            telemetry_interval: Duration::from_millis(TELEMETRY_INTERVAL_MS),
            ..ServingConfig::default()
        })
        .slo(dlhub_core::obs::SloSpec::new(
            "dlhub/echo",
            Duration::from_secs(1),
        ))
        .build();
    telemetered.publish_simple(
        "echo",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );
    for i in 0..HOT_KEYS {
        telemetered
            .service
            .run(&telemetered.token, "dlhub/echo", Value::Int(i))
            .expect("warm request");
    }
    let (telemetry_disabled_cell, telemetry_cell) =
        ab_cells(&hub, &telemetered, OVERHEAD_THREADS, ab_window, rtt);
    let store = telemetered
        .service
        .telemetry_store()
        .expect("collector enabled for the A/B hub");
    shape_check(
        &format!(
            "telemetry collector observed the run ({} passes, {} series)",
            store.samples_taken(),
            store.series_names().len()
        ),
        store.samples_taken() > 0 && !store.series_names().is_empty(),
    );
    let telemetry_ratio = telemetry_cell.req_per_s() / telemetry_disabled_cell.req_per_s().max(1.0);
    shape_check(
        &format!(
            "collector-enabled throughput within noise of disabled ({:.0} → {:.0} req/s, ratio {:.3})",
            telemetry_disabled_cell.req_per_s(),
            telemetry_cell.req_per_s(),
            telemetry_ratio
        ),
        telemetry_ratio >= 0.85,
    );

    // Control-loop A/B, closing the set: the same 100%-hit cell
    // against a fourth deployment with the whole control plane armed —
    // the telemetry collector feeding windowed signals, the background
    // reconciler actuating on them, and per-request admission control
    // in front of the memo lookup. The policy pins min == max replicas
    // so the A/B measures the loop's steady-state cost (signal
    // evaluation in the reconciler thread, per-request admission
    // accounting) rather than capacity changes mid-measurement, and
    // the inflight cap sits far above the client count so nothing
    // sheds. The disabled side reuses the default hub (control
    // statically off — `admission` and `autoscale` both `None`).
    // `bench_gate.py --check control` enforces the committed ratio.
    const RECONCILE_INTERVAL_MS: u64 = 50;
    shape_check(
        "default config leaves the control loop statically disabled",
        hub.service.reconciler().is_none() && hub.service.admission().is_none(),
    );
    let controlled = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .replicas(16)
        .consumers(16)
        .config(ServingConfig {
            async_workers: 16,
            telemetry_interval: Duration::from_millis(TELEMETRY_INTERVAL_MS),
            autoscale: Some(ControlPolicy {
                min_replicas: 16,
                max_replicas: 16,
                ..ControlPolicy::default()
            }),
            autoscale_interval: Duration::from_millis(RECONCILE_INTERVAL_MS),
            admission: Some(AdmissionConfig {
                max_inflight: 1024,
                ..AdmissionConfig::default()
            }),
            ..ServingConfig::default()
        })
        .slo(dlhub_core::obs::SloSpec::new(
            "dlhub/echo",
            Duration::from_secs(1),
        ))
        .build();
    controlled.publish_simple(
        "echo",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );
    for i in 0..HOT_KEYS {
        controlled
            .service
            .run(&controlled.token, "dlhub/echo", Value::Int(i))
            .expect("warm request");
    }
    let (control_disabled_cell, control_cell) =
        ab_cells(&hub, &controlled, OVERHEAD_THREADS, ab_window, rtt);
    let admission = controlled
        .service
        .admission()
        .expect("admission armed for the A/B hub");
    let admitted = admission.admitted_total();
    let control_decisions = controlled
        .service
        .reconciler()
        .expect("reconciler armed for the A/B hub")
        .decisions()
        .len() as u64;
    let shed = controlled
        .service
        .metrics_snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "requests_shed_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    shape_check(
        &format!("admission controller saw every request ({admitted} admitted, {shed} shed)"),
        admitted >= control_cell.requests && shed == 0,
    );
    shape_check(
        &format!("pinned policy held capacity fixed ({control_decisions} scaling decisions)"),
        control_decisions == 0,
    );
    let control_ratio = control_cell.req_per_s() / control_disabled_cell.req_per_s().max(1.0);
    shape_check(
        &format!(
            "control-loop-enabled throughput within noise of disabled ({:.0} → {:.0} req/s, ratio {:.3})",
            control_disabled_cell.req_per_s(),
            control_cell.req_per_s(),
            control_ratio
        ),
        control_ratio >= 0.85,
    );

    let doc = serde_json::json!({
        "bench": "hotpath",
        "window_ms": window.as_millis() as u64,
        "client_rtt_us": rtt.as_micros() as u64,
        "thread_counts": THREADS.to_vec(),
        "modes": serde_json::Value::Object(json_modes),
        "hit100_speedup_8t_over_1t": speedup,
        "overhead": {
            "threads": OVERHEAD_THREADS,
            "window_ms": ab_window.as_millis() as u64,
            "trials": AB_TRIALS,
            "profile_hz": OVERHEAD_HZ,
            "disabled_req_per_s": disabled_cell.req_per_s(),
            "enabled_req_per_s": enabled_cell.req_per_s(),
            "enabled_over_disabled": overhead_ratio,
            "profiler_samples": profile.total_samples,
        },
        "telemetry_overhead": {
            "threads": OVERHEAD_THREADS,
            "window_ms": ab_window.as_millis() as u64,
            "trials": AB_TRIALS,
            "interval_ms": TELEMETRY_INTERVAL_MS,
            "disabled_req_per_s": telemetry_disabled_cell.req_per_s(),
            "enabled_req_per_s": telemetry_cell.req_per_s(),
            "enabled_over_disabled": telemetry_ratio,
            "telemetry_samples": store.samples_taken(),
        },
        "autoscale_overhead": {
            "threads": OVERHEAD_THREADS,
            "window_ms": ab_window.as_millis() as u64,
            "trials": AB_TRIALS,
            "reconcile_interval_ms": RECONCILE_INTERVAL_MS,
            "disabled_req_per_s": control_disabled_cell.req_per_s(),
            "enabled_req_per_s": control_cell.req_per_s(),
            "enabled_over_disabled": control_ratio,
            "admitted": admitted,
            "shed": shed,
            "scaling_decisions": control_decisions,
        },
        // The run's time axis from the telemetered A/B hub, capped to
        // the newest points per ring tier so the committed artifact
        // stays reviewable (each tier reports what it dropped).
        "telemetry": store.to_json_capped(6),
        "metrics": metrics.to_json(),
    });
    let path = write_json("BENCH_hotpath.json", &doc);
    // Mirror to the workspace root so the committed copy lives next to
    // the code it measures. `HOTPATH_MIRROR=0` keeps smoke runs (CI)
    // from clobbering the committed full-length numbers.
    let mirror = std::env::var("HOTPATH_MIRROR").map_or(true, |v| v != "0");
    if mirror {
        let root_copy = std::path::Path::new("BENCH_hotpath.json");
        std::fs::copy(&path, root_copy).expect("copy BENCH_hotpath.json");
        println!(
            "wrote {} (mirrored to {})",
            path.display(),
            root_copy.display()
        );
    } else {
        println!("wrote {} (mirror disabled)", path.display());
    }
}
