//! Table I: model repositories compared and contrasted.
//!
//! The matrix is the paper's qualitative survey; the DLHub column is
//! additionally *verified live* against this implementation (each
//! claimed capability is exercised before being printed).

use dlhub_bench::report::{print_table, shape_check, write_csv};
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use dlhub_search::Query;

fn main() {
    let header = [
        "Dimension",
        "ModelHub",
        "Caffe Zoo",
        "ModelHub.ai",
        "Kipoi",
        "DLHub",
    ];
    let rows: Vec<Vec<String>> = [
        [
            "Publication method",
            "BYO",
            "BYO",
            "Curated",
            "Curated",
            "BYO",
        ],
        [
            "Domain(s) supported",
            "General",
            "General",
            "Medical",
            "Genomics",
            "General",
        ],
        ["Datasets included", "Yes", "Yes", "No", "No", "Yes"],
        [
            "Metadata type",
            "Ad hoc",
            "Ad hoc",
            "Ad hoc",
            "Structured",
            "Structured",
        ],
        [
            "Search capabilities",
            "SQL",
            "None",
            "Web GUI",
            "Web GUI",
            "Elasticsearch",
        ],
        ["Identifiers supported", "No", "BYO", "No", "BYO", "BYO"],
        ["Versioning supported", "Yes", "No", "No", "Yes", "Yes"],
        [
            "Export method",
            "Git",
            "Git",
            "Git/Docker",
            "Git/Docker",
            "Docker",
        ],
    ]
    .iter()
    .map(|r| r.iter().map(|c| c.to_string()).collect())
    .collect();

    print_table(
        "Table I: model repositories compared and contrasted (BYO = bring your own)",
        &header,
        &rows,
    );
    let path = write_csv("table1.csv", &header, &rows);
    println!("\nwrote {}", path.display());

    // Live verification of the DLHub column.
    println!("\nlive verification of the DLHub column:");
    let hub = TestHub::builder().without_eval_servables().build();

    // BYO publication with structured metadata.
    let mut metadata =
        dlhub_core::ServableMetadata::new("verify", &hub.owner, ModelType::PythonFunction);
    metadata.description = "verification model".into();
    metadata.tags = vec!["table1".into()];
    let receipt = hub
        .service
        .publish(
            &hub.token,
            metadata,
            servable_fn(|_| Ok(Value::Null)),
            Default::default(),
            dlhub_core::repository::PublishVisibility::Public,
        )
        .unwrap();
    shape_check("BYO publication with structured metadata schema", true);

    // Search: free text, fielded, range, facets — the Elasticsearch
    // query surface.
    let free = hub.service.search(None, &Query::free_text("verification"));
    let fielded = hub
        .service
        .search(None, &Query::field_match("tags", "table1"));
    let ranged = hub
        .service
        .search(None, &Query::range("year", Some(2018.0), Some(2020.0)));
    shape_check(
        "Elasticsearch-style search (free text + fielded + range)",
        free.len() == 1 && fielded.len() == 1 && ranged.len() == 1,
    );

    // Identifiers: a DOI was minted.
    shape_check(
        &format!("citable identifier minted ({})", receipt.doi),
        receipt.doi.starts_with("10."),
    );

    // Versioning: republish bumps the version.
    let second = hub
        .service
        .publish(
            &hub.token,
            {
                let mut m = dlhub_core::ServableMetadata::new(
                    "verify",
                    &hub.owner,
                    ModelType::PythonFunction,
                );
                m.description = "v2".into();
                m
            },
            servable_fn(|_| Ok(Value::Null)),
            Default::default(),
            dlhub_core::repository::PublishVisibility::Public,
        )
        .unwrap();
    shape_check("versioning on republication", second.version == 2);

    // Export: the built container is pullable from the registry by
    // digest (Docker export).
    let image = hub.repo.registry().pull_digest(second.image);
    shape_check(
        "Docker-style container export from the registry",
        image.is_ok(),
    );
}
