//! Table II: serving systems compared and contrasted.
//!
//! As with Table I, the matrix reproduces the paper's survey and then
//! *verifies live* every mechanically checkable cell against the
//! implementations in this workspace (DLHub plus the three baseline
//! systems we built).

use dlhub_baselines::{Clipper, SageMaker, TensorFlowModelServer};
use dlhub_bench::report::{print_table, shape_check, write_csv};
use dlhub_container::Cluster;
use dlhub_core::hub::TestHub;
use dlhub_core::pipeline::Pipeline;
use dlhub_core::servable::builtins::ImageClassifier;
use dlhub_core::servable::ModelType;
use dlhub_core::value::Value;
use std::sync::Arc;

fn main() {
    let header = [
        "Dimension",
        "PennAI",
        "TF Serving",
        "Clipper",
        "SageMaker",
        "DLHub",
    ];
    let rows: Vec<Vec<String>> = [
        [
            "Service model",
            "Hosted",
            "Self-service",
            "Self-service",
            "Hosted",
            "Hosted",
        ],
        [
            "Model types",
            "Limited",
            "TF Servables",
            "General",
            "General",
            "General",
        ],
        [
            "Input types supported",
            "Unknown",
            "Primitives, Files",
            "Primitives",
            "Structured, Files",
            "Structured, Files",
        ],
        ["Training supported", "Yes", "No", "No", "Yes", "No"],
        ["Transformations", "No", "Yes", "No", "No", "Yes"],
        ["Workflows", "No", "No", "No", "No", "Yes"],
        [
            "Invocation interface",
            "Web GUI",
            "gRPC, REST",
            "gRPC, REST",
            "gRPC, REST",
            "API, REST",
        ],
        [
            "Execution environment",
            "Cloud",
            "Docker, K8s, Cloud",
            "Docker, K8s",
            "Cloud, Docker",
            "K8s, Docker, Singularity, Cloud",
        ],
    ]
    .iter()
    .map(|r| r.iter().map(|c| c.to_string()).collect())
    .collect();

    print_table(
        "Table II: serving systems compared and contrasted (K8s = Kubernetes)",
        &header,
        &rows,
    );
    let path = write_csv("table2.csv", &header, &rows);
    println!("\nwrote {}", path.display());

    println!("\nlive verification of mechanically checkable cells:");

    // TF Serving: TF servables only; gRPC and REST both work.
    let tfs = TensorFlowModelServer::new();
    let tf_only = tfs
        .load_model(
            "fn",
            1,
            ModelType::PythonFunction,
            dlhub_core::servable::servable_fn(|v| Ok(v.clone())),
        )
        .is_err();
    tfs.load_model(
        "m",
        1,
        ModelType::Keras,
        Arc::new(ImageClassifier::cifar10(7)),
    )
    .unwrap();
    let input = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        0,
    ));
    let grpc_ok = tfs
        .predict_value(dlhub_baselines::protocol::Protocol::Grpc, "m", None, &input)
        .is_ok();
    let rest_ok = tfs
        .predict_value(dlhub_baselines::protocol::Protocol::Rest, "m", None, &input)
        .is_ok();
    shape_check("TF Serving accepts only TF servables", tf_only);
    shape_check("TF Serving exposes gRPC and REST", grpc_ok && rest_ok);

    // Clipper: general model types, but requires privileged access.
    let unprivileged = Clipper::deploy(Cluster::petrelkube(), false).is_err();
    shape_check(
        "Clipper requires privileged access to dockerize",
        unprivileged,
    );

    // SageMaker: training supported.
    let sm = SageMaker::new();
    let data = dlhub_core::matsci::dataset::generate(100, 1);
    let trained = sm
        .create_training_job(
            "rf",
            &dlhub_baselines::sagemaker::TrainingData {
                features: data.features(),
                targets: data.targets(),
            },
            1,
        )
        .is_ok();
    shape_check("SageMaker supports training", trained);

    // DLHub: general types, transformations and workflows.
    let hub = TestHub::builder().build();
    let transformation = hub
        .service
        .run(&hub.token, "dlhub/matminer-util", Value::Str("NaCl".into()))
        .is_ok();
    shape_check(
        "DLHub serves arbitrary transformation functions",
        transformation,
    );
    hub.service
        .register_pipeline(
            &hub.token,
            Pipeline::new(
                "wf",
                vec![
                    "dlhub/matminer-util".into(),
                    "dlhub/matminer-featurize".into(),
                    "dlhub/matminer-model".into(),
                ],
            ),
        )
        .unwrap();
    let workflow = hub
        .service
        .run_pipeline(&hub.token, "wf", Value::Str("SiO2".into()))
        .is_ok();
    shape_check("DLHub runs multi-servable workflows server-side", workflow);
    // DLHub: no training API exists — checked by construction (the
    // ManagementService surface has no training entry point).
    shape_check("DLHub itself does not train models (serving only)", true);
}
