//! Open-loop workload observatory: trace-driven load generation with
//! coordinated-omission-correct tail recording and per-scenario p999
//! attribution.
//!
//! Five seeded scenarios — steady Poisson, a diurnal cycle, an MMPP
//! burst storm, a Zipf fan-out over a large servable catalog, and a
//! multi-tenant mix with one hostile tenant — are each replayed
//! open-loop through a full in-process hub with the control loop
//! (autoscaling + admission) enabled. Every request is measured from
//! its *intended* start per the arrival schedule, so backlog behind a
//! slow service is charged to latency instead of silently deleting
//! the samples (coordinated omission); the uncorrected closed-loop
//! series is recorded side by side so the gap is visible. The traces
//! of the slowest requests are fed through the seven-stage analyzer
//! to answer, per scenario, *where the p999 comes from*.
//!
//! Environment knobs (CI smoke uses small values, the committed
//! artifact the defaults):
//!
//! - `WORKLOADS_MS`      window per scenario, ms (default 2500)
//! - `WORKLOADS_SEED`    master seed (default 7)
//! - `WORKLOADS_FANOUT`  catalog size for zipf-fanout (default 1200)
//! - `WORKLOADS_MIRROR`  `0` keeps smoke runs from clobbering the
//!   committed `BENCH_workloads.json`

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dlhub_bench::report::{print_table, shape_check, write_json};
use dlhub_core::admission::AdmissionConfig;
use dlhub_core::autoscale::ControlPolicy;
use dlhub_core::error::DlhubError;
use dlhub_core::hub::TestHub;
use dlhub_core::obs::{
    analyze_all, OpenLoopRecorder, OpenLoopReport, OpenLoopSample, StageNs, TraceAnalysis,
};
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use dlhub_sim::workload::{
    build_schedule, ArrivalProcess, DiurnalArrivals, LognormalSizes, MmppArrivals, PoissonArrivals,
    TenantMix, WorkloadSchedule, ZipfPopularity,
};
use dlhub_sim::SimTime;

/// Simulated inference cost: ns of busy work per payload byte. At
/// 4 ns/B a 512 KiB payload "infers" for ~2 ms, so heavy-tailed
/// payload sizes translate into heavy-tailed execute times.
const COST_NS_PER_BYTE: u64 = 4;

/// Cap on simulated execute time so a Pareto outlier cannot wedge a
/// replica for the whole window.
const COST_CAP_NS: u64 = 8_000_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The shared servable: spins for a time proportional to the payload
/// size, then returns an FNV hash of the bytes. The spin (not a
/// sleep) occupies the replica the way real inference would.
fn work_servable() -> Arc<dyn dlhub_core::Servable> {
    servable_fn(|input: &Value| {
        let bytes: &[u8] = match input {
            Value::Bytes(b) => b,
            _ => &[],
        };
        let cost = Duration::from_nanos((bytes.len() as u64 * COST_NS_PER_BYTE).min(COST_CAP_NS));
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes.iter().step_by(64) {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let start = Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
        Ok(Value::Int(hash as i64))
    })
}

/// Payload-size sampler choices per scenario (all seeded).
#[derive(Clone, Copy)]
enum Payload {
    /// Lognormal(median, sigma), capped.
    Lognormal(f64, f64, u64),
}

impl Payload {
    fn sampler(self, seed: u64) -> LognormalSizes {
        match self {
            Payload::Lognormal(median, sigma, max) => LognormalSizes::new(median, sigma, max, seed),
        }
    }
}

/// One workload scenario: how requests arrive, what they hit, who
/// sends them, and how the hub is provisioned to receive them.
struct Scenario {
    name: &'static str,
    /// Human description of the arrival process, for the artifact.
    arrivals_desc: String,
    /// Fresh arrival process (callable twice: determinism check).
    arrivals: Box<dyn Fn() -> Box<dyn ArrivalProcess>>,
    /// Servable catalog size.
    catalog: usize,
    /// Zipf exponent for servable popularity.
    zipf: f64,
    /// Tenant usernames and their traffic weights.
    tenants: Vec<(&'static str, u32)>,
    /// Index into `tenants` of the hostile tenant, if any.
    hostile: Option<usize>,
    payload: Payload,
    /// Open-loop client threads draining the schedule.
    workers: usize,
    /// Admission cap (the control loop's shed knob).
    max_inflight: usize,
}

fn scenarios(horizon_secs: f64, fanout: usize) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "steady-poisson",
            arrivals_desc: "poisson(400/s)".into(),
            arrivals: Box::new(|| Box::new(PoissonArrivals::new(400.0, 0x5001))),
            catalog: 8,
            zipf: 0.8,
            tenants: vec![("alice", 1)],
            hostile: None,
            payload: Payload::Lognormal(2048.0, 1.0, 128 * 1024),
            workers: 8,
            max_inflight: 256,
        },
        Scenario {
            name: "diurnal",
            arrivals_desc: format!("diurnal(base 300/s, amplitude 0.9, period {horizon_secs:.1}s)"),
            arrivals: Box::new(move || {
                Box::new(DiurnalArrivals::new(300.0, 0.9, horizon_secs, 0x5002))
            }),
            catalog: 8,
            zipf: 0.8,
            tenants: vec![("alice", 1)],
            hostile: None,
            payload: Payload::Lognormal(2048.0, 1.0, 128 * 1024),
            workers: 8,
            max_inflight: 256,
        },
        Scenario {
            name: "bursty",
            arrivals_desc: "mmpp(calm 80/s x 0.4s, burst 1500/s x 0.15s)".into(),
            arrivals: Box::new(|| Box::new(MmppArrivals::new(80.0, 1500.0, 0.4, 0.15, 0x5003))),
            catalog: 2,
            zipf: 1.0,
            tenants: vec![("alice", 1)],
            hostile: None,
            // Median ~512 KiB -> ~2 ms execute: bursts outrun the
            // initial replica capacity and pile real backlog onto the
            // generator, which is exactly what the corrected series
            // must not hide.
            payload: Payload::Lognormal(512.0 * 1024.0, 0.5, 1024 * 1024),
            workers: 8,
            max_inflight: 256,
        },
        Scenario {
            name: "zipf-fanout",
            arrivals_desc: format!("poisson(500/s) over {fanout} servables, zipf 1.1"),
            arrivals: Box::new(|| Box::new(PoissonArrivals::new(500.0, 0x5004))),
            catalog: fanout,
            zipf: 1.1,
            tenants: vec![("alice", 1)],
            hostile: None,
            payload: Payload::Lognormal(1024.0, 0.8, 64 * 1024),
            workers: 16,
            max_inflight: 256,
        },
        Scenario {
            name: "hostile-tenant",
            arrivals_desc: "poisson(900/s), tenants alice:2 bob:2 mallory:12".into(),
            arrivals: Box::new(|| Box::new(PoissonArrivals::new(900.0, 0x5005))),
            catalog: 4,
            zipf: 0.9,
            tenants: vec![("alice", 2), ("bob", 2), ("mallory", 12)],
            hostile: Some(2),
            payload: Payload::Lognormal(64.0 * 1024.0, 0.6, 256 * 1024),
            // Far more clients than admission slots: the weighted-fair
            // shed rule, not client parallelism, decides who gets in.
            workers: 48,
            max_inflight: 16,
        },
    ]
}

/// Build the seeded schedule for a scenario over `horizon`.
fn schedule_for(sc: &Scenario, seed: u64, horizon: SimTime) -> WorkloadSchedule {
    let mut arrivals = (sc.arrivals)();
    let mut popularity = ZipfPopularity::new(sc.catalog, sc.zipf, seed ^ 0xa11ce);
    let weights: Vec<u32> = sc.tenants.iter().map(|&(_, w)| w).collect();
    let mut tenants = TenantMix::new(&weights, seed ^ 0x7e4a47);
    let mut payloads = sc.payload.sampler(seed ^ 0xbeef);
    build_schedule(
        arrivals.as_mut(),
        horizon,
        move || popularity.sample(),
        move || tenants.sample(),
        move || payloads.sample(),
    )
}

/// Everything one scenario run produced.
struct Outcome {
    recorder: Arc<OpenLoopRecorder>,
    report: OpenLoopReport,
    shed_by_tenant: Vec<u64>,
    sent_by_tenant: Vec<u64>,
    errors: u64,
    cold_starts: u64,
    /// Stage attribution over every completed request.
    overall: StageNs,
    overall_total_ns: u64,
    /// Stage attribution over the slowest (by corrected latency)
    /// requests — the tail the p999 lives in.
    tail: StageNs,
    tail_total_ns: u64,
    tail_requests: usize,
    tail_threshold_ns: u64,
}

/// Replay `schedule` open-loop against a fresh hub provisioned for
/// the scenario, then attribute the tail.
fn run_scenario(sc: &Scenario, schedule: &WorkloadSchedule) -> Outcome {
    let policy = ControlPolicy {
        min_replicas: 1,
        max_replicas: 8,
        min_samples: 3,
        cooldown: Duration::from_millis(200),
        idle_after: Duration::from_millis(1500),
        warm_pool: 0,
        signal_window: Duration::from_secs(2),
        ..ControlPolicy::default()
    };
    let config = ServingConfig {
        memo_enabled: false,
        telemetry_interval: Duration::from_millis(25),
        autoscale: Some(policy),
        autoscale_interval: Duration::from_millis(100),
        admission: Some(AdmissionConfig {
            max_inflight: sc.max_inflight,
            fair_share_at: 0.25,
            signal_window: Duration::from_secs(2),
            ..AdmissionConfig::default()
        }),
        ..ServingConfig::default()
    };
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(false)
        .consumers(8)
        .config(config)
        .build();

    let names: Vec<String> = (0..sc.catalog)
        .map(|i| {
            hub.publish_simple(
                &format!("wl-{i}"),
                ModelType::PythonFunction,
                work_servable(),
            )
        })
        .collect();
    let tokens: Vec<_> = sc
        .tenants
        .iter()
        .map(|&(user, _)| hub.user_token(user))
        .collect();

    let recorder = Arc::new(OpenLoopRecorder::new());
    let shed: Vec<AtomicU64> = sc.tenants.iter().map(|_| AtomicU64::new(0)).collect();
    let shed = Arc::new(shed);
    let errors = Arc::new(AtomicU64::new(0));
    let mut sent_by_tenant = vec![0u64; sc.tenants.len()];

    let (tx, rx) = mpsc::channel::<(u64, usize, usize, u64)>();
    let rx = Arc::new(Mutex::new(rx));
    let epoch = Instant::now();

    let workers: Vec<_> = (0..sc.workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&hub.service);
            let names = names.clone();
            let tokens = tokens.clone();
            let recorder = Arc::clone(&recorder);
            let shed = Arc::clone(&shed);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || loop {
                let job = rx.lock().unwrap().recv();
                let (intended_ns, servable, tenant, payload_bytes) = match job {
                    Ok(spec) => spec,
                    Err(_) => break,
                };
                let started_ns = epoch.elapsed().as_nanos() as u64;
                let payload = vec![0xA5u8; payload_bytes as usize];
                match service.run(&tokens[tenant], &names[servable], Value::Bytes(payload)) {
                    Ok(res) => {
                        let completed_ns = epoch.elapsed().as_nanos() as u64;
                        recorder.record(OpenLoopSample {
                            intended_ns,
                            started_ns,
                            completed_ns,
                            trace: res.trace,
                        });
                    }
                    Err(DlhubError::Overloaded { .. }) => {
                        shed[tenant].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // The dispatcher IS the open loop: requests are released at their
    // scheduled instants no matter how the service is doing. A slow
    // service grows the channel backlog, and that wait is charged to
    // the corrected latency via the intended-start stamp.
    for spec in &schedule.requests {
        let target = Duration::from_nanos(spec.at.0);
        loop {
            let now = epoch.elapsed();
            if now >= target {
                break;
            }
            std::thread::sleep((target - now).min(Duration::from_millis(1)));
        }
        sent_by_tenant[spec.tenant] += 1;
        tx.send((spec.at.0, spec.servable, spec.tenant, spec.payload_bytes))
            .expect("dispatch");
    }
    drop(tx);
    for w in workers {
        w.join().expect("worker");
    }

    let cold_starts = hub.service.obs().metrics.histogram("cold_start_ns").count();
    let report = recorder.report().expect("scenario completed zero requests");

    // Tail attribution: analyze every trace once, then aggregate the
    // stage vectors of (a) all completed requests and (b) the slowest
    // ~0.5% by corrected latency (at least 5), whose traces explain
    // where the p999 comes from.
    let export = hub.service.trace_export(None);
    let by_trace: HashMap<u64, TraceAnalysis> = analyze_all(&export)
        .into_iter()
        .map(|a| (a.trace, a))
        .collect();
    let samples = recorder.samples();
    let completed: Vec<&TraceAnalysis> = samples
        .iter()
        .filter_map(|s| by_trace.get(&s.trace))
        .collect();
    let overall = sum_stages(&completed);
    let overall_total_ns = completed.iter().map(|a| a.total_ns).sum();

    let tail_n = (samples.len() / 200).max(5).min(samples.len());
    let slowest = recorder.slowest(tail_n);
    let tail_threshold_ns = slowest.last().map(|s| s.corrected_ns()).unwrap_or(0);
    let tail_traces: Vec<&TraceAnalysis> = slowest
        .iter()
        .filter_map(|s| by_trace.get(&s.trace))
        .collect();
    let tail = sum_stages(&tail_traces);
    let tail_total_ns = tail_traces.iter().map(|a| a.total_ns).sum();

    Outcome {
        recorder,
        report,
        shed_by_tenant: shed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        sent_by_tenant,
        errors: errors.load(Ordering::Relaxed),
        cold_starts,
        overall,
        overall_total_ns,
        tail,
        tail_total_ns,
        tail_requests: tail_traces.len(),
        tail_threshold_ns,
    }
}

/// Aggregate stage vectors across analyses (local copy of the CLI's
/// aggregation so the artifact carries plain numbers).
fn sum_stages(analyses: &[&TraceAnalysis]) -> StageNs {
    let mut out: StageNs = Vec::new();
    for a in analyses {
        for &(stage, ns) in &a.stages {
            match out.iter_mut().find(|(s, _)| *s == stage) {
                Some((_, v)) => *v += ns,
                None => out.push((stage, ns)),
            }
        }
    }
    out
}

fn stages_json(stages: &StageNs, total_ns: u64) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = stages
        .iter()
        .map(|&(stage, ns)| {
            let pct = if total_ns > 0 {
                ns as f64 * 100.0 / total_ns as f64
            } else {
                0.0
            };
            serde_json::json!({ "stage": stage.name(), "ns": ns, "pct": pct })
        })
        .collect();
    serde_json::Value::Array(rows)
}

/// The stage with the largest share of a vector, for the table.
fn dominant(stages: &StageNs) -> String {
    stages
        .iter()
        .max_by_key(|&&(_, ns)| ns)
        .map(|&(s, ns)| format!("{} ({})", s.name(), fmt_ns(ns)))
        .unwrap_or_else(|| "-".into())
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.0}us", ns as f64 / 1e3)
    }
}

fn main() {
    let window_ms = env_u64("WORKLOADS_MS", 2500);
    let seed = env_u64("WORKLOADS_SEED", 7);
    let fanout = env_u64("WORKLOADS_FANOUT", 1200) as usize;
    let horizon = SimTime(window_ms * 1_000_000);
    let horizon_secs = window_ms as f64 / 1000.0;

    println!("workloads: window {window_ms}ms, seed {seed}, fanout {fanout}");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut scenario_docs: Vec<serde_json::Value> = Vec::new();
    let mut by_name: HashMap<&'static str, (u64, Outcome)> = HashMap::new();

    for sc in scenarios(horizon_secs, fanout) {
        // Build the schedule twice: the fingerprint equality IS the
        // reproducibility claim ("byte-identical schedule per seed").
        let schedule = schedule_for(&sc, seed, horizon);
        let replay = schedule_for(&sc, seed, horizon);
        let fp = schedule.fingerprint();
        shape_check(
            &format!(
                "{}: schedule is byte-identical per seed (fingerprint {fp:#018x}, {} requests)",
                sc.name,
                schedule.len()
            ),
            fp == replay.fingerprint() && !schedule.is_empty(),
        );

        println!(
            "\n-- {} ({}; {} requests over {window_ms}ms) --",
            sc.name,
            sc.arrivals_desc,
            schedule.len()
        );
        let outcome = run_scenario(&sc, &schedule);
        let report = &outcome.report;
        let completed = outcome.recorder.count();
        let shed_total: u64 = outcome.shed_by_tenant.iter().sum();

        rows.push(vec![
            sc.name.to_string(),
            schedule.len().to_string(),
            completed.to_string(),
            shed_total.to_string(),
            outcome.cold_starts.to_string(),
            fmt_ns(report.corrected.p50),
            fmt_ns(report.corrected.p99),
            fmt_ns(report.corrected.p999),
            fmt_ns(report.gap_p99_ns()),
            dominant(&outcome.tail),
        ]);

        let tenants_json: Vec<serde_json::Value> = sc
            .tenants
            .iter()
            .enumerate()
            .map(|(i, &(user, weight))| {
                serde_json::json!({
                    "tenant": user,
                    "weight": weight,
                    "hostile": sc.hostile == Some(i),
                    "sent": outcome.sent_by_tenant[i],
                    "shed": outcome.shed_by_tenant[i],
                })
            })
            .collect();

        scenario_docs.push(serde_json::json!({
            "name": sc.name,
            "arrivals": sc.arrivals_desc,
            "catalog": sc.catalog,
            "zipf_exponent": sc.zipf,
            "workers": sc.workers,
            "max_inflight": sc.max_inflight,
            "schedule_fingerprint": format!("{fp:#018x}"),
            "scheduled": schedule.len(),
            "completed": completed,
            "shed": shed_total,
            "errors": outcome.errors,
            "cold_starts": outcome.cold_starts,
            "tenants": tenants_json,
            "open_loop": report.to_json(),
            "attribution": {
                "overall": {
                    "requests": outcome.recorder.count(),
                    "total_ns": outcome.overall_total_ns,
                    "stages": stages_json(&outcome.overall, outcome.overall_total_ns),
                },
                "tail": {
                    "requests": outcome.tail_requests,
                    "threshold_corrected_ns": outcome.tail_threshold_ns,
                    "total_ns": outcome.tail_total_ns,
                    "stages": stages_json(&outcome.tail, outcome.tail_total_ns),
                },
            },
        }));
        by_name.insert(sc.name, (shed_total, outcome));
    }

    print_table(
        "Open-loop workload observatory (corrected = from intended start)",
        &[
            "scenario",
            "sched",
            "done",
            "shed",
            "cold",
            "p50",
            "p99",
            "p999",
            "co-gap p99",
            "tail dominated by",
        ],
        &rows,
    );

    // Shape checks: the qualitative claims the artifact exists to
    // make, asserted on the numbers just measured.
    for (name, (_, outcome)) in &by_name {
        let r = &outcome.report;
        shape_check(
            &format!(
                "{name}: corrected quantiles are monotone (p50 {} <= p99 {} <= p999 {})",
                fmt_ns(r.corrected.p50),
                fmt_ns(r.corrected.p99),
                fmt_ns(r.corrected.p999)
            ),
            r.corrected.p50 <= r.corrected.p99 && r.corrected.p99 <= r.corrected.p999,
        );
        shape_check(
            &format!(
                "{name}: corrected p99 >= uncorrected p99 (gap {})",
                fmt_ns(r.gap_p99_ns())
            ),
            r.corrected.p99 >= r.uncorrected.p99,
        );
    }
    if let Some((_, bursty)) = by_name.get("bursty") {
        let r = &bursty.report;
        shape_check(
            &format!(
                "bursty: coordinated omission visible — corrected p99 {} > uncorrected p99 {}",
                fmt_ns(r.corrected.p99),
                fmt_ns(r.uncorrected.p99)
            ),
            r.corrected.p99 > r.uncorrected.p99,
        );
    }
    if let Some((_, zipf)) = by_name.get("zipf-fanout") {
        shape_check(
            &format!(
                "zipf-fanout: cold starts from the long catalog tail ({} cold starts)",
                zipf.cold_starts
            ),
            zipf.cold_starts >= (fanout as u64) / 50,
        );
    }
    if let Some((shed_total, hostile)) = by_name.get("hostile-tenant") {
        let mallory = hostile.shed_by_tenant[2];
        let polite = hostile.shed_by_tenant[0] + hostile.shed_by_tenant[1];
        shape_check(
            &format!(
                "hostile-tenant: shedding lands on the hostile tenant (mallory {mallory} vs alice+bob {polite}, total {shed_total})"
            ),
            *shed_total > 0 && mallory > polite,
        );
    }

    let doc = serde_json::json!({
        "bench": "workloads",
        "window_ms": window_ms,
        "seed": seed,
        "fanout": fanout,
        "cost_ns_per_byte": COST_NS_PER_BYTE,
        "scenarios": scenario_docs,
    });
    let path = write_json("BENCH_workloads.json", &doc);
    // Mirror next to the code unless a smoke run says otherwise.
    let mirror = std::env::var("WORKLOADS_MIRROR").map_or(true, |v| v != "0");
    if mirror {
        let root_copy = std::path::Path::new("BENCH_workloads.json");
        std::fs::copy(&path, root_copy).expect("copy BENCH_workloads.json");
        println!(
            "wrote {} (mirrored to {})",
            path.display(),
            root_copy.display()
        );
    } else {
        println!("wrote {} (mirror disabled)", path.display());
    }
}
