//! Calibration: measure the real Rust kernels once per process and
//! turn them into [`dlhub_sim::ServableModel`]s for the testbed
//! simulation. This is what keeps the simulated figures honest — the
//! inference-time *ratios* between servables are measured, not
//! assumed.

use dlhub_core::servable::builtins::{
    ImageClassifier, MatminerFeaturize, MatminerModel, MatminerUtil, NoopServable,
};
use dlhub_core::servable::Servable;
use dlhub_core::value::Value;
use dlhub_sim::{ServableModel, SimTime};
use std::time::{Duration, Instant};

/// A servable together with its calibrated cost model and the input
/// used for calibration.
pub struct CalibratedServable {
    /// Display name matching the paper's Fig 3 labels.
    pub name: &'static str,
    /// Cost model for the simulator.
    pub model: ServableModel,
    /// Real measured single-inference time.
    pub measured: Duration,
}

fn measure(servable: &dyn Servable, input: &Value, runs: usize) -> Duration {
    // Warm up (allocators, thread pools), then take the median of
    // `runs` timed executions.
    servable
        .run(input)
        .expect("calibration input must be valid");
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            servable.run(input).expect("calibration run");
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn kb(value: &Value) -> f64 {
    value.approx_size() as f64 / 1024.0
}

/// Calibrate the paper's six evaluation servables (§V-A). Deterministic
/// model weights from `seed`; timings are real and hardware-dependent.
pub fn calibrate_servables(seed: u64) -> Vec<CalibratedServable> {
    let mut out = Vec::new();

    let noop = NoopServable;
    let noop_input = Value::Null;
    let measured = measure(&noop, &noop_input, 50);
    out.push(CalibratedServable {
        name: "noop",
        model: ServableModel::new(
            "noop",
            SimTime::from_duration(measured),
            kb(&noop_input),
            kb(&Value::Str("hello world".into())),
        ),
        measured,
    });

    let inception = ImageClassifier::inception(seed);
    let inception_input = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::INCEPTION_INPUT,
        0,
    ));
    let inception_output = inception.run(&inception_input).expect("inception runs");
    let measured = measure(&inception, &inception_input, 5);
    out.push(CalibratedServable {
        name: "inception",
        model: ServableModel::new(
            "inception",
            SimTime::from_duration(measured),
            kb(&inception_input),
            kb(&inception_output),
        ),
        measured,
    });

    let cifar = ImageClassifier::cifar10(seed);
    let cifar_input = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        0,
    ));
    let cifar_output = cifar.run(&cifar_input).expect("cifar runs");
    let measured = measure(&cifar, &cifar_input, 15);
    out.push(CalibratedServable {
        name: "cifar10",
        model: ServableModel::new(
            "cifar10",
            SimTime::from_duration(measured),
            kb(&cifar_input),
            kb(&cifar_output),
        ),
        measured,
    });

    let util = MatminerUtil;
    let util_input = Value::Str("NaCl".into());
    let util_output = util.run(&util_input).expect("util runs");
    let measured = measure(&util, &util_input, 50);
    out.push(CalibratedServable {
        name: "matminer util",
        model: ServableModel::new(
            "matminer util",
            SimTime::from_duration(measured),
            kb(&util_input),
            kb(&util_output),
        ),
        measured,
    });

    let featurize = MatminerFeaturize;
    let feat_output = featurize.run(&util_output).expect("featurize runs");
    let measured = measure(&featurize, &util_output, 50);
    out.push(CalibratedServable {
        name: "matminer featurize",
        model: ServableModel::new(
            "matminer featurize",
            SimTime::from_duration(measured),
            kb(&util_output),
            kb(&feat_output),
        ),
        measured,
    });

    let model = MatminerModel::train(seed);
    let measured = measure(&model, &feat_output, 30);
    out.push(CalibratedServable {
        name: "matminer model",
        model: ServableModel::new(
            "matminer model",
            SimTime::from_duration(measured),
            kb(&feat_output),
            kb(&Value::Float(0.0)),
        ),
        measured,
    });

    out
}

/// Find one calibrated servable by name.
pub fn find<'a>(set: &'a [CalibratedServable], name: &str) -> &'a CalibratedServable {
    set.iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no calibrated servable named {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_six_models_with_paper_ratios() {
        let set = calibrate_servables(7);
        assert_eq!(set.len(), 6);
        let t = |name: &str| find(&set, name).model.service_time;
        // The compute ordering the paper's Fig 3 shows.
        assert!(t("inception") > t("cifar10"), "inception must dominate");
        assert!(t("cifar10") > t("matminer util"));
        assert!(t("noop") < t("cifar10"));
        // Inputs: inception's image is by far the biggest payload.
        let in_kb = |name: &str| find(&set, name).model.input_kb;
        assert!(in_kb("inception") > 50.0 * in_kb("matminer util"));
        assert!(in_kb("cifar10") > in_kb("matminer util"));
    }
}
