#![warn(missing_docs)]

//! # dlhub-bench
//!
//! The experiment harness: one binary per table and figure of the
//! paper's evaluation (§V), plus Criterion micro-benchmarks for the
//! design choices called out in DESIGN.md.
//!
//! ```text
//! cargo run --release -p dlhub-bench --bin table1
//! cargo run --release -p dlhub-bench --bin table2
//! cargo run --release -p dlhub-bench --bin fig3   # … fig4..fig8
//! ```
//!
//! Each binary prints the regenerated table/series and writes a CSV
//! under `results/`. Latency experiments run on the [`dlhub_sim`]
//! testbed with **service times calibrated from the real Rust
//! kernels** ([`calibrate`]), so compute ratios are genuine while
//! network constants come from the paper's §V-A description.

pub mod calibrate;
pub mod report;

pub use calibrate::{calibrate_servables, CalibratedServable};
