//! Table printing and CSV output for the experiment binaries.

use std::io::Write;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (`results/` at the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace root under `cargo run`; fall
    // back to CWD otherwise.
    let dir = std::env::current_dir()
        .unwrap_or_else(|_| PathBuf::from("."))
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV with a header row.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(file, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(file, "{}", row.join(",")).expect("write row");
    }
    file.flush().expect("flush csv");
    path
}

/// Write a pretty-printed JSON document under `results/`.
pub fn write_json(name: &str, value: &serde_json::Value) -> PathBuf {
    let path = results_dir().join(name);
    let text = serde_json::to_string_pretty(value).expect("serialize json");
    std::fs::write(&path, text + "\n").expect("write json");
    path
}

/// Print an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", render(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(value: f64) -> String {
    if value < 0.1 {
        format!("{value:.3}")
    } else if value < 10.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.1}")
    }
}

/// A PASS/FAIL shape check printed under each figure, recording
/// whether the paper's qualitative claim holds in our reproduction.
pub fn shape_check(description: &str, holds: bool) {
    println!("  [{}] {description}", if holds { "PASS" } else { "FAIL" });
}

/// Least-squares linear fit `y = a + b x`, returning `(a, b, r2)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let sxx: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
    let b = sxy / sxx;
    let a = mean_y - b * mean_x;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let pred = a + b * x;
            (y - pred) * (y - pred)
        })
        .sum();
    let r2 = 1.0 - ss_res / ss_tot;
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_a_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ms_formats_by_magnitude() {
        assert_eq!(ms(0.0123), "0.012");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ms(123.456), "123.5");
    }

    #[test]
    fn csv_is_written() {
        let path = write_csv(
            "unit-test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }
}
