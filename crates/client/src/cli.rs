//! The Git-like CLI (§IV-E): `init`, `update`, `publish`, `run`, `ls`
//! against a local working directory with a `.dlhub/` metadata file.

use crate::kinds::instantiate;
use crate::toolbox::MetadataBuilder;
use dlhub_auth::Token;
use dlhub_core::repository::PublishVisibility;
use dlhub_core::serving::ManagementService;
use dlhub_core::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The on-disk servable description stored at `.dlhub/dlhub.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalServable {
    /// Servable name.
    pub name: String,
    /// Built-in implementation kind (`noop`, `echo`, `matminer-util`,
    /// `matminer-featurize`, `matminer-model`, `inception`,
    /// `cifar10`).
    pub kind: String,
    /// Description (required at publish time).
    pub description: String,
    /// Discovery tags.
    pub tags: Vec<String>,
    /// Last publication receipt, if any.
    pub published_id: Option<String>,
    /// Version from the last publication.
    pub published_version: Option<u32>,
}

/// CLI errors are plain strings (they are printed to the terminal).
pub type CliError = String;

/// The CLI, bound to a service and user token (what `dlhub login`
/// would establish).
pub struct Cli {
    service: Arc<ManagementService>,
    token: Token,
}

fn metadata_path(workdir: &Path) -> PathBuf {
    workdir.join(".dlhub").join("dlhub.json")
}

fn load(workdir: &Path) -> Result<LocalServable, CliError> {
    let path = metadata_path(workdir);
    let text = std::fs::read_to_string(&path).map_err(|_| {
        format!(
            "no servable here; run 'dlhub init' first ({})",
            path.display()
        )
    })?;
    serde_json::from_str(&text).map_err(|e| format!("corrupt {}: {e}", path.display()))
}

fn store(workdir: &Path, local: &LocalServable) -> Result<(), CliError> {
    let dir = workdir.join(".dlhub");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    std::fs::write(
        metadata_path(workdir),
        serde_json::to_string_pretty(local).expect("local servable serializes"),
    )
    .map_err(|e| e.to_string())
}

impl Cli {
    /// Bind the CLI to a service and token.
    pub fn new(service: Arc<ManagementService>, token: Token) -> Self {
        Cli { service, token }
    }

    /// Execute one command. `args` is the argv after the program name,
    /// e.g. `["init", "my-model", "--kind", "echo"]`. Returns the text
    /// the command prints.
    pub fn execute(&self, workdir: &Path, args: &[&str]) -> Result<String, CliError> {
        match args {
            ["init", rest @ ..] => self.init(workdir, rest),
            ["update", rest @ ..] => self.update(workdir, rest),
            ["publish"] => self.publish(workdir),
            ["run", input] => self.run(workdir, input),
            ["ls"] => self.ls(workdir),
            ["stats", rest @ ..] => self.stats(rest),
            ["trace", rest @ ..] => self.trace(rest),
            ["analyze", rest @ ..] => self.analyze(rest),
            ["slo", rest @ ..] => self.slo(rest),
            ["top", rest @ ..] => self.top(rest),
            ["profile", rest @ ..] => self.profile(rest),
            ["contention"] => self.contention(),
            ["bundle", rest @ ..] => self.bundle(rest),
            [] => Err(
                "usage: dlhub <init|update|publish|run|ls|stats|trace|analyze|slo|top|profile|contention|bundle>"
                    .into(),
            ),
            other => Err(format!("unknown command: {}", other.join(" "))),
        }
    }

    /// `stats [--prometheus|--delta]`: the service's per-servable
    /// serving dashboard, the raw Prometheus text exposition, or —
    /// with `--delta` — only what changed since the previous `--delta`
    /// call (an `iostat`-style window over the same dashboard).
    fn stats(&self, args: &[&str]) -> Result<String, CliError> {
        match args {
            [] => Ok(self.service.metrics_snapshot().render_dashboard()),
            ["--prometheus"] => Ok(self.service.render_prometheus()),
            ["--delta"] => Ok(self.service.metrics_delta().render_dashboard()),
            other => Err(format!(
                "usage: dlhub stats [--prometheus|--delta] (got: {})",
                other.join(" ")
            )),
        }
    }

    /// `profile [--json]`: the continuous profiler's collapsed-stack
    /// aggregates (`thread;frame;frame count` lines — pipe the text
    /// form straight into `flamegraph.pl`). Errors while the profiler
    /// is disabled.
    fn profile(&self, args: &[&str]) -> Result<String, CliError> {
        let report = self
            .service
            .profile_report()
            .ok_or("profiler is disabled; set ServingConfig::profile_hz")?;
        match args {
            [] => Ok(report.render_collapsed()),
            ["--json"] => {
                Ok(serde_json::to_string_pretty(&report.to_json()).expect("profile serializes"))
            }
            other => Err(format!(
                "usage: dlhub profile [--json] (got: {})",
                other.join(" ")
            )),
        }
    }

    /// `contention`: lock/park wait sites ranked by total wait time.
    fn contention(&self) -> Result<String, CliError> {
        Ok(dlhub_core::obs::render_contention(
            &self.service.contention_snapshot(),
        ))
    }

    /// `bundle [<id>] [--json]`: flight-recorder diagnostics. Without
    /// an id, list every frozen bundle; with one, render that bundle's
    /// full diagnostic (trigger, profile slice, contention table,
    /// recent traces, metrics delta).
    fn bundle(&self, args: &[&str]) -> Result<String, CliError> {
        let json = args.contains(&"--json");
        let ids: Vec<&&str> = args.iter().filter(|a| **a != "--json").collect();
        match ids.as_slice() {
            [] => {
                let bundles = self.service.flight_bundles();
                if bundles.is_empty() {
                    return Ok("no flight-recorder bundles frozen\n".into());
                }
                if json {
                    let docs: Vec<_> = bundles.iter().map(|b| b.to_json()).collect();
                    return Ok(serde_json::to_string_pretty(&docs).expect("bundles serialize"));
                }
                let mut out = String::new();
                for b in &bundles {
                    out.push_str(&format!("bundle {}  {}\n", b.id, b.trigger.summary()));
                }
                Ok(out)
            }
            [id] => {
                let id: u64 = id.parse().map_err(|_| format!("not a bundle id: {id}"))?;
                let bundle = self
                    .service
                    .flight_bundle(id)
                    .ok_or_else(|| format!("no bundle {id}"))?;
                if json {
                    Ok(serde_json::to_string_pretty(&bundle.to_json()).expect("bundle serializes"))
                } else {
                    Ok(bundle.render_text())
                }
            }
            other => Err(format!(
                "usage: dlhub bundle [<id>] [--json] (got: {})",
                other
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            )),
        }
    }

    /// `trace [<trace-id>] [--json]`: collected request traces as an
    /// indented span tree (or a JSON dump). Trace ids are the values
    /// printed by `run` and accepted in decimal or `0x…` hex.
    fn trace(&self, args: &[&str]) -> Result<String, CliError> {
        let json = args.contains(&"--json");
        let ids: Vec<&&str> = args.iter().filter(|a| **a != "--json").collect();
        let trace = match ids.as_slice() {
            [] => None,
            [id] => Some(parse_trace_id(id)?),
            other => {
                return Err(format!(
                    "usage: dlhub trace [<trace-id>] [--json] (got: {})",
                    other
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                ))
            }
        };
        let export = self.service.trace_export(trace);
        if json {
            Ok(serde_json::to_string_pretty(&export.to_json()).expect("trace export serializes"))
        } else {
            Ok(export.render_text())
        }
    }

    /// `analyze [<trace-id>] [--json]`: stage-level latency
    /// attribution. With a trace id, decompose that request's wall
    /// time into named serving stages; without one, analyze every
    /// collected trace and print each plus an aggregate stage table.
    fn analyze(&self, args: &[&str]) -> Result<String, CliError> {
        let json = args.contains(&"--json");
        let ids: Vec<&&str> = args.iter().filter(|a| **a != "--json").collect();
        match ids.as_slice() {
            [id] => {
                let trace = parse_trace_id(id)?;
                let analysis = self
                    .service
                    .analyze_trace(trace)
                    .ok_or_else(|| format!("no spans collected for trace {trace:#x}"))?;
                if json {
                    Ok(serde_json::to_string_pretty(&analysis.to_json())
                        .expect("analysis serializes"))
                } else {
                    Ok(analysis.render_text())
                }
            }
            [] => {
                let export = self.service.trace_export(None);
                let analyses = dlhub_core::obs::analyze_all(&export);
                if analyses.is_empty() {
                    return Err("no traces collected yet; run something first".into());
                }
                if json {
                    let docs: Vec<_> = analyses.iter().map(|a| a.to_json()).collect();
                    return Ok(serde_json::to_string_pretty(&docs).expect("analyses serialize"));
                }
                let mut out = String::new();
                for analysis in &analyses {
                    out.push_str(&analysis.render_text());
                }
                let total: u64 = analyses.iter().map(|a| a.total_ns).sum();
                let stages = dlhub_core::obs::aggregate_stages(&analyses);
                out.push_str(&format!(
                    "aggregate over {} traces  total {:.2}ms\n",
                    analyses.len(),
                    total as f64 / 1e6
                ));
                dlhub_core::obs::render_stages(&stages, total, &mut out);
                Ok(out)
            }
            other => Err(format!(
                "usage: dlhub analyze [<trace-id>] [--json] (got: {})",
                other
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            )),
        }
    }

    /// `slo [--json]`: per-servable objective status — burn rates over
    /// the fast and slow windows and the current alert state, as a
    /// table or (with `--json`) machine-readable JSON, consistent with
    /// `stats`/`profile`/`bundle`.
    fn slo(&self, args: &[&str]) -> Result<String, CliError> {
        let snapshot = self.service.metrics_snapshot();
        match args {
            [] => Ok(snapshot.render_slos()),
            ["--json"] => {
                let slos: Vec<serde_json::Value> =
                    snapshot.slos.iter().map(|s| s.to_json()).collect();
                Ok(
                    serde_json::to_string_pretty(&serde_json::Value::Array(slos))
                        .expect("slo snapshot serializes"),
                )
            }
            other => Err(format!(
                "usage: dlhub slo [--json] (got: {})",
                other.join(" ")
            )),
        }
    }

    /// `top [--follow] [--frames N] [--interval-ms M] [--window-s W]`:
    /// live dashboard over the telemetry time-series store — req/s,
    /// p50/p99, queue depth, memo hit ratio, firing SLOs, each with a
    /// sparkline. One frame by default; `--follow` repaints in place
    /// every `--interval-ms` (default: the collector interval) for
    /// `--frames` frames. Errors while telemetry is disabled.
    fn top(&self, args: &[&str]) -> Result<String, CliError> {
        let store = self
            .service
            .telemetry_store()
            .ok_or("telemetry is disabled; set ServingConfig::telemetry_interval")?;
        let mut follow = false;
        let mut frames = 10usize;
        let mut interval = self.service.obs().telemetry.interval();
        let mut window = std::time::Duration::from_secs(60);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match *arg {
                "--follow" => follow = true,
                "--once" => follow = false,
                "--frames" => {
                    frames = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--frames needs a number")?;
                }
                "--interval-ms" => {
                    let ms: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--interval-ms needs a number")?;
                    interval = std::time::Duration::from_millis(ms);
                }
                "--window-s" => {
                    let s: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--window-s needs a number")?;
                    window = std::time::Duration::from_secs(s);
                }
                other => {
                    return Err(format!(
                        "usage: dlhub top [--follow] [--frames N] [--interval-ms M] [--window-s W] (got: {other})"
                    ))
                }
            }
        }
        if !follow {
            return Ok(crate::top::render_frame(
                &store,
                &self.service.metrics_snapshot(),
                window,
            ));
        }
        if interval.is_zero() {
            interval = std::time::Duration::from_millis(250);
        }
        let mut frame = String::new();
        for i in 0..frames.max(1) {
            if i > 0 {
                std::thread::sleep(interval);
            }
            frame = crate::top::render_frame(&store, &self.service.metrics_snapshot(), window);
            print!("{}{}", crate::top::REFRESH_PREFIX, frame);
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Ok(frame)
    }

    /// `init <name> [--kind k]`: create `.dlhub/dlhub.json`.
    fn init(&self, workdir: &Path, args: &[&str]) -> Result<String, CliError> {
        let name = args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("usage: dlhub init <name> [--kind k]")?;
        let kind = flag_value(args, "--kind").unwrap_or("echo");
        instantiate(kind)?; // validate early
        if metadata_path(workdir).exists() {
            return Err("a servable is already initialized here".into());
        }
        let local = LocalServable {
            name: name.to_string(),
            kind: kind.to_string(),
            description: String::new(),
            tags: Vec::new(),
            published_id: None,
            published_version: None,
        };
        store(workdir, &local)?;
        Ok(format!("Initialized servable '{name}' (kind {kind})"))
    }

    /// `update [--description d] [--tag t]...`: modify local metadata.
    fn update(&self, workdir: &Path, args: &[&str]) -> Result<String, CliError> {
        let mut local = load(workdir)?;
        if let Some(d) = flag_value(args, "--description") {
            local.description = d.to_string();
        }
        for tag in flag_values(args, "--tag") {
            if !local.tags.iter().any(|t| t == tag) {
                local.tags.push(tag.to_string());
            }
        }
        store(workdir, &local)?;
        Ok(format!("Updated metadata for '{}'", local.name))
    }

    /// `publish`: push the local servable to DLHub.
    fn publish(&self, workdir: &Path) -> Result<String, CliError> {
        let mut local = load(workdir)?;
        let (servable, model_type, input, output) = instantiate(&local.kind)?;
        let mut builder = MetadataBuilder::new(&local.name, model_type)
            .description(if local.description.is_empty() {
                format!("{} servable published via the DLHub CLI", local.kind)
            } else {
                local.description.clone()
            })
            .input(input)
            .output(output);
        for tag in &local.tags {
            builder = builder.tag(tag.clone());
        }
        let metadata = builder.build()?;
        // Ship the local metadata file as a model component, like the
        // real CLI uploads the working directory's artifacts.
        let components = BTreeMap::from([(
            ".dlhub/dlhub.json".to_string(),
            serde_json::to_vec(&local).expect("local servable serializes"),
        )]);
        let receipt = self
            .service
            .publish(
                &self.token,
                metadata,
                servable,
                components,
                PublishVisibility::Public,
            )
            .map_err(|e| e.to_string())?;
        local.published_id = Some(receipt.id.clone());
        local.published_version = Some(receipt.version);
        store(workdir, &local)?;
        Ok(format!(
            "Published {} v{} (doi {})",
            receipt.id, receipt.version, receipt.doi
        ))
    }

    /// `run <json-input>`: invoke the published servable.
    fn run(&self, workdir: &Path, input: &str) -> Result<String, CliError> {
        let local = load(workdir)?;
        let id = local
            .published_id
            .ok_or("not published yet; run 'dlhub publish' first")?;
        // Accept either a bare string (shorthand) or a JSON value.
        let value: Value = match serde_json::from_str(input) {
            Ok(v) => v,
            Err(_) => Value::Str(input.to_string()),
        };
        let result = self
            .service
            .run(&self.token, &id, value)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "{}\n(request {:.2} ms, invocation {:.2} ms, inference {:.2} ms{}, trace {:#x})",
            result.value,
            result.timings.request.as_secs_f64() * 1e3,
            result.timings.invocation.as_secs_f64() * 1e3,
            result.timings.inference.as_secs_f64() * 1e3,
            if result.timings.cache_hit {
                ", cached"
            } else {
                ""
            },
            result.trace,
        ))
    }

    /// `ls`: show the tracked servable in this directory.
    fn ls(&self, workdir: &Path) -> Result<String, CliError> {
        let local = load(workdir)?;
        let status = match (&local.published_id, local.published_version) {
            (Some(id), Some(v)) => format!("published as {id} v{v}"),
            _ => "unpublished".to_string(),
        };
        Ok(format!("{} (kind {}) — {status}", local.name, local.kind))
    }
}

fn parse_trace_id(text: &str) -> Result<u64, CliError> {
    let parsed = match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("not a trace id: {text}"))
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1).copied())
}

fn flag_values<'a>(args: &[&'a str], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| **a == flag)
        .filter_map(|(i, _)| args.get(i + 1).copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_core::hub::TestHub;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "dlhub-cli-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cli(hub: &TestHub) -> Cli {
        Cli::new(Arc::clone(&hub.service), hub.token.clone())
    }

    #[test]
    fn full_lifecycle_init_update_publish_run_ls() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("lifecycle");
        let out = cli
            .execute(&dir.0, &["init", "parser", "--kind", "matminer-util"])
            .unwrap();
        assert!(out.contains("Initialized"));
        cli.execute(
            &dir.0,
            &[
                "update",
                "--description",
                "Parses compositions",
                "--tag",
                "materials",
            ],
        )
        .unwrap();
        let out = cli.execute(&dir.0, &["publish"]).unwrap();
        assert!(out.contains("Published dlhub/parser v1"), "{out}");
        let out = cli.execute(&dir.0, &["run", "NaCl"]).unwrap();
        assert!(out.contains("formula"), "{out}");
        assert!(out.contains("request"), "{out}");
        let out = cli.execute(&dir.0, &["ls"]).unwrap();
        assert!(out.contains("published as dlhub/parser v1"), "{out}");
        // Republishing bumps the version.
        let out = cli.execute(&dir.0, &["publish"]).unwrap();
        assert!(out.contains("v2"), "{out}");
    }

    #[test]
    fn init_rejects_double_init_and_bad_kind() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("double");
        cli.execute(&dir.0, &["init", "m"]).unwrap();
        assert!(cli.execute(&dir.0, &["init", "m"]).is_err());
        let dir2 = TempDir::new("badkind");
        assert!(cli
            .execute(&dir2.0, &["init", "m", "--kind", "quantum"])
            .is_err());
    }

    #[test]
    fn commands_require_init() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("noinit");
        for cmd in [vec!["ls"], vec!["publish"], vec!["update"]] {
            let err = cli.execute(&dir.0, &cmd).unwrap_err();
            assert!(err.contains("dlhub init"), "{err}");
        }
    }

    #[test]
    fn run_requires_publication() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("nopub");
        cli.execute(&dir.0, &["init", "m"]).unwrap();
        let err = cli.execute(&dir.0, &["run", "x"]).unwrap_err();
        assert!(err.contains("publish"), "{err}");
    }

    #[test]
    fn stats_and_trace_surface_observability() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("stats");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        let out = cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        assert!(out.contains("trace 0x"), "{out}");
        let dash = cli.execute(&dir.0, &["stats"]).unwrap();
        assert!(dash.contains("servable dlhub/echo"), "{dash}");
        assert!(dash.contains("requests 1"), "{dash}");
        let prom = cli.execute(&dir.0, &["stats", "--prometheus"]).unwrap();
        assert!(
            prom.contains("dlhub_servable_requests_total{servable=\"dlhub/echo\"} 1"),
            "{prom}"
        );
        // The trace id printed by `run` selects exactly that request.
        let id = out
            .split("trace ")
            .nth(1)
            .and_then(|rest| rest.strip_suffix(')'))
            .unwrap();
        let tree = cli.execute(&dir.0, &["trace", id]).unwrap();
        assert!(tree.contains("request"), "{tree}");
        assert!(tree.contains("invocation"), "{tree}");
        let json = cli.execute(&dir.0, &["trace", id, "--json"]).unwrap();
        assert!(json.contains("\"spans\""), "{json}");
        assert!(cli.execute(&dir.0, &["trace", "not-a-number"]).is_err());
    }

    #[test]
    fn analyze_and_slo_commands_attribute_latency() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .slo(dlhub_core::obs::SloSpec::new(
                "dlhub/echo",
                std::time::Duration::from_secs(5),
            ))
            .build();
        let cli = cli(&hub);
        let dir = TempDir::new("analyze");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        let out = cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        let id = out
            .split("trace ")
            .nth(1)
            .and_then(|rest| rest.strip_suffix(')'))
            .unwrap();
        let text = cli.execute(&dir.0, &["analyze", id]).unwrap();
        assert!(text.contains("trace 0x"), "{text}");
        assert!(text.contains("execute"), "{text}");
        let json = cli.execute(&dir.0, &["analyze", id, "--json"]).unwrap();
        assert!(json.contains("\"stages\""), "{json}");
        let all = cli.execute(&dir.0, &["analyze"]).unwrap();
        assert!(all.contains("aggregate over"), "{all}");
        let slo = cli.execute(&dir.0, &["slo"]).unwrap();
        assert!(slo.contains("slo dlhub/echo"), "{slo}");
        assert!(slo.contains("state ok"), "{slo}");
        assert!(cli.execute(&dir.0, &["analyze", "0xdeadbeef"]).is_err());
        assert!(cli.execute(&dir.0, &["analyze", "nope"]).is_err());
    }

    #[test]
    fn profile_contention_and_bundle_commands() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .config(dlhub_core::serving::ServingConfig {
                profile_hz: 199,
                recorder_capacity: 4,
                ..Default::default()
            })
            .build();
        let cli = cli(&hub);
        let dir = TempDir::new("flight");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        for _ in 0..10 {
            cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        }
        // Give the background sampler a few periods to observe.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let prof = cli.execute(&dir.0, &["profile"]).unwrap();
        assert!(prof.contains(';'), "no collapsed stacks:\n{prof}");
        let prof_json = cli.execute(&dir.0, &["profile", "--json"]).unwrap();
        assert!(prof_json.contains("\"stacks\""), "{prof_json}");
        assert!(cli.execute(&dir.0, &["profile", "--bogus"]).is_err());
        // The contention table renders whether or not anything waited.
        let contention = cli.execute(&dir.0, &["contention"]).unwrap();
        assert!(contention.contains("site"), "{contention}");
        // No failure yet: nothing frozen.
        let empty = cli.execute(&dir.0, &["bundle"]).unwrap();
        assert!(empty.contains("no flight-recorder bundles"), "{empty}");
        // A terminal async failure freezes a bundle the CLI can fetch.
        hub.publish_simple(
            "boom",
            dlhub_core::servable::ModelType::PythonFunction,
            dlhub_core::servable::servable_fn(|_| Err("exploded".into())),
        );
        let handle = hub
            .service
            .run_async(&hub.token, "dlhub/boom", Value::Null)
            .unwrap();
        handle.wait(std::time::Duration::from_secs(5));
        let list = cli.execute(&dir.0, &["bundle"]).unwrap();
        assert!(list.contains("dlhub/boom"), "{list}");
        let id = list
            .split_whitespace()
            .nth(1)
            .expect("bundle id in listing");
        let text = cli.execute(&dir.0, &["bundle", id]).unwrap();
        assert!(text.contains("task_failed"), "{text}");
        let json = cli.execute(&dir.0, &["bundle", id, "--json"]).unwrap();
        assert!(json.contains("\"trigger\""), "{json}");
        assert!(cli.execute(&dir.0, &["bundle", "999999"]).is_err());
        assert!(cli.execute(&dir.0, &["bundle", "nope"]).is_err());
    }

    #[test]
    fn slo_json_renders_machine_readable_objectives() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .slo(dlhub_core::obs::SloSpec::new(
                "dlhub/echo",
                std::time::Duration::from_secs(5),
            ))
            .build();
        let cli = cli(&hub);
        let dir = TempDir::new("slojson");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        let json = cli.execute(&dir.0, &["slo", "--json"]).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let slos = doc.as_array().unwrap();
        assert_eq!(slos.len(), 1, "{json}");
        assert_eq!(slos[0]["servable"], "dlhub/echo");
        assert!(slos[0]["latency_burn_fast"].as_f64().is_some(), "{json}");
        assert_eq!(slos[0]["firing"], false);
        assert!(cli.execute(&dir.0, &["slo", "--bogus"]).is_err());
    }

    #[test]
    fn top_renders_live_series_from_a_running_hub() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .config(dlhub_core::serving::ServingConfig {
                telemetry_interval: std::time::Duration::from_millis(10),
                ..Default::default()
            })
            .build();
        let cli = cli(&hub);
        let dir = TempDir::new("top");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        for _ in 0..5 {
            cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        }
        // Wait for the collector to take at least two passes so rates
        // have a delta to work from.
        let store = hub.service.telemetry_store().expect("telemetry enabled");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.samples_taken() < 3 {
            assert!(std::time::Instant::now() < deadline, "collector never ran");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let frame = cli.execute(&dir.0, &["top"]).unwrap();
        assert!(frame.contains("dlhub top"), "{frame}");
        assert!(frame.contains("dlhub/echo"), "{frame}");
        assert!(frame.contains("REQ/S"), "{frame}");
        assert!(frame.contains("MEMO"), "{frame}");
        // No admission controller on this hub: the row says so rather
        // than vanishing.
        assert!(frame.contains("ADMISSION"), "{frame}");
        // Sparkline glyphs from the live series are present.
        assert!(frame.contains('█') || frame.contains('▁'), "{frame}");
        // Follow mode returns the final frame.
        let followed = cli
            .execute(
                &dir.0,
                &["top", "--follow", "--frames", "2", "--interval-ms", "5"],
            )
            .unwrap();
        assert!(followed.contains("dlhub top"), "{followed}");
        assert!(cli.execute(&dir.0, &["top", "--frames"]).is_err());
        assert!(cli.execute(&dir.0, &["top", "--bogus"]).is_err());
    }

    #[test]
    fn top_errors_when_telemetry_is_disabled() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("topoff");
        let err = cli.execute(&dir.0, &["top"]).unwrap_err();
        assert!(err.contains("telemetry is disabled"), "{err}");
    }

    #[test]
    fn stats_delta_shows_only_the_new_window() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("delta");
        cli.execute(&dir.0, &["init", "echo"]).unwrap();
        cli.execute(&dir.0, &["publish"]).unwrap();
        cli.execute(&dir.0, &["run", "\"hi\""]).unwrap();
        let first = cli.execute(&dir.0, &["stats", "--delta"]).unwrap();
        assert!(first.contains("requests 1"), "{first}");
        // Quiet window: the previous request must not be re-reported.
        let quiet = cli.execute(&dir.0, &["stats", "--delta"]).unwrap();
        assert!(!quiet.contains("requests 1"), "{quiet}");
        assert!(cli.execute(&dir.0, &["stats", "--nope"]).is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        let hub = TestHub::builder().without_eval_servables().build();
        let cli = cli(&hub);
        let dir = TempDir::new("unknown");
        assert!(cli.execute(&dir.0, &["frobnicate"]).is_err());
        assert!(cli.execute(&dir.0, &[]).is_err());
    }
}
