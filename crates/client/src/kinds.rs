//! Built-in servable kinds instantiable by name.
//!
//! The real DLHub builds servables from uploaded Python code; this
//! reproduction cannot execute arbitrary code, so the CLI and REST
//! publication paths instead instantiate one of the named built-in
//! implementations (see DESIGN.md, "Substitutions"). The set covers
//! every servable the paper evaluates plus generic test functions.

use dlhub_core::servable::builtins::{
    ImageClassifier, MatminerFeaturize, MatminerModel, MatminerUtil, NoopServable,
};
use dlhub_core::servable::{servable_fn, ModelType, Servable, TypeDesc};
use dlhub_core::value::Value;
use std::sync::Arc;

/// Kind names accepted by [`instantiate`].
pub const KINDS: [&str; 7] = [
    "noop",
    "echo",
    "matminer-util",
    "matminer-featurize",
    "matminer-model",
    "inception",
    "cifar10",
];

/// Instantiate a built-in servable kind, returning the implementation
/// plus its canonical model type and input/output descriptors.
pub fn instantiate(
    kind: &str,
) -> Result<(Arc<dyn Servable>, ModelType, TypeDesc, TypeDesc), String> {
    match kind {
        "noop" => Ok((
            Arc::new(NoopServable),
            ModelType::PythonFunction,
            TypeDesc::Any,
            TypeDesc::String,
        )),
        "echo" => Ok((
            servable_fn(|v: &Value| Ok(v.clone())),
            ModelType::PythonFunction,
            TypeDesc::Any,
            TypeDesc::Any,
        )),
        "matminer-util" => Ok((
            Arc::new(MatminerUtil),
            ModelType::PythonFunction,
            TypeDesc::String,
            TypeDesc::Json,
        )),
        "matminer-featurize" => Ok((
            Arc::new(MatminerFeaturize),
            ModelType::PythonFunction,
            TypeDesc::Json,
            TypeDesc::Tensor(None),
        )),
        "matminer-model" => Ok((
            Arc::new(MatminerModel::train(7)),
            ModelType::ScikitLearn,
            TypeDesc::Tensor(None),
            TypeDesc::Float,
        )),
        "inception" => Ok((
            Arc::new(ImageClassifier::inception(7)),
            ModelType::TensorFlow,
            TypeDesc::Tensor(None),
            TypeDesc::List,
        )),
        "cifar10" => Ok((
            Arc::new(ImageClassifier::cifar10(7)),
            ModelType::Keras,
            TypeDesc::Tensor(None),
            TypeDesc::List,
        )),
        other => Err(format!(
            "unknown servable kind: {other} (known: {})",
            KINDS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_kind_instantiates() {
        for kind in KINDS {
            let (servable, _, input, _) = instantiate(kind).unwrap();
            // Every kind can be exercised with an input matching its
            // descriptor (Any/String cases here; tensor kinds are
            // covered by their own builtin tests).
            match input {
                TypeDesc::Any => {
                    servable.run(&Value::Null).unwrap();
                }
                TypeDesc::String => {
                    servable.run(&Value::Str("NaCl".into())).unwrap();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn unknown_kind_lists_alternatives() {
        let Err(err) = instantiate("quantum-annealer") else {
            panic!("unknown kind must fail");
        };
        assert!(err.contains("cifar10"));
    }
}
