#![warn(missing_docs)]

//! # dlhub-client
//!
//! DLHub's user-facing interfaces (§IV-E): "DLHub offers a REST API,
//! Command Line Interface (CLI), and a Python Software Development Kit
//! (SDK) for publishing, managing, and invoking models. We also
//! provide a user toolbox to assist with the creation of metadata."
//!
//! * [`rest::RestApi`] — the HTTP-style API: method + path + JSON
//!   body in, status + JSON body out.
//! * [`sdk::DlhubClient`] — the SDK: typed wrappers over the REST API.
//! * [`cli::Cli`] — the Git-like CLI with `init`, `update`,
//!   `publish`, `run` and `ls` working against a local `.dlhub/`
//!   directory.
//! * [`toolbox`] — metadata builder plus local servable execution for
//!   model development and testing.

pub mod cli;
pub mod kinds;
pub mod rest;
pub mod sdk;
pub mod toolbox;
pub mod top;

pub use rest::{RestApi, RestResponse};
pub use sdk::DlhubClient;
pub use toolbox::MetadataBuilder;
