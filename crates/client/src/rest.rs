//! The REST API: routes requests shaped like HTTP calls onto the
//! Management Service.

use dlhub_auth::Token;
use dlhub_core::serving::ManagementService;
use dlhub_core::task::TaskStatus;
use dlhub_core::value::Value;
use dlhub_core::DlhubError;
use dlhub_search::Query;
use serde_json::json;
use std::sync::Arc;

/// An HTTP-style response.
#[derive(Debug, Clone, PartialEq)]
pub struct RestResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: serde_json::Value,
}

impl RestResponse {
    fn ok(body: serde_json::Value) -> Self {
        RestResponse { status: 200, body }
    }

    fn error(status: u16, message: impl std::fmt::Display) -> Self {
        RestResponse {
            status,
            body: json!({ "error": message.to_string() }),
        }
    }
}

fn status_for(e: &DlhubError) -> u16 {
    match e {
        DlhubError::Auth(_) => 401,
        DlhubError::NotFound(_) | DlhubError::UnknownTask(_) => 404,
        DlhubError::InvalidInput { .. } | DlhubError::Pipeline(_) | DlhubError::Publication(_) => {
            400
        }
        DlhubError::Timeout | DlhubError::Exhausted { .. } => 504,
        _ => 500,
    }
}

/// The REST front to a Management Service.
pub struct RestApi {
    service: Arc<ManagementService>,
}

impl RestApi {
    /// Mount the API over a service.
    pub fn new(service: Arc<ManagementService>) -> Self {
        RestApi { service }
    }

    /// Route one request. Supported routes:
    ///
    /// * `GET /servables?q=<text>` — free-text search.
    /// * `POST /servables` — publish; body `{"name", "kind",
    ///   "description", "tags": […]}` (kinds: see
    ///   [`crate::kinds::KINDS`]).
    /// * `GET /servables/{user}/{name}` — describe.
    /// * `POST /servables/{user}/{name}/run` — body `{"input": …}`.
    /// * `POST /servables/{user}/{name}/run_async` — same body;
    ///   returns `{"task_id": …}`.
    /// * `GET /tasks/{id}` — poll an async task.
    pub fn handle(
        &self,
        method: &str,
        path: &str,
        token: Option<&Token>,
        body: serde_json::Value,
    ) -> RestResponse {
        let (route, query) = match path.split_once('?') {
            Some((r, q)) => (r, Some(q)),
            None => (path, None),
        };
        let parts: Vec<&str> = route.trim_matches('/').split('/').collect();
        match (method, parts.as_slice()) {
            ("GET", ["servables"]) => self.search(token, query),
            ("POST", ["servables"]) => self.publish(token, body),
            ("GET", ["servables", user, name]) => self.describe(token, user, name),
            ("POST", ["servables", user, name, "run"]) => self.run(token, user, name, body, false),
            ("POST", ["servables", user, name, "run_async"]) => {
                self.run(token, user, name, body, true)
            }
            ("GET", ["tasks", id]) => self.task(id),
            _ => RestResponse::error(404, format!("no route for {method} {path}")),
        }
    }

    fn publish(&self, token: Option<&Token>, body: serde_json::Value) -> RestResponse {
        let Some(token) = token else {
            return RestResponse::error(401, "authentication required");
        };
        let Some(name) = body.get("name").and_then(|v| v.as_str()) else {
            return RestResponse::error(400, "missing 'name'");
        };
        let kind = body.get("kind").and_then(|v| v.as_str()).unwrap_or("echo");
        let (servable, model_type, input, output) = match crate::kinds::instantiate(kind) {
            Ok(parts) => parts,
            Err(e) => return RestResponse::error(400, e),
        };
        let mut builder = crate::toolbox::MetadataBuilder::new(name, model_type)
            .description(
                body.get("description")
                    .and_then(|v| v.as_str())
                    .unwrap_or("published via the DLHub REST API"),
            )
            .input(input)
            .output(output);
        if let Some(tags) = body.get("tags").and_then(|v| v.as_array()) {
            for tag in tags.iter().filter_map(|t| t.as_str()) {
                builder = builder.tag(tag);
            }
        }
        let metadata = match builder.build() {
            Ok(m) => m,
            Err(e) => return RestResponse::error(400, e),
        };
        match self.service.publish(
            token,
            metadata,
            servable,
            Default::default(),
            dlhub_core::repository::PublishVisibility::Public,
        ) {
            Ok(receipt) => RestResponse::ok(json!({
                "id": receipt.id,
                "version": receipt.version,
                "doi": receipt.doi,
            })),
            Err(e) => RestResponse::error(status_for(&e), e),
        }
    }

    fn search(&self, token: Option<&Token>, query: Option<&str>) -> RestResponse {
        let q = query
            .and_then(|qs| {
                qs.split('&')
                    .find_map(|kv| kv.strip_prefix("q=").map(|v| v.to_string()))
            })
            .unwrap_or_default();
        let search_query = if q.is_empty() {
            Query::All
        } else {
            Query::free_text(q)
        };
        let hits = self.service.search(token, &search_query);
        RestResponse::ok(json!({
            "count": hits.len(),
            "results": hits
                .iter()
                .map(|h| json!({"id": h.id, "score": h.score, "metadata": h.body}))
                .collect::<Vec<_>>(),
        }))
    }

    fn describe(&self, token: Option<&Token>, user: &str, name: &str) -> RestResponse {
        let id = format!("{user}/{name}");
        match self.service.describe(token, &id) {
            Ok((metadata, version, doi)) => RestResponse::ok(json!({
                "id": id,
                "version": version,
                "doi": doi,
                "metadata": metadata.to_search_document(),
            })),
            Err(e) => RestResponse::error(status_for(&e), e),
        }
    }

    fn run(
        &self,
        token: Option<&Token>,
        user: &str,
        name: &str,
        body: serde_json::Value,
        asynchronous: bool,
    ) -> RestResponse {
        let Some(token) = token else {
            return RestResponse::error(401, "authentication required");
        };
        let id = format!("{user}/{name}");
        let input: Value = match body.get("input") {
            Some(raw) => match serde_json::from_value(raw.clone()) {
                Ok(v) => v,
                Err(e) => return RestResponse::error(400, format!("bad input: {e}")),
            },
            None => Value::Null,
        };
        if asynchronous {
            match self.service.run_async(token, &id, input) {
                Ok(handle) => RestResponse::ok(json!({ "task_id": handle.id })),
                Err(e) => RestResponse::error(status_for(&e), e),
            }
        } else {
            match self.service.run(token, &id, input) {
                Ok(result) => RestResponse::ok(json!({
                    "output": serde_json::to_value(&result.value).expect("value serializes"),
                    "timings": {
                        "inference_ms": result.timings.inference.as_secs_f64() * 1e3,
                        "invocation_ms": result.timings.invocation.as_secs_f64() * 1e3,
                        "request_ms": result.timings.request.as_secs_f64() * 1e3,
                        "cache_hit": result.timings.cache_hit,
                    },
                })),
                Err(e) => RestResponse::error(status_for(&e), e),
            }
        }
    }

    fn task(&self, id: &str) -> RestResponse {
        match self.service.task_status(id) {
            Ok(TaskStatus::Pending) => RestResponse::ok(json!({"status": "pending"})),
            Ok(TaskStatus::Completed(v)) => RestResponse::ok(json!({
                "status": "completed",
                "output": serde_json::to_value(&v).expect("value serializes"),
            })),
            Ok(TaskStatus::Failed {
                attempts,
                last_error,
            }) => RestResponse::ok(json!({
                "status": "failed",
                "error": last_error,
                "attempts": attempts,
            })),
            Err(e) => RestResponse::error(status_for(&e), e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_core::hub::TestHub;
    use std::time::Duration;

    fn api(hub: &TestHub) -> RestApi {
        RestApi::new(Arc::clone(&hub.service))
    }

    #[test]
    fn search_route() {
        let hub = TestHub::builder().build();
        let api = api(&hub);
        let resp = api.handle("GET", "/servables?q=inception", Some(&hub.token), json!({}));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body["count"], 1);
        assert_eq!(resp.body["results"][0]["id"], "dlhub/inception");
        // Bare list returns everything public.
        let resp = api.handle("GET", "/servables", None, json!({}));
        assert_eq!(resp.body["count"], 6);
    }

    #[test]
    fn describe_route() {
        let hub = TestHub::builder().build();
        let resp = api(&hub).handle("GET", "/servables/dlhub/noop", None, json!({}));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body["version"], 1);
        assert!(resp.body["doi"].as_str().unwrap().starts_with("10.26311/"));
        let resp = api(&hub).handle("GET", "/servables/dlhub/ghost", None, json!({}));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn run_route_sync() {
        let hub = TestHub::builder().build();
        let resp = api(&hub).handle(
            "POST",
            "/servables/dlhub/matminer-util/run",
            Some(&hub.token),
            json!({"input": {"Str": "NaCl"}}),
        );
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        assert_eq!(resp.body["output"]["Json"]["formula"], "NaCl");
        assert!(resp.body["timings"]["request_ms"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn run_requires_auth() {
        let hub = TestHub::builder().build();
        let resp = api(&hub).handle("POST", "/servables/dlhub/noop/run", None, json!({}));
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn run_async_and_poll() {
        let hub = TestHub::builder().build();
        let api = api(&hub);
        let resp = api.handle(
            "POST",
            "/servables/dlhub/noop/run_async",
            Some(&hub.token),
            json!({}),
        );
        assert_eq!(resp.status, 200);
        let task_id = resp.body["task_id"].as_str().unwrap().to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let poll = api.handle("GET", &format!("/tasks/{task_id}"), None, json!({}));
            assert_eq!(poll.status, 200);
            if poll.body["status"] == "completed" {
                assert_eq!(poll.body["output"]["Str"], "hello world");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "task never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
        let missing = api.handle("GET", "/tasks/task-bogus", None, json!({}));
        assert_eq!(missing.status, 404);
    }

    #[test]
    fn publish_route_end_to_end() {
        let hub = TestHub::builder().without_eval_servables().build();
        let api = api(&hub);
        let resp = api.handle(
            "POST",
            "/servables",
            Some(&hub.token),
            json!({
                "name": "parser",
                "kind": "matminer-util",
                "description": "composition parser via REST",
                "tags": ["materials"],
            }),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.body["id"], "dlhub/parser");
        assert_eq!(resp.body["version"], 1);
        // Immediately servable.
        let run = api.handle(
            "POST",
            "/servables/dlhub/parser/run",
            Some(&hub.token),
            json!({"input": {"Str": "SiO2"}}),
        );
        assert_eq!(run.status, 200);
        assert_eq!(run.body["output"]["Json"]["composition"]["O"], 2.0);
        // Unauthenticated and malformed publishes are rejected.
        assert_eq!(
            api.handle("POST", "/servables", None, json!({})).status,
            401
        );
        assert_eq!(
            api.handle("POST", "/servables", Some(&hub.token), json!({}))
                .status,
            400
        );
        assert_eq!(
            api.handle(
                "POST",
                "/servables",
                Some(&hub.token),
                json!({"name": "x", "kind": "warp-drive"})
            )
            .status,
            400
        );
    }

    #[test]
    fn bad_routes_and_inputs() {
        let hub = TestHub::builder().build();
        let api = api(&hub);
        assert_eq!(
            api.handle("DELETE", "/servables", None, json!({})).status,
            404
        );
        let resp = api.handle(
            "POST",
            "/servables/dlhub/noop/run",
            Some(&hub.token),
            json!({"input": {"Wat": 3}}),
        );
        assert_eq!(resp.status, 400);
        // Type mismatch surfaces as 400 from validation.
        let resp = api.handle(
            "POST",
            "/servables/dlhub/matminer-util/run",
            Some(&hub.token),
            json!({"input": {"Int": 3}}),
        );
        assert_eq!(resp.status, 400);
    }
}
