//! The SDK (§IV-E): "wraps DLHub's REST API, providing access to all
//! model repository and serving functionality."

use crate::rest::RestApi;
use dlhub_auth::Token;
use dlhub_core::serving::ManagementService;
use dlhub_core::value::Value;
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SDK errors carry the REST status plus the server's message.
#[derive(Debug, Clone, PartialEq)]
pub struct SdkError {
    /// HTTP status code.
    pub status: u16,
    /// Error message from the service.
    pub message: String,
}

impl std::fmt::Display for SdkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {}: {}", self.status, self.message)
    }
}

impl std::error::Error for SdkError {}

/// A typed client over the REST API, bound to one user's token.
pub struct DlhubClient {
    api: RestApi,
    token: Token,
}

impl DlhubClient {
    /// Connect with a token (obtained from the Globus-Auth-like
    /// service).
    pub fn new(service: Arc<ManagementService>, token: Token) -> Self {
        DlhubClient {
            api: RestApi::new(service),
            token,
        }
    }

    fn expect_ok(resp: crate::rest::RestResponse) -> Result<serde_json::Value, SdkError> {
        if resp.status == 200 {
            Ok(resp.body)
        } else {
            Err(SdkError {
                status: resp.status,
                message: resp.body["error"]
                    .as_str()
                    .unwrap_or("unknown error")
                    .to_string(),
            })
        }
    }

    /// Publish a built-in servable kind (see [`crate::kinds::KINDS`]);
    /// returns `(id, version, doi)`.
    pub fn publish(
        &self,
        name: &str,
        kind: &str,
        description: &str,
        tags: &[&str],
    ) -> Result<(String, u32, String), SdkError> {
        let body = Self::expect_ok(self.api.handle(
            "POST",
            "/servables",
            Some(&self.token),
            json!({
                "name": name,
                "kind": kind,
                "description": description,
                "tags": tags,
            }),
        ))?;
        Ok((
            body["id"].as_str().unwrap_or_default().to_string(),
            body["version"].as_u64().unwrap_or_default() as u32,
            body["doi"].as_str().unwrap_or_default().to_string(),
        ))
    }

    /// Free-text model search; returns `(id, metadata)` pairs.
    pub fn search(&self, text: &str) -> Result<Vec<(String, serde_json::Value)>, SdkError> {
        let body = Self::expect_ok(self.api.handle(
            "GET",
            &format!("/servables?q={text}"),
            Some(&self.token),
            json!({}),
        ))?;
        Ok(body["results"]
            .as_array()
            .map(|items| {
                items
                    .iter()
                    .map(|r| {
                        (
                            r["id"].as_str().unwrap_or_default().to_string(),
                            r["metadata"].clone(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Describe a servable; returns the full JSON document.
    pub fn describe(&self, id: &str) -> Result<serde_json::Value, SdkError> {
        Self::expect_ok(self.api.handle(
            "GET",
            &format!("/servables/{id}"),
            Some(&self.token),
            json!({}),
        ))
    }

    /// Synchronous inference.
    pub fn run(&self, id: &str, input: &Value) -> Result<Value, SdkError> {
        let body = Self::expect_ok(self.api.handle(
            "POST",
            &format!("/servables/{id}/run"),
            Some(&self.token),
            json!({ "input": serde_json::to_value(input).expect("value serializes") }),
        ))?;
        serde_json::from_value(body["output"].clone()).map_err(|e| SdkError {
            status: 500,
            message: format!("malformed output: {e}"),
        })
    }

    /// Asynchronous inference; returns the task UUID.
    pub fn run_async(&self, id: &str, input: &Value) -> Result<String, SdkError> {
        let body = Self::expect_ok(self.api.handle(
            "POST",
            &format!("/servables/{id}/run_async"),
            Some(&self.token),
            json!({ "input": serde_json::to_value(input).expect("value serializes") }),
        ))?;
        Ok(body["task_id"].as_str().unwrap_or_default().to_string())
    }

    /// Poll an async task until it finishes or `timeout` elapses.
    pub fn wait_task(&self, task_id: &str, timeout: Duration) -> Result<Value, SdkError> {
        let deadline = Instant::now() + timeout;
        loop {
            let body = Self::expect_ok(self.api.handle(
                "GET",
                &format!("/tasks/{task_id}"),
                Some(&self.token),
                json!({}),
            ))?;
            match body["status"].as_str() {
                Some("completed") => {
                    return serde_json::from_value(body["output"].clone()).map_err(|e| SdkError {
                        status: 500,
                        message: format!("malformed output: {e}"),
                    })
                }
                Some("failed") => {
                    return Err(SdkError {
                        status: 500,
                        message: body["error"].as_str().unwrap_or("failed").to_string(),
                    })
                }
                _ => {
                    if Instant::now() >= deadline {
                        return Err(SdkError {
                            status: 504,
                            message: format!("task {task_id} still pending"),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_core::hub::TestHub;

    fn client(hub: &TestHub) -> DlhubClient {
        DlhubClient::new(Arc::clone(&hub.service), hub.token.clone())
    }

    #[test]
    fn search_and_describe() {
        let hub = TestHub::builder().build();
        let c = client(&hub);
        let hits = c.search("cifar").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "dlhub/cifar10");
        let doc = c.describe("dlhub/cifar10").unwrap();
        assert_eq!(doc["metadata"]["model_type"], "keras");
    }

    #[test]
    fn run_sync() {
        let hub = TestHub::builder().build();
        let c = client(&hub);
        let out = c.run("dlhub/noop", &Value::Null).unwrap();
        assert_eq!(out, Value::Str("hello world".into()));
    }

    #[test]
    fn run_async_and_wait() {
        let hub = TestHub::builder().build();
        let c = client(&hub);
        let task = c
            .run_async("dlhub/matminer-util", &Value::Str("NaCl".into()))
            .unwrap();
        assert!(task.starts_with("task-"));
        let out = c.wait_task(&task, Duration::from_secs(5)).unwrap();
        match out {
            Value::Json(doc) => assert_eq!(doc["formula"], "NaCl"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn publish_then_serve_through_sdk() {
        let hub = TestHub::builder().without_eval_servables().build();
        let c = client(&hub);
        let (id, version, doi) = c
            .publish("echoer", "echo", "echoes its input", &["test"])
            .unwrap();
        assert_eq!(id, "dlhub/echoer");
        assert_eq!(version, 1);
        assert!(doi.starts_with("10."));
        let out = c.run(&id, &Value::Int(5)).unwrap();
        assert_eq!(out, Value::Int(5));
        let err = c.publish("x", "warp-drive", "d", &[]).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn errors_carry_status() {
        let hub = TestHub::builder().build();
        let c = client(&hub);
        let err = c.run("dlhub/ghost", &Value::Null).unwrap_err();
        assert_eq!(err.status, 404);
        let err = c.run("dlhub/matminer-util", &Value::Int(1)).unwrap_err();
        assert_eq!(err.status, 400);
    }
}
