//! The DLHub toolbox (§IV-E): programmatic metadata construction that
//! complies with the DLHub schema, plus local execution of servables
//! "useful for model development and testing".

use dlhub_core::servable::{ModelType, Servable, ServableMetadata, TypeDesc};
use dlhub_core::value::Value;
use std::time::{Duration, Instant};

/// Builder producing schema-compliant [`ServableMetadata`].
#[derive(Debug, Clone)]
pub struct MetadataBuilder {
    metadata: ServableMetadata,
}

impl MetadataBuilder {
    /// Start a document for `name` of the given model family. The
    /// owner field is pre-completed by the service at publication from
    /// the authenticated profile, so it is not settable here.
    pub fn new(name: impl Into<String>, model_type: ModelType) -> Self {
        MetadataBuilder {
            metadata: ServableMetadata::new(name, "pending@publication", model_type),
        }
    }

    /// Human description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.metadata.description = text.into();
        self
    }

    /// Add an author for citation.
    pub fn author(mut self, name: impl Into<String>) -> Self {
        self.metadata.authors.push(name.into());
        self
    }

    /// Science domain.
    pub fn domain(mut self, domain: impl Into<String>) -> Self {
        self.metadata.domain = domain.into();
        self
    }

    /// Declared input type.
    pub fn input(mut self, desc: TypeDesc) -> Self {
        self.metadata.input_type = desc;
        self
    }

    /// Declared output type.
    pub fn output(mut self, desc: TypeDesc) -> Self {
        self.metadata.output_type = desc;
        self
    }

    /// Pin a dependency.
    pub fn dependency(mut self, package: impl Into<String>, version: impl Into<String>) -> Self {
        self.metadata
            .dependencies
            .push((package.into(), version.into()));
        self
    }

    /// Add a discovery tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.metadata.tags.push(tag.into());
        self
    }

    /// Publication year.
    pub fn year(mut self, year: u32) -> Self {
        self.metadata.year = year;
        self
    }

    /// Validate and produce the metadata document.
    pub fn build(self) -> Result<ServableMetadata, String> {
        let m = &self.metadata;
        if m.name.is_empty() {
            return Err("name is required".into());
        }
        if m.name.contains('/') || m.name.contains(char::is_whitespace) {
            return Err("name must not contain '/' or whitespace".into());
        }
        if m.description.is_empty() {
            return Err("description is required by the DLHub schema".into());
        }
        Ok(self.metadata)
    }
}

/// Result of a local run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalRun {
    /// Servable output.
    pub output: Value,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Execute a servable locally ("functionality to execute DLHub models
/// locally … useful for model development and testing", §IV-E),
/// validating the input against the declared type first.
pub fn run_local(
    metadata: &ServableMetadata,
    servable: &dyn Servable,
    input: &Value,
) -> Result<LocalRun, String> {
    if !metadata.input_type.matches(input) {
        return Err(format!(
            "input does not match declared type {}",
            metadata.input_type.descriptor()
        ));
    }
    let start = Instant::now();
    let output = servable.run(input)?;
    Ok(LocalRun {
        output,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_core::servable::builtins::MatminerUtil;

    #[test]
    fn builder_produces_valid_metadata() {
        let m = MetadataBuilder::new("stability-rf", ModelType::ScikitLearn)
            .description("Random forest predicting stability")
            .author("Ward, Logan")
            .domain("materials science")
            .input(TypeDesc::Tensor(None))
            .output(TypeDesc::Float)
            .dependency("scikit-learn", "0.20")
            .tag("materials")
            .year(2018)
            .build()
            .unwrap();
        assert_eq!(m.name, "stability-rf");
        assert_eq!(m.authors.len(), 1);
        assert_eq!(m.year, 2018);
        assert_eq!(m.dependencies[0].0, "scikit-learn");
    }

    #[test]
    fn builder_enforces_schema() {
        let err = MetadataBuilder::new("m", ModelType::Keras)
            .build()
            .unwrap_err();
        assert!(err.contains("description"));
        let err = MetadataBuilder::new("bad name", ModelType::Keras)
            .description("d")
            .build()
            .unwrap_err();
        assert!(err.contains("whitespace"));
        let err = MetadataBuilder::new("a/b", ModelType::Keras)
            .description("d")
            .build()
            .unwrap_err();
        assert!(err.contains('/'));
    }

    #[test]
    fn run_local_validates_and_times() {
        let metadata = MetadataBuilder::new("util", ModelType::PythonFunction)
            .description("composition parser")
            .input(TypeDesc::String)
            .build()
            .unwrap();
        let run = run_local(&metadata, &MatminerUtil, &Value::Str("SiO2".into())).unwrap();
        match run.output {
            Value::Json(doc) => assert_eq!(doc["composition"]["O"], 2.0),
            other => panic!("unexpected {other}"),
        }
        let err = run_local(&metadata, &MatminerUtil, &Value::Int(1)).unwrap_err();
        assert!(err.contains("declared type"));
    }
}
