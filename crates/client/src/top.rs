//! `dlhub top`: a live terminal dashboard over the telemetry
//! time-series store — req/s, latency percentiles, queue depth, memo
//! hit ratio and firing SLOs, each with a sparkline of recent history.
//!
//! Rendering is plain ANSI: every frame is a full string and the
//! follow loop repaints by emitting cursor-home + clear-to-end, so it
//! works in any terminal and diff-cleanly in tests.

use dlhub_core::obs::{MetricsSnapshot, SeriesStore};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Bar glyphs from empty to full eighth-blocks.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Width of every sparkline in the dashboard.
const SPARK_WIDTH: usize = 24;

/// Render `values` as a fixed-width sparkline, scaling to the series
/// max; an empty or all-zero series renders all-baseline bars.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return SPARKS[0].to_string().repeat(width);
    }
    // Tail-fit: the newest `width` values, padded left when short.
    let tail: Vec<f64> = values
        .iter()
        .copied()
        .skip(values.len().saturating_sub(width))
        .collect();
    let max = tail.iter().copied().fold(0.0f64, f64::max);
    let mut out = String::with_capacity(width * 3);
    for _ in 0..width.saturating_sub(tail.len()) {
        out.push(SPARKS[0]);
    }
    for v in &tail {
        let idx = if max > 0.0 {
            (((v / max) * 7.0).round() as usize).min(7)
        } else {
            0
        };
        out.push(SPARKS[idx]);
    }
    out
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) if v >= 100.0 => format!("{v:.0}"),
        Some(v) => format!("{v:.1}"),
        None => "-".into(),
    }
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        None => "-".into(),
        Some(ns) if ns >= 1_000_000_000 => format!("{:.2}s", ns as f64 / 1e9),
        Some(ns) if ns >= 1_000_000 => format!("{:.1}ms", ns as f64 / 1e6),
        Some(ns) if ns >= 1_000 => format!("{:.1}us", ns as f64 / 1e3),
        Some(ns) => format!("{ns}ns"),
    }
}

fn values(points: &[(u64, f64)]) -> Vec<f64> {
    points.iter().map(|&(_, v)| v).collect()
}

/// Servable ids present in the store (from `servable.<id>.<field>`
/// series names; ids may themselves contain dots, so split from the
/// last separator).
fn servables_in(store: &SeriesStore) -> Vec<String> {
    let mut out = BTreeSet::new();
    for name in store.series_names() {
        if let Some(rest) = name.strip_prefix("servable.") {
            if let Some(idx) = rest.rfind('.') {
                out.insert(rest[..idx].to_string());
            }
        }
    }
    out.into_iter().collect()
}

/// Render one dashboard frame over the trailing `window`.
pub fn render_frame(
    store: &Arc<SeriesStore>,
    snapshot: &MetricsSnapshot,
    window: Duration,
) -> String {
    let mut out = String::new();
    let covered = store.base_step().as_secs_f64() * store.samples_taken() as f64;
    out.push_str(&format!(
        "dlhub top — window {}s · step {:?} · {} passes ({:.0}s covered)\n",
        window.as_secs(),
        store.base_step(),
        store.samples_taken(),
        covered,
    ));

    // Servable table: req/s, latency percentiles, errors, history.
    let servables = servables_in(store);
    if servables.is_empty() {
        out.push_str("\n  (no servable traffic sampled yet)\n");
    } else {
        out.push_str(&format!(
            "\n  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
            "SERVABLE", "REQ/S", "P50", "P99", "ERR/S", "HISTORY"
        ));
        for servable in &servables {
            let req = format!("servable.{servable}.requests");
            let lat = format!("servable.{servable}.request_latency_ns");
            let err = format!("servable.{servable}.errors");
            let hist = store.histogram_window(&lat, window);
            out.push_str(&format!(
                "  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
                servable,
                fmt_rate(store.rate(&req, window)),
                fmt_ns(hist.as_ref().and_then(|h| h.quantile(0.5))),
                fmt_ns(hist.as_ref().and_then(|h| h.quantile(0.99))),
                fmt_rate(store.rate(&err, window)),
                sparkline(&values(&store.points(&req, window)), SPARK_WIDTH),
            ));
        }
    }

    // Queue / pool pressure.
    out.push_str("\n  QUEUES\n");
    let depth = store.gauge_window("async_queue_depth", window);
    let active = store.gauge_window("async_pool_active", window);
    let wait = store.histogram_window("broker_queue_wait_ns", window);
    out.push_str(&format!(
        "  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
        "async queue depth",
        depth
            .map(|d| format!("{:.0}", d.last))
            .unwrap_or("-".into()),
        depth
            .map(|d| format!("avg {:.1}", d.avg))
            .unwrap_or("-".into()),
        depth
            .map(|d| format!("max {:.0}", d.max))
            .unwrap_or("-".into()),
        "",
        sparkline(
            &values(&store.points("async_queue_depth", window)),
            SPARK_WIDTH
        ),
    ));
    out.push_str(&format!(
        "  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
        "pool active",
        active
            .map(|d| format!("{:.0}", d.last))
            .unwrap_or("-".into()),
        active
            .map(|d| format!("avg {:.1}", d.avg))
            .unwrap_or("-".into()),
        active
            .map(|d| format!("max {:.0}", d.max))
            .unwrap_or("-".into()),
        "",
        sparkline(
            &values(&store.points("async_pool_active", window)),
            SPARK_WIDTH
        ),
    ));
    out.push_str(&format!(
        "  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
        "broker queue wait",
        wait.as_ref()
            .map(|w| format!("{}", w.count))
            .unwrap_or("-".into()),
        fmt_ns(wait.as_ref().and_then(|w| w.quantile(0.5))),
        fmt_ns(wait.as_ref().and_then(|w| w.quantile(0.99))),
        "",
        sparkline(
            &values(&store.points("broker_queue_wait_ns", window)),
            SPARK_WIDTH
        ),
    ));

    // Memo hit ratio over the window (rate-based, not lifetime).
    let hits = store.rate("memo_hits_total", window);
    let misses = store.rate("memo_misses_total", window);
    let ratio = match (hits, misses) {
        (Some(h), Some(m)) if h + m > 0.0 => Some(h / (h + m)),
        _ => None,
    };
    out.push_str(&format!(
        "\n  MEMO  hit ratio {}  hits/s {}  {}\n",
        ratio
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or("-".into()),
        fmt_rate(hits),
        sparkline(
            &values(&store.points("memo_hits_total", window)),
            SPARK_WIDTH
        ),
    ));

    // Admission: admit/shed rates so overload (and who is being
    // turned away) is visible live, with the shed history sparkline.
    let admits = store.rate("requests_admitted_total", window);
    let sheds = store.rate("requests_shed_total", window);
    if admits.is_some() || sheds.is_some() {
        out.push_str(&format!(
            "\n  ADMISSION  admit/s {}  shed/s {}  {}\n",
            fmt_rate(admits),
            fmt_rate(sheds),
            sparkline(
                &values(&store.points("requests_shed_total", window)),
                SPARK_WIDTH
            ),
        ));
    } else {
        out.push_str("\n  ADMISSION  (admission control disabled)\n");
    }

    // SLOs: live alert state plus sampled burn-rate history.
    if snapshot.slos.is_empty() {
        out.push_str("\n  SLO   (none registered)\n");
    } else {
        out.push_str("\n  SLO\n");
        for slo in &snapshot.slos {
            let burn = format!("slo.{}.burn_fast", slo.servable);
            let state = if slo.firing { "FIRING" } else { "ok" };
            let fast = slo.latency_burn_fast.max(slo.availability_burn_fast);
            out.push_str(&format!(
                "  {:<24} {:>8} {:>9} {:>9} {:>8}  {}\n",
                slo.servable,
                state,
                format!("burn {fast:.2}"),
                format!("fired {}", slo.alerts_fired),
                "",
                sparkline(&values(&store.points(&burn, window)), SPARK_WIDTH),
            ));
        }
    }
    out
}

/// ANSI prefix that repaints in place: cursor home + clear to end.
pub const REFRESH_PREFIX: &str = "\x1b[H\x1b[2J";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max_and_pads_short_series() {
        let s = sparkline(&[0.0, 5.0, 10.0], 6);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 6);
        assert_eq!(chars[0], SPARKS[0], "left padding");
        assert_eq!(chars[5], SPARKS[7], "max scales to full block");
        assert_eq!(chars[4], SPARKS[4], "half scales to middle");
        // All-zero and empty series stay at the baseline glyph.
        assert!(sparkline(&[], 4).chars().all(|c| c == SPARKS[0]));
        assert!(sparkline(&[0.0, 0.0], 4).chars().all(|c| c == SPARKS[0]));
    }

    #[test]
    fn admission_row_shows_admit_and_shed_rates() {
        use std::time::Duration;
        const S: u64 = 1_000_000_000;
        let store = Arc::new(SeriesStore::new(Duration::from_secs(1)));
        for step in 0..10u64 {
            store.record_counter("requests_admitted_total", step * S, step * 50);
            store.record_counter("requests_shed_total", step * S, step * 5);
            store.note_pass(step * S);
        }
        let frame = render_frame(&store, &MetricsSnapshot::default(), Duration::from_secs(8));
        assert!(frame.contains("ADMISSION"), "{frame}");
        assert!(frame.contains("admit/s 50.0"), "{frame}");
        assert!(frame.contains("shed/s 5.0"), "{frame}");

        // Hubs without admission control degrade gracefully.
        let empty = Arc::new(SeriesStore::new(Duration::from_secs(1)));
        let frame = render_frame(&empty, &MetricsSnapshot::default(), Duration::from_secs(8));
        assert!(frame.contains("admission control disabled"), "{frame}");
    }

    #[test]
    fn sparkline_keeps_only_the_newest_width_values() {
        let many: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&many, 8);
        assert_eq!(s.chars().count(), 8);
        // Newest values dominate: the last glyph is the max.
        assert_eq!(s.chars().last().unwrap(), SPARKS[7]);
    }
}
