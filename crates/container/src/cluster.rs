//! Cluster model: nodes, pods, deployments and the scheduler.
//!
//! Models PetrelKube (§V-A): a 14-node Kubernetes cluster onto which
//! the Parsl executor deploys "a Kubernetes Deployment consisting of
//! *n* pods for each servable that is to be executed".

use crate::image::Digest;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pod identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PodId(pub u64);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

/// Pod lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Scheduled and serving.
    Running,
    /// Deleted (scale-down, deployment removal, or node drain without
    /// capacity elsewhere).
    Terminated,
}

/// Node description: name and allocatable resources.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node name, e.g. `petrelkube-03`.
    pub name: String,
    /// Allocatable CPU in millicores.
    pub cpu_millis: u64,
    /// Allocatable memory in MiB.
    pub memory_mib: u64,
}

impl NodeSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpu_millis: u64, memory_mib: u64) -> Self {
        NodeSpec {
            name: name.into(),
            cpu_millis,
            memory_mib,
        }
    }
}

/// Pod resource request plus the image it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSpec {
    /// Image digest the pod runs.
    pub image: Digest,
    /// CPU request in millicores.
    pub cpu_millis: u64,
    /// Memory request in MiB.
    pub memory_mib: u64,
}

/// A placed pod.
#[derive(Debug, Clone, PartialEq)]
pub struct Pod {
    /// Pod id.
    pub id: PodId,
    /// Deployment this pod belongs to.
    pub deployment: String,
    /// Node the pod is placed on.
    pub node: String,
    /// Spec used at placement.
    pub spec: PodSpec,
    /// Current phase.
    pub phase: PodPhase,
}

/// A deployment: a desired replica count of one pod spec.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Deployment name (DLHub uses the servable identifier).
    pub name: String,
    /// Desired replicas.
    pub replicas: usize,
    /// Pod template.
    pub template: PodSpec,
}

/// Cluster errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Not enough free resources anywhere for a pod.
    Unschedulable {
        /// Deployment that could not grow.
        deployment: String,
    },
    /// Unknown deployment name.
    NoSuchDeployment(String),
    /// Deployment with this name already exists.
    DeploymentExists(String),
    /// Unknown node name.
    NoSuchNode(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Unschedulable { deployment } => {
                write!(f, "no node can fit a pod of deployment {deployment}")
            }
            ClusterError::NoSuchDeployment(d) => write!(f, "no such deployment: {d}"),
            ClusterError::DeploymentExists(d) => write!(f, "deployment exists: {d}"),
            ClusterError::NoSuchNode(n) => write!(f, "no such node: {n}"),
        }
    }
}

impl std::error::Error for ClusterError {}

struct NodeState {
    spec: NodeSpec,
    used_cpu: u64,
    used_mem: u64,
    cordoned: bool,
}

impl NodeState {
    fn fits(&self, spec: &PodSpec) -> bool {
        !self.cordoned
            && self.used_cpu + spec.cpu_millis <= self.spec.cpu_millis
            && self.used_mem + spec.memory_mib <= self.spec.memory_mib
    }
    /// Free CPU after current usage; scheduler places on the node with
    /// the most headroom (least-loaded spreading, like the default
    /// kube-scheduler's LeastAllocated scoring).
    fn headroom(&self) -> u64 {
        self.spec.cpu_millis - self.used_cpu
    }
}

#[derive(Default)]
struct State {
    nodes: Vec<NodeState>,
    deployments: HashMap<String, Deployment>,
    pods: HashMap<PodId, Pod>,
}

/// A Kubernetes-like cluster with a least-loaded scheduler. Cheap to
/// clone.
#[derive(Clone)]
pub struct Cluster {
    state: Arc<RwLock<State>>,
}

static NEXT_POD: AtomicU64 = AtomicU64::new(1);

impl Cluster {
    /// Create a cluster from node specs.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        Cluster {
            state: Arc::new(RwLock::new(State {
                nodes: nodes
                    .into_iter()
                    .map(|spec| NodeState {
                        spec,
                        used_cpu: 0,
                        used_mem: 0,
                        cordoned: false,
                    })
                    .collect(),
                deployments: HashMap::new(),
                pods: HashMap::new(),
            })),
        }
    }

    /// PetrelKube as described in §V-A: 14 nodes, two E5-2670 CPUs
    /// (16 cores / 32 threads ≈ 32000 millicores) and 128 GiB RAM each.
    pub fn petrelkube() -> Self {
        Cluster::new(
            (0..14)
                .map(|i| NodeSpec::new(format!("petrelkube-{i:02}"), 32_000, 128 * 1024))
                .collect(),
        )
    }

    /// Create a deployment and schedule its replicas.
    pub fn create_deployment(
        &self,
        name: &str,
        template: PodSpec,
        replicas: usize,
    ) -> Result<Vec<PodId>, ClusterError> {
        {
            let mut st = self.state.write();
            if st.deployments.contains_key(name) {
                return Err(ClusterError::DeploymentExists(name.to_string()));
            }
            st.deployments.insert(
                name.to_string(),
                Deployment {
                    name: name.to_string(),
                    replicas: 0,
                    template,
                },
            );
        }
        self.scale(name, replicas)
    }

    /// Scale a deployment to `replicas`, creating or terminating pods.
    /// Returns ids of pods created by this call (empty on scale-down).
    pub fn scale(&self, name: &str, replicas: usize) -> Result<Vec<PodId>, ClusterError> {
        let mut st = self.state.write();
        let deployment = st
            .deployments
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::NoSuchDeployment(name.to_string()))?;
        let current: Vec<PodId> = st
            .pods
            .values()
            .filter(|p| p.deployment == name && p.phase == PodPhase::Running)
            .map(|p| p.id)
            .collect();
        let mut created = Vec::new();
        if replicas > current.len() {
            for _ in current.len()..replicas {
                let id = Self::place(&mut st, name, &deployment.template)?;
                created.push(id);
            }
        } else {
            // Terminate the newest pods first (mirrors ReplicaSet
            // behaviour closely enough).
            let mut ordered = current;
            ordered.sort();
            for id in ordered.into_iter().skip(replicas) {
                Self::terminate(&mut st, id);
            }
        }
        if let Some(d) = st.deployments.get_mut(name) {
            d.replicas = replicas;
        }
        Ok(created)
    }

    fn place(st: &mut State, deployment: &str, spec: &PodSpec) -> Result<PodId, ClusterError> {
        let node_idx = st
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.fits(spec))
            .max_by_key(|(_, n)| n.headroom())
            .map(|(i, _)| i)
            .ok_or_else(|| ClusterError::Unschedulable {
                deployment: deployment.to_string(),
            })?;
        let node = &mut st.nodes[node_idx];
        node.used_cpu += spec.cpu_millis;
        node.used_mem += spec.memory_mib;
        let id = PodId(NEXT_POD.fetch_add(1, Ordering::Relaxed));
        st.pods.insert(
            id,
            Pod {
                id,
                deployment: deployment.to_string(),
                node: node.spec.name.clone(),
                spec: spec.clone(),
                phase: PodPhase::Running,
            },
        );
        Ok(id)
    }

    fn terminate(st: &mut State, id: PodId) {
        if let Some(pod) = st.pods.get_mut(&id) {
            if pod.phase == PodPhase::Running {
                pod.phase = PodPhase::Terminated;
                let node_name = pod.node.clone();
                let spec = pod.spec.clone();
                if let Some(node) = st.nodes.iter_mut().find(|n| n.spec.name == node_name) {
                    node.used_cpu -= spec.cpu_millis;
                    node.used_mem -= spec.memory_mib;
                }
            }
        }
    }

    /// Delete a deployment and all its pods.
    pub fn delete_deployment(&self, name: &str) -> Result<(), ClusterError> {
        let mut st = self.state.write();
        if st.deployments.remove(name).is_none() {
            return Err(ClusterError::NoSuchDeployment(name.to_string()));
        }
        let ids: Vec<PodId> = st
            .pods
            .values()
            .filter(|p| p.deployment == name)
            .map(|p| p.id)
            .collect();
        for id in ids {
            Self::terminate(&mut st, id);
        }
        Ok(())
    }

    /// Cordon and drain a node: its pods are rescheduled elsewhere
    /// (deployment self-healing). Pods that do not fit anywhere stay
    /// terminated and the error is returned, but all reschedulable
    /// pods are still moved.
    pub fn drain_node(&self, node: &str) -> Result<(), ClusterError> {
        let mut st = self.state.write();
        if !st.nodes.iter().any(|n| n.spec.name == node) {
            return Err(ClusterError::NoSuchNode(node.to_string()));
        }
        if let Some(n) = st.nodes.iter_mut().find(|n| n.spec.name == node) {
            n.cordoned = true;
        }
        let victims: Vec<(PodId, String, PodSpec)> = st
            .pods
            .values()
            .filter(|p| p.node == node && p.phase == PodPhase::Running)
            .map(|p| (p.id, p.deployment.clone(), p.spec.clone()))
            .collect();
        let mut first_err = None;
        for (id, deployment, spec) in victims {
            Self::terminate(&mut st, id);
            if let Err(e) = Self::place(&mut st, &deployment, &spec) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Running pods of one deployment, ordered by pod id (stable
    /// round-robin order for the executor's load balancer).
    pub fn running_pods(&self, deployment: &str) -> Vec<Pod> {
        let st = self.state.read();
        let mut pods: Vec<Pod> = st
            .pods
            .values()
            .filter(|p| p.deployment == deployment && p.phase == PodPhase::Running)
            .cloned()
            .collect();
        pods.sort_by_key(|p| p.id);
        pods
    }

    /// All running pods on one node.
    pub fn pods_on_node(&self, node: &str) -> Vec<Pod> {
        let st = self.state.read();
        let mut pods: Vec<Pod> = st
            .pods
            .values()
            .filter(|p| p.node == node && p.phase == PodPhase::Running)
            .cloned()
            .collect();
        pods.sort_by_key(|p| p.id);
        pods
    }

    /// `(used_cpu, total_cpu)` across non-cordoned nodes.
    pub fn cpu_utilization(&self) -> (u64, u64) {
        let st = self.state.read();
        st.nodes
            .iter()
            .filter(|n| !n.cordoned)
            .fold((0, 0), |(u, t), n| (u + n.used_cpu, t + n.spec.cpu_millis))
    }

    /// Node names.
    pub fn nodes(&self) -> Vec<String> {
        self.state
            .read()
            .nodes
            .iter()
            .map(|n| n.spec.name.clone())
            .collect()
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("Cluster")
            .field("nodes", &st.nodes.len())
            .field("deployments", &st.deployments.len())
            .field(
                "running_pods",
                &st.pods
                    .values()
                    .filter(|p| p.phase == PodPhase::Running)
                    .count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PodSpec {
        PodSpec {
            image: Digest(1, 1),
            cpu_millis: 1000,
            memory_mib: 1024,
        }
    }

    fn small_cluster() -> Cluster {
        Cluster::new(vec![
            NodeSpec::new("n0", 4000, 8192),
            NodeSpec::new("n1", 4000, 8192),
        ])
    }

    #[test]
    fn deployment_schedules_replicas_spread() {
        let c = small_cluster();
        c.create_deployment("svc", spec(), 4).unwrap();
        let pods = c.running_pods("svc");
        assert_eq!(pods.len(), 4);
        // Least-loaded spreading: 2 per node.
        assert_eq!(c.pods_on_node("n0").len(), 2);
        assert_eq!(c.pods_on_node("n1").len(), 2);
    }

    #[test]
    fn duplicate_deployment_rejected() {
        let c = small_cluster();
        c.create_deployment("svc", spec(), 1).unwrap();
        assert!(matches!(
            c.create_deployment("svc", spec(), 1),
            Err(ClusterError::DeploymentExists(_))
        ));
    }

    #[test]
    fn scale_up_and_down() {
        let c = small_cluster();
        c.create_deployment("svc", spec(), 2).unwrap();
        let created = c.scale("svc", 5).unwrap();
        assert_eq!(created.len(), 3);
        assert_eq!(c.running_pods("svc").len(), 5);
        c.scale("svc", 1).unwrap();
        assert_eq!(c.running_pods("svc").len(), 1);
        let (used, _) = c.cpu_utilization();
        assert_eq!(used, 1000);
    }

    #[test]
    fn unschedulable_when_full() {
        let c = small_cluster();
        // Capacity is 8 pods of 1000 mc.
        c.create_deployment("svc", spec(), 8).unwrap();
        let err = c.scale("svc", 9).unwrap_err();
        assert!(matches!(err, ClusterError::Unschedulable { .. }));
        // The 8 running pods are unaffected.
        assert_eq!(c.running_pods("svc").len(), 8);
    }

    #[test]
    fn memory_constraint_also_binds() {
        let c = Cluster::new(vec![NodeSpec::new("n0", 64_000, 2048)]);
        let big_mem = PodSpec {
            image: Digest(0, 0),
            cpu_millis: 100,
            memory_mib: 1024,
        };
        c.create_deployment("svc", big_mem, 2).unwrap();
        assert!(c.scale("svc", 3).is_err());
    }

    #[test]
    fn delete_deployment_frees_resources() {
        let c = small_cluster();
        c.create_deployment("svc", spec(), 4).unwrap();
        c.delete_deployment("svc").unwrap();
        assert!(c.running_pods("svc").is_empty());
        assert_eq!(c.cpu_utilization().0, 0);
        assert!(matches!(
            c.delete_deployment("svc"),
            Err(ClusterError::NoSuchDeployment(_))
        ));
    }

    #[test]
    fn drain_reschedules_pods() {
        let c = small_cluster();
        c.create_deployment("svc", spec(), 4).unwrap();
        c.drain_node("n0").unwrap();
        assert_eq!(c.running_pods("svc").len(), 4);
        assert!(c.pods_on_node("n0").is_empty());
        assert_eq!(c.pods_on_node("n1").len(), 4);
        // Cordoned node is excluded from future scheduling.
        c.scale("svc", 5).unwrap_err(); // n1 only fits 4 pods
    }

    #[test]
    fn drain_unknown_node_errors() {
        let c = small_cluster();
        assert!(matches!(
            c.drain_node("ghost"),
            Err(ClusterError::NoSuchNode(_))
        ));
    }

    #[test]
    fn petrelkube_has_14_nodes() {
        let c = Cluster::petrelkube();
        assert_eq!(c.nodes().len(), 14);
        let (_, total) = c.cpu_utilization();
        assert_eq!(total, 14 * 32_000);
    }

    #[test]
    fn running_pods_order_is_stable() {
        let c = small_cluster();
        let created = c.create_deployment("svc", spec(), 3).unwrap();
        let listed: Vec<PodId> = c.running_pods("svc").iter().map(|p| p.id).collect();
        assert_eq!(created, listed);
    }
}
