//! HPC substrate: Singularity images and a Slurm-like batch scheduler.
//!
//! DLHub's Task Manager "can be deployed in Docker environments,
//! Kubernetes clusters, and HPC resources via Singularity" (§IV-B),
//! and the Parsl execution engine targets "cluster, cloud, and
//! supercomputer platforms" (§IV-C). Supercomputers do not run pods:
//! they run batch jobs under a scheduler. This module provides both
//! pieces:
//!
//! * [`singularity_build`] — convert a layered Docker-style [`Image`]
//!   into a flat, content-addressed SIF artifact (unprivileged
//!   runtime, which is exactly why HPC sites allow Singularity where
//!   they refuse Docker).
//! * [`BatchScheduler`] — partitions of nodes, FIFO scheduling with
//!   **conservative backfill** (a shorter job may jump the queue only
//!   if it cannot delay the reserved start of the queue head), job
//!   lifecycle on a virtual clock, `squeue`/`scancel` equivalents.

use crate::image::{Digest, Image};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A flattened Singularity image built from a layered Docker image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SifImage {
    /// Content digest (derived from the source image's digest).
    pub digest: Digest,
    /// Squashed size: the sum of all source layers.
    pub size: u64,
    /// Entrypoint carried over from the source image.
    pub entrypoint: String,
}

/// `singularity build image.sif docker://…` — squash the layers into
/// one read-only artifact. Deterministic: the SIF digest is a pure
/// function of the Docker image digest.
pub fn singularity_build(image: &Image) -> SifImage {
    SifImage {
        digest: image.digest.chain(b"sif"),
        size: image.size(),
        entrypoint: image.entrypoint.clone(),
    }
}

/// Batch job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for nodes.
    Pending,
    /// Allocated and executing.
    Running,
    /// Ran to its walltime.
    Completed,
    /// Removed by `scancel` before completion.
    Cancelled,
}

/// A batch job request (`sbatch`): node count, walltime in virtual
/// seconds, and the SIF artifact it runs.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Job name.
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Requested walltime (virtual seconds).
    pub walltime_s: u64,
    /// Container artifact the job runs (e.g. a DLHub Task Manager).
    pub sif: Digest,
}

#[derive(Debug, Clone)]
struct Job {
    request: JobRequest,
    state: JobState,
    submitted_at: u64,
    started_at: Option<u64>,
    finished_at: Option<u64>,
}

/// One line of `squeue` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Job id.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Nodes requested.
    pub nodes: usize,
}

struct State {
    total_nodes: usize,
    free_nodes: usize,
    now: u64,
    jobs: BTreeMap<JobId, Job>,
}

/// Scheduler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpcError {
    /// More nodes requested than the partition owns.
    TooLarge {
        /// Nodes requested.
        requested: usize,
        /// Partition size.
        partition: usize,
    },
    /// Unknown job id.
    NoSuchJob(JobId),
    /// Zero nodes or zero walltime.
    InvalidRequest(String),
}

impl fmt::Display for HpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpcError::TooLarge {
                requested,
                partition,
            } => write!(f, "job wants {requested} nodes, partition has {partition}"),
            HpcError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            HpcError::InvalidRequest(m) => write!(f, "invalid job request: {m}"),
        }
    }
}

impl std::error::Error for HpcError {}

/// A single-partition Slurm-like scheduler on a virtual clock.
#[derive(Clone)]
pub struct BatchScheduler {
    state: Arc<Mutex<State>>,
}

static NEXT_JOB: AtomicU64 = AtomicU64::new(1);

impl BatchScheduler {
    /// Create a scheduler over `nodes` identical nodes.
    pub fn new(nodes: usize) -> Self {
        BatchScheduler {
            state: Arc::new(Mutex::new(State {
                total_nodes: nodes.max(1),
                free_nodes: nodes.max(1),
                now: 0,
                jobs: BTreeMap::new(),
            })),
        }
    }

    /// `sbatch`: enqueue a job; scheduling happens immediately and on
    /// every clock advance.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, HpcError> {
        if request.nodes == 0 || request.walltime_s == 0 {
            return Err(HpcError::InvalidRequest(
                "nodes and walltime must be positive".into(),
            ));
        }
        let mut st = self.state.lock();
        if request.nodes > st.total_nodes {
            return Err(HpcError::TooLarge {
                requested: request.nodes,
                partition: st.total_nodes,
            });
        }
        let id = JobId(NEXT_JOB.fetch_add(1, Ordering::Relaxed));
        let now = st.now;
        st.jobs.insert(
            id,
            Job {
                request,
                state: JobState::Pending,
                submitted_at: now,
                started_at: None,
                finished_at: None,
            },
        );
        Self::schedule(&mut st);
        Ok(id)
    }

    /// `scancel`: cancel a pending or running job.
    pub fn cancel(&self, id: JobId) -> Result<(), HpcError> {
        let mut st = self.state.lock();
        let now = st.now;
        let job = st.jobs.get_mut(&id).ok_or(HpcError::NoSuchJob(id))?;
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                job.finished_at = Some(now);
            }
            JobState::Running => {
                job.state = JobState::Cancelled;
                job.finished_at = Some(now);
                let nodes = job.request.nodes;
                st.free_nodes += nodes;
            }
            _ => {}
        }
        Self::schedule(&mut st);
        Ok(())
    }

    /// Advance the virtual clock by `seconds`: completes jobs whose
    /// walltime elapses and schedules newly fitting work.
    pub fn advance(&self, seconds: u64) {
        let mut st = self.state.lock();
        let target = st.now + seconds;
        // Step through completion instants so freed nodes are reused
        // at the right virtual time.
        loop {
            let next_completion = st
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .map(|j| j.started_at.expect("running has start") + j.request.walltime_s)
                .filter(|t| *t <= target)
                .min();
            match next_completion {
                Some(t) => {
                    st.now = t;
                    let finished: Vec<JobId> = st
                        .jobs
                        .iter()
                        .filter(|(_, j)| {
                            j.state == JobState::Running
                                && j.started_at.expect("running") + j.request.walltime_s <= t
                        })
                        .map(|(id, _)| *id)
                        .collect();
                    for id in finished {
                        let job = st.jobs.get_mut(&id).expect("listed above");
                        job.state = JobState::Completed;
                        job.finished_at = Some(t);
                        let nodes = job.request.nodes;
                        st.free_nodes += nodes;
                    }
                    Self::schedule(&mut st);
                }
                None => break,
            }
        }
        st.now = target;
        Self::schedule(&mut st);
    }

    /// FIFO with conservative backfill. The queue head gets a node
    /// reservation at the earliest instant enough nodes free up; a
    /// later pending job may start now only if it fits in the free
    /// nodes *and* finishes before that reservation (or needs few
    /// enough nodes not to touch it).
    fn schedule(st: &mut State) {
        loop {
            let pending: Vec<JobId> = st
                .jobs
                .iter()
                .filter(|(_, j)| j.state == JobState::Pending)
                .map(|(id, _)| *id)
                .collect();
            let Some(&head) = pending.first() else { return };
            let head_nodes = st.jobs[&head].request.nodes;
            if head_nodes <= st.free_nodes {
                let now = st.now;
                let job = st.jobs.get_mut(&head).expect("pending job");
                job.state = JobState::Running;
                job.started_at = Some(now);
                st.free_nodes -= head_nodes;
                continue; // try the next head
            }
            // Head cannot start: compute its reservation.
            let reservation = Self::head_reservation(st, head_nodes);
            // Backfill the rest.
            let mut started_any = false;
            for id in pending.into_iter().skip(1) {
                let request = st.jobs[&id].request.clone();
                if request.nodes > st.free_nodes {
                    continue;
                }
                let finishes = st.now + request.walltime_s;
                // Conservative: backfill only if the job ends by the
                // head's reserved start (it can then never delay it).
                if finishes <= reservation {
                    let now = st.now;
                    let job = st.jobs.get_mut(&id).expect("pending job");
                    job.state = JobState::Running;
                    job.started_at = Some(now);
                    st.free_nodes -= request.nodes;
                    started_any = true;
                }
            }
            if !started_any {
                return;
            }
            // Backfilled jobs consumed nodes; the head still cannot
            // start (backfill never frees nodes), so stop.
            return;
        }
    }

    /// Earliest virtual time at which `needed` nodes will be free,
    /// assuming running jobs run to their walltime.
    fn head_reservation(st: &State, needed: usize) -> u64 {
        let mut completions: Vec<(u64, usize)> = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.started_at.expect("running") + j.request.walltime_s,
                    j.request.nodes,
                )
            })
            .collect();
        completions.sort();
        let mut free = st.free_nodes;
        for (t, nodes) in completions {
            free += nodes;
            if free >= needed {
                return t;
            }
        }
        u64::MAX // cannot ever fit (prevented at submit)
    }

    /// `squeue`: jobs in submission order, terminal jobs included.
    pub fn queue(&self) -> Vec<QueueEntry> {
        self.state
            .lock()
            .jobs
            .iter()
            .map(|(id, j)| QueueEntry {
                id: *id,
                name: j.request.name.clone(),
                state: j.state,
                nodes: j.request.nodes,
            })
            .collect()
    }

    /// State of one job.
    pub fn job_state(&self, id: JobId) -> Result<JobState, HpcError> {
        self.state
            .lock()
            .jobs
            .get(&id)
            .map(|j| j.state)
            .ok_or(HpcError::NoSuchJob(id))
    }

    /// `(started_at, finished_at)` virtual timestamps of a job.
    pub fn job_times(&self, id: JobId) -> Result<(Option<u64>, Option<u64>), HpcError> {
        self.state
            .lock()
            .jobs
            .get(&id)
            .map(|j| (j.started_at, j.finished_at))
            .ok_or(HpcError::NoSuchJob(id))
    }

    /// Free nodes right now.
    pub fn free_nodes(&self) -> usize {
        self.state.lock().free_nodes
    }

    /// Current virtual time (seconds).
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Waiting time of a job so far (diagnostics); `None` once it has
    /// started.
    pub fn queue_wait(&self, id: JobId) -> Result<Option<u64>, HpcError> {
        let st = self.state.lock();
        let job = st.jobs.get(&id).ok_or(HpcError::NoSuchJob(id))?;
        Ok(match job.started_at {
            Some(_) => None,
            None => Some(st.now - job.submitted_at),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use crate::recipe::Recipe;

    fn sif() -> SifImage {
        let mut recipe = Recipe::from_base("python:3.7");
        recipe.entrypoint("dlhub-task-manager");
        singularity_build(&ImageBuilder::new().build(&recipe))
    }

    fn job(name: &str, nodes: usize, walltime_s: u64) -> JobRequest {
        JobRequest {
            name: name.into(),
            nodes,
            walltime_s,
            sif: sif().digest,
        }
    }

    #[test]
    fn singularity_build_is_deterministic_and_squashed() {
        let mut recipe = Recipe::from_base("python:3.7");
        recipe.entrypoint("tm");
        let image = ImageBuilder::new().build(&recipe);
        let a = singularity_build(&image);
        let b = singularity_build(&image);
        assert_eq!(a, b);
        assert_eq!(a.size, image.size());
        assert_ne!(a.digest, image.digest);
        assert_eq!(a.entrypoint, "tm");
    }

    #[test]
    fn fifo_start_and_completion() {
        let sched = BatchScheduler::new(4);
        let a = sched.submit(job("a", 4, 100)).unwrap();
        let b = sched.submit(job("b", 4, 50)).unwrap();
        assert_eq!(sched.job_state(a).unwrap(), JobState::Running);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Pending);
        sched.advance(100);
        assert_eq!(sched.job_state(a).unwrap(), JobState::Completed);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Running);
        sched.advance(49);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Running);
        sched.advance(1);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Completed);
        // b started exactly when a finished.
        assert_eq!(sched.job_times(b).unwrap().0, Some(100));
    }

    #[test]
    fn conservative_backfill_fills_holes_without_delaying_head() {
        let sched = BatchScheduler::new(4);
        // a: 2 nodes for 100s (running). head-of-queue c wants 4 nodes
        // => reserved at t=100. b wants 2 nodes for 60s: fits in the
        // hole and ends at 60 <= 100, so it backfills.
        let a = sched.submit(job("a", 2, 100)).unwrap();
        let c = sched.submit(job("c", 4, 10)).unwrap();
        let b = sched.submit(job("b", 2, 60)).unwrap();
        assert_eq!(sched.job_state(a).unwrap(), JobState::Running);
        assert_eq!(sched.job_state(c).unwrap(), JobState::Pending);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Running, "backfilled");
        // A long job must NOT backfill: d (2 nodes, 200s) would block
        // the head's reservation.
        let d = sched.submit(job("d", 2, 200)).unwrap();
        assert_eq!(sched.job_state(d).unwrap(), JobState::Pending);
        // Head starts exactly at its reservation.
        sched.advance(100);
        assert_eq!(sched.job_state(c).unwrap(), JobState::Running);
        assert_eq!(sched.job_times(c).unwrap().0, Some(100));
    }

    #[test]
    fn cancel_frees_nodes_and_unblocks_queue() {
        let sched = BatchScheduler::new(2);
        let a = sched.submit(job("a", 2, 1000)).unwrap();
        let b = sched.submit(job("b", 2, 10)).unwrap();
        assert_eq!(sched.job_state(b).unwrap(), JobState::Pending);
        sched.cancel(a).unwrap();
        assert_eq!(sched.job_state(a).unwrap(), JobState::Cancelled);
        assert_eq!(sched.job_state(b).unwrap(), JobState::Running);
        // Cancelling a pending job is also fine.
        let c = sched.submit(job("c", 2, 10)).unwrap();
        sched.cancel(c).unwrap();
        assert_eq!(sched.job_state(c).unwrap(), JobState::Cancelled);
    }

    #[test]
    fn oversized_and_invalid_jobs_rejected() {
        let sched = BatchScheduler::new(4);
        assert!(matches!(
            sched.submit(job("big", 5, 10)),
            Err(HpcError::TooLarge { .. })
        ));
        assert!(matches!(
            sched.submit(job("zero", 0, 10)),
            Err(HpcError::InvalidRequest(_))
        ));
        assert!(matches!(
            sched.submit(job("notime", 1, 0)),
            Err(HpcError::InvalidRequest(_))
        ));
        assert!(matches!(
            sched.cancel(JobId(9999)),
            Err(HpcError::NoSuchJob(_))
        ));
    }

    #[test]
    fn queue_reports_states_and_wait_times() {
        let sched = BatchScheduler::new(1);
        let a = sched.submit(job("a", 1, 50)).unwrap();
        let b = sched.submit(job("b", 1, 50)).unwrap();
        let q = sched.queue();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].state, JobState::Running);
        assert_eq!(q[1].state, JobState::Pending);
        sched.advance(30);
        assert_eq!(sched.queue_wait(b).unwrap(), Some(30));
        assert_eq!(sched.queue_wait(a).unwrap(), None);
        sched.advance(20);
        assert_eq!(sched.job_state(a).unwrap(), JobState::Completed);
    }

    #[test]
    fn node_accounting_is_exact_through_churn() {
        let sched = BatchScheduler::new(8);
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(
                sched
                    .submit(job(&format!("j{i}"), 1 + i % 3, 10 + i as u64))
                    .unwrap(),
            );
        }
        sched.advance(5);
        sched.cancel(ids[1]).unwrap();
        sched.advance(100);
        // Everything terminal; all nodes free again.
        assert_eq!(sched.free_nodes(), 8);
        for id in ids {
            let s = sched.job_state(id).unwrap();
            assert!(matches!(s, JobState::Completed | JobState::Cancelled));
        }
    }

    #[test]
    fn task_manager_deployment_via_singularity_scenario() {
        // The §IV-B scenario: build the TM container, convert to SIF,
        // run it as a batch job on an HPC partition.
        let sif_image = sif();
        let sched = BatchScheduler::new(16);
        let tm_job = sched
            .submit(JobRequest {
                name: "dlhub-task-manager".into(),
                nodes: 2,
                walltime_s: 3600,
                sif: sif_image.digest,
            })
            .unwrap();
        assert_eq!(sched.job_state(tm_job).unwrap(), JobState::Running);
        assert_eq!(sched.free_nodes(), 14);
    }
}
