//! Content-addressed, layered images with a build cache.

use crate::recipe::Recipe;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A 128-bit content digest (FNV-1a over two seeds; stable across
/// processes, adequate for content addressing in a simulation — we do
/// not defend against adversarial collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// Hash raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Digest(
            fnv1a(bytes, 0xcbf2_9ce4_8422_2325),
            fnv1a(bytes, 0x8422_2325_cbf2_9ce4),
        )
    }

    /// Chain this digest with more bytes (layer stacking).
    pub fn chain(&self, bytes: &[u8]) -> Self {
        let mut buf = Vec::with_capacity(16 + bytes.len());
        buf.extend_from_slice(&self.0.to_le_bytes());
        buf.extend_from_slice(&self.1.to_le_bytes());
        buf.extend_from_slice(bytes);
        Digest::of_bytes(&buf)
    }
}

fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha-sim:{:016x}{:016x}", self.0, self.1)
    }
}

/// One image layer: a named build step plus its content digest and
/// (simulated) size in bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable step, e.g. `pip install keras==2.2.4`.
    pub step: String,
    /// Digest of this layer's content.
    pub digest: Digest,
    /// Content size in bytes.
    pub size: u64,
}

/// A built image: ordered layers and the overall digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Digest identifying the image (chained layer digests).
    pub digest: Digest,
    /// Ordered layers, base first.
    pub layers: Arc<Vec<Layer>>,
    /// Entrypoint copied from the recipe.
    pub entrypoint: String,
}

impl Image {
    /// Total simulated size of all layers.
    pub fn size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }
}

/// Builds images from recipes with a content-addressed layer cache:
/// identical steps (base, each dependency, each file) are built once
/// and shared between images.
#[derive(Default)]
pub struct ImageBuilder {
    layer_cache: HashMap<Digest, Layer>,
    /// Counts cache hits/misses for ablation benches.
    pub cache_hits: u64,
    /// Layers actually built.
    pub cache_misses: u64,
}

impl ImageBuilder {
    /// Create a builder with an empty cache.
    pub fn new() -> Self {
        ImageBuilder::default()
    }

    /// Build an image from a recipe. Deterministic: the same recipe
    /// always yields the same digest.
    pub fn build(&mut self, recipe: &Recipe) -> Image {
        let mut layers = Vec::new();
        let mut digest = Digest::of_bytes(recipe.base.as_bytes());
        layers.push(self.layer(
            format!("FROM {}", recipe.base),
            recipe.base.as_bytes(),
            // Base images are big; model a few hundred MB.
            200 * 1024 * 1024,
        ));
        for (name, version) in &recipe.dependencies {
            let step = format!("pip install {name}=={version}");
            digest = digest.chain(step.as_bytes());
            // Package sizes modeled as proportional to name length —
            // arbitrary but deterministic.
            let size = 1024 * 1024 * (1 + name.len() as u64);
            layers.push(self.layer(step.clone(), step.as_bytes(), size));
        }
        for (path, content) in &recipe.files {
            digest = digest.chain(path.as_bytes()).chain(content);
            layers.push(self.layer(format!("COPY {path}"), content, content.len() as u64));
        }
        digest = digest.chain(recipe.entrypoint.as_bytes());
        Image {
            digest,
            layers: Arc::new(layers),
            entrypoint: recipe.entrypoint.clone(),
        }
    }

    fn layer(&mut self, step: String, content: &[u8], size: u64) -> Layer {
        let digest = Digest::of_bytes(content);
        if let Some(cached) = self.layer_cache.get(&digest) {
            self.cache_hits += 1;
            return cached.clone();
        }
        self.cache_misses += 1;
        let layer = Layer { step, digest, size };
        self.layer_cache.insert(digest, layer.clone());
        layer
    }
}

impl fmt::Debug for ImageBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImageBuilder")
            .field("cached_layers", &self.layer_cache.len())
            .field("cache_hits", &self.cache_hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Dependency;

    fn recipe() -> Recipe {
        let mut r = Recipe::from_base("python:3.7");
        r.add_dependency(Dependency::new("keras", "2.2.4")).unwrap();
        r.add_file("weights.h5", vec![9; 100]);
        r.entrypoint("dlhub-shim");
        r
    }

    #[test]
    fn build_is_deterministic() {
        let mut b1 = ImageBuilder::new();
        let mut b2 = ImageBuilder::new();
        assert_eq!(b1.build(&recipe()).digest, b2.build(&recipe()).digest);
    }

    #[test]
    fn digest_changes_with_content() {
        let mut b = ImageBuilder::new();
        let base = b.build(&recipe());
        let mut r2 = recipe();
        r2.add_file("weights.h5", vec![8; 100]);
        assert_ne!(b.build(&r2).digest, base.digest);
        let mut r3 = recipe();
        r3.entrypoint("other");
        assert_ne!(b.build(&r3).digest, base.digest);
    }

    #[test]
    fn layer_cache_shares_common_layers() {
        let mut b = ImageBuilder::new();
        b.build(&recipe());
        let misses_first = b.cache_misses;
        // Second build of an identical recipe: all layers cached.
        b.build(&recipe());
        assert_eq!(b.cache_misses, misses_first);
        assert!(b.cache_hits >= 3);
        // A different recipe sharing the base+dep layers only misses on
        // the new file layer.
        let mut r2 = recipe();
        r2.add_file("extra.json", vec![1]);
        b.build(&r2);
        assert_eq!(b.cache_misses, misses_first + 1);
    }

    #[test]
    fn image_size_sums_layers() {
        let mut b = ImageBuilder::new();
        let img = b.build(&recipe());
        assert_eq!(img.size(), img.layers.iter().map(|l| l.size).sum::<u64>());
        assert!(img.size() > 200 * 1024 * 1024);
    }

    #[test]
    fn digest_display_format() {
        let d = Digest(1, 2);
        assert_eq!(d.to_string(), "sha-sim:00000000000000010000000000000002");
    }
}
