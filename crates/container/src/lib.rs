#![warn(missing_docs)]

//! # dlhub-container
//!
//! A Docker/Kubernetes-like substrate: image builds, a registry, and a
//! cluster model with a replica scheduler.
//!
//! DLHub (§IV-A) "combines DLHub-specific dependencies with
//! user-supplied model dependencies into a Dockerfile … uses the
//! Dockerfile to create a Docker container with the uploaded model
//! components and all required dependencies … uploads the container to
//! the DLHub model repository". At serving time the Parsl executor
//! "creates a Kubernetes Deployment consisting of *n* pods for each
//! servable" on PetrelKube, a 14-node cluster (§V-A).
//!
//! This crate rebuilds those pieces natively and deterministically:
//!
//! * [`Recipe`] — a Dockerfile analogue: base image, merged dependency
//!   set (with version-conflict detection), copied model components,
//!   entrypoint.
//! * [`ImageBuilder`] — produces content-addressed, layered [`Image`]s
//!   with a build cache, so rebuilding an unchanged recipe is free and
//!   identical recipes share layers (reproducibility, §II).
//! * [`Registry`] — push/pull by `name:tag`, resolving to digests.
//! * [`Cluster`] — nodes with CPU/memory capacity, a least-loaded
//!   bin-packing scheduler, [`Deployment`]s with `n` replicas, pod
//!   lifecycle, and node-drain rescheduling.

pub mod cluster;
pub mod hpc;
pub mod image;
pub mod recipe;
pub mod registry;

pub use cluster::{Cluster, ClusterError, Deployment, NodeSpec, Pod, PodId, PodPhase, PodSpec};
pub use hpc::{singularity_build, BatchScheduler, JobId, JobRequest, JobState, SifImage};
pub use image::{Digest, Image, ImageBuilder, Layer};
pub use recipe::{Dependency, Recipe, RecipeError};
pub use registry::{Registry, RegistryError};
