//! Build recipes: the Dockerfile analogue.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A versioned package dependency (`keras==2.2.4` style).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dependency {
    /// Package name.
    pub name: String,
    /// Exact version pin.
    pub version: String,
}

impl Dependency {
    /// Construct a pinned dependency.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        Dependency {
            name: name.into(),
            version: version.into(),
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=={}", self.name, self.version)
    }
}

/// Errors raised while assembling a recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecipeError {
    /// The same package is pinned at two different versions — the
    /// conflict DLHub must detect when merging its own dependencies
    /// with user-supplied ones.
    VersionConflict {
        /// Conflicting package name.
        package: String,
        /// Version already pinned.
        existing: String,
        /// Version being added.
        requested: String,
    },
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::VersionConflict {
                package,
                existing,
                requested,
            } => write!(
                f,
                "dependency conflict on {package}: {existing} vs {requested}"
            ),
        }
    }
}

impl std::error::Error for RecipeError {}

/// A servable build recipe: base image, merged dependencies, copied
/// model components and an entrypoint. Field ordering is canonical
/// (BTreeMap) so identical recipes hash identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recipe {
    /// Base image, e.g. `python:3.7`.
    pub base: String,
    /// Pinned dependencies, name -> version.
    pub dependencies: BTreeMap<String, String>,
    /// Model components copied into the image: path -> content.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Command run when a pod starts, e.g. `dlhub-shim --serve`.
    pub entrypoint: String,
}

impl Recipe {
    /// Start a recipe from a base image.
    pub fn from_base(base: impl Into<String>) -> Self {
        Recipe {
            base: base.into(),
            dependencies: BTreeMap::new(),
            files: BTreeMap::new(),
            entrypoint: String::new(),
        }
    }

    /// Add a dependency, detecting version conflicts.
    pub fn add_dependency(&mut self, dep: Dependency) -> Result<&mut Self, RecipeError> {
        match self.dependencies.get(&dep.name) {
            Some(existing) if *existing != dep.version => Err(RecipeError::VersionConflict {
                package: dep.name,
                existing: existing.clone(),
                requested: dep.version,
            }),
            _ => {
                self.dependencies.insert(dep.name, dep.version);
                Ok(self)
            }
        }
    }

    /// Merge another dependency set (DLHub merges its shim/runtime
    /// dependencies with the user's model dependencies, §IV-A).
    pub fn merge_dependencies<I>(&mut self, deps: I) -> Result<&mut Self, RecipeError>
    where
        I: IntoIterator<Item = Dependency>,
    {
        for dep in deps {
            self.add_dependency(dep)?;
        }
        Ok(self)
    }

    /// Copy a model component into the image.
    pub fn add_file(&mut self, path: impl Into<String>, content: Vec<u8>) -> &mut Self {
        self.files.insert(path.into(), content);
        self
    }

    /// Set the entrypoint command.
    pub fn entrypoint(&mut self, cmd: impl Into<String>) -> &mut Self {
        self.entrypoint = cmd.into();
        self
    }

    /// Render as Dockerfile text (for inspection / export).
    pub fn to_dockerfile(&self) -> String {
        let mut out = format!("FROM {}\n", self.base);
        for (name, version) in &self.dependencies {
            out.push_str(&format!("RUN pip install {name}=={version}\n"));
        }
        for path in self.files.keys() {
            out.push_str(&format!("COPY {path} {path}\n"));
        }
        if !self.entrypoint.is_empty() {
            out.push_str(&format!("ENTRYPOINT [\"{}\"]\n", self.entrypoint));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_dependency_dedups_same_version() {
        let mut r = Recipe::from_base("python:3.7");
        r.add_dependency(Dependency::new("keras", "2.2.4")).unwrap();
        r.add_dependency(Dependency::new("keras", "2.2.4")).unwrap();
        assert_eq!(r.dependencies.len(), 1);
    }

    #[test]
    fn version_conflict_detected() {
        let mut r = Recipe::from_base("python:3.7");
        r.add_dependency(Dependency::new("keras", "2.2.4")).unwrap();
        let err = r
            .add_dependency(Dependency::new("keras", "2.3.0"))
            .unwrap_err();
        assert_eq!(
            err,
            RecipeError::VersionConflict {
                package: "keras".into(),
                existing: "2.2.4".into(),
                requested: "2.3.0".into(),
            }
        );
    }

    #[test]
    fn merge_combines_user_and_system_deps() {
        let mut r = Recipe::from_base("python:3.7");
        r.merge_dependencies([
            Dependency::new("dlhub-shim", "0.1"),
            Dependency::new("parsl", "0.7"),
        ])
        .unwrap();
        r.merge_dependencies([Dependency::new("scikit-learn", "0.20")])
            .unwrap();
        assert_eq!(r.dependencies.len(), 3);
    }

    #[test]
    fn dockerfile_rendering_is_canonical() {
        let mut r = Recipe::from_base("python:3.7");
        r.add_dependency(Dependency::new("zlib", "1")).unwrap();
        r.add_dependency(Dependency::new("abc", "2")).unwrap();
        r.add_file("model.pkl", vec![1, 2, 3]);
        r.entrypoint("dlhub-shim");
        let text = r.to_dockerfile();
        // BTreeMap ordering: abc before zlib regardless of insert order.
        let abc = text.find("abc").unwrap();
        let zlib = text.find("zlib").unwrap();
        assert!(abc < zlib);
        assert!(text.starts_with("FROM python:3.7\n"));
        assert!(text.contains("COPY model.pkl model.pkl"));
        assert!(text.ends_with("ENTRYPOINT [\"dlhub-shim\"]\n"));
    }
}
