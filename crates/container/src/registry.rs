//! Image registry: push/pull by `name:tag`.

use crate::image::{Digest, Image};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No image under that reference.
    NotFound(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound(r) => write!(f, "image not found: {r}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[derive(Default)]
struct State {
    /// `name:tag` -> digest.
    tags: HashMap<String, Digest>,
    /// digest -> image.
    blobs: HashMap<Digest, Image>,
}

/// A content-addressed image registry ("uploads the container to the
/// DLHub model repository", §IV-A). Cheap to clone.
#[derive(Clone, Default)]
pub struct Registry {
    state: Arc<RwLock<State>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Push an image under `name:tag`, returning its digest.
    /// Re-pushing a tag repoints it (image versioning).
    pub fn push(&self, reference: &str, image: Image) -> Digest {
        let mut st = self.state.write();
        let digest = image.digest;
        st.blobs.insert(digest, image);
        st.tags.insert(reference.to_string(), digest);
        digest
    }

    /// Pull by `name:tag`.
    pub fn pull(&self, reference: &str) -> Result<Image, RegistryError> {
        let st = self.state.read();
        let digest = st
            .tags
            .get(reference)
            .ok_or_else(|| RegistryError::NotFound(reference.to_string()))?;
        st.blobs
            .get(digest)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(reference.to_string()))
    }

    /// Pull by digest (immutable reference).
    pub fn pull_digest(&self, digest: Digest) -> Result<Image, RegistryError> {
        self.state
            .read()
            .blobs
            .get(&digest)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(digest.to_string()))
    }

    /// Resolve a tag to a digest without transferring the image.
    pub fn resolve(&self, reference: &str) -> Option<Digest> {
        self.state.read().tags.get(reference).copied()
    }

    /// Tags currently registered.
    pub fn tags(&self) -> Vec<String> {
        let mut tags: Vec<String> = self.state.read().tags.keys().cloned().collect();
        tags.sort();
        tags
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("Registry")
            .field("tags", &st.tags.len())
            .field("blobs", &st.blobs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use crate::recipe::Recipe;

    fn image(entry: &str) -> Image {
        let mut r = Recipe::from_base("python:3.7");
        r.entrypoint(entry);
        ImageBuilder::new().build(&r)
    }

    #[test]
    fn push_pull_round_trip() {
        let reg = Registry::new();
        let img = image("a");
        let digest = reg.push("dlhub/noop:1", img.clone());
        assert_eq!(reg.pull("dlhub/noop:1").unwrap(), img);
        assert_eq!(reg.pull_digest(digest).unwrap(), img);
        assert_eq!(reg.resolve("dlhub/noop:1"), Some(digest));
    }

    #[test]
    fn missing_reference_errors() {
        let reg = Registry::new();
        assert!(matches!(
            reg.pull("missing:latest"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn retag_repoints_but_old_digest_survives() {
        let reg = Registry::new();
        let v1 = image("v1");
        let v2 = image("v2");
        let d1 = reg.push("m:latest", v1.clone());
        let d2 = reg.push("m:latest", v2.clone());
        assert_ne!(d1, d2);
        assert_eq!(reg.pull("m:latest").unwrap(), v2);
        // The old image is still retrievable by digest (model version
        // pinning for reproducibility).
        assert_eq!(reg.pull_digest(d1).unwrap(), v1);
    }

    #[test]
    fn tags_are_sorted() {
        let reg = Registry::new();
        reg.push("b:1", image("x"));
        reg.push("a:1", image("y"));
        assert_eq!(reg.tags(), vec!["a:1".to_string(), "b:1".to_string()]);
    }
}
