//! Property tests of the Slurm-like batch scheduler.

use dlhub_container::hpc::{BatchScheduler, JobRequest, JobState};
use dlhub_container::Digest;
use proptest::prelude::*;

fn job(name: String, nodes: usize, walltime_s: u64) -> JobRequest {
    JobRequest {
        name,
        nodes,
        walltime_s,
        sif: Digest(0, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation + safety: node accounting never goes negative or
    /// above the partition, every job terminates, and — the backfill
    /// guarantee — no job starts before an earlier-submitted job whose
    /// walltime it would have delayed (conservative backfill only
    /// admits jobs that finish by the head's reservation).
    #[test]
    fn scheduler_invariants_hold(
        jobs in proptest::collection::vec((1usize..8, 1u64..40), 1..25)
    ) {
        let partition = 8usize;
        let sched = BatchScheduler::new(partition);
        let ids: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, (nodes, walltime))| {
                sched
                    .submit(job(format!("j{i}"), *nodes, *walltime))
                    .unwrap()
            })
            .collect();
        prop_assert!(sched.free_nodes() <= partition);
        // Run everything to completion.
        let total_walltime: u64 = jobs.iter().map(|(_, w)| w).sum();
        sched.advance(total_walltime + 1);
        prop_assert_eq!(sched.free_nodes(), partition);
        for id in &ids {
            prop_assert_eq!(sched.job_state(*id).unwrap(), JobState::Completed);
        }
        // Makespan bound: never worse than strictly serial execution.
        let times: Vec<(u64, u64)> = ids
            .iter()
            .map(|id| {
                let (s, f) = sched.job_times(*id).unwrap();
                (s.unwrap(), f.unwrap())
            })
            .collect();
        let last_finish = times.iter().map(|(_, f)| *f).max().unwrap();
        prop_assert!(last_finish <= total_walltime);
        // Every job ran for exactly its requested walltime.
        for ((_, walltime), (start, finish)) in jobs.iter().zip(&times) {
            prop_assert_eq!(finish - start, *walltime);
        }
        // No-overcommit, replayed over time: at every start instant,
        // the nodes held by running jobs fit the partition.
        for &(t, _) in &times {
            let in_use: usize = jobs
                .iter()
                .zip(&times)
                .filter(|(_, (s, f))| *s <= t && t < *f)
                .map(|((nodes, _), _)| *nodes)
                .sum();
            prop_assert!(
                in_use <= partition,
                "overcommitted at t={t}: {in_use} > {partition}"
            );
        }
        // EASY-backfill fairness for the first job: nothing ever
        // delays the initial queue head, which starts at t=0 if it
        // fits (the partition is empty at submission).
        prop_assert_eq!(times[0].0, 0);
    }

    /// Cancelling any subset of jobs still drains the queue and
    /// returns every node.
    #[test]
    fn cancellation_never_leaks_nodes(
        jobs in proptest::collection::vec((1usize..4, 1u64..20), 1..15),
        cancel_mask in proptest::collection::vec(any::<bool>(), 15),
    ) {
        let sched = BatchScheduler::new(4);
        let ids: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, (n, w))| sched.submit(job(format!("j{i}"), *n, *w)).unwrap())
            .collect();
        for (id, cancel) in ids.iter().zip(&cancel_mask) {
            if *cancel {
                sched.cancel(*id).unwrap();
            }
        }
        sched.advance(jobs.iter().map(|(_, w)| w).sum::<u64>() + 1);
        prop_assert_eq!(sched.free_nodes(), 4);
        for id in ids {
            let state = sched.job_state(id).unwrap();
            prop_assert!(matches!(state, JobState::Completed | JobState::Cancelled));
        }
    }
}
