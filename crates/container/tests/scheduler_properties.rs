//! Property tests of the cluster scheduler's resource invariants.

use dlhub_container::{Cluster, Digest, NodeSpec, PodSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Scale { deployment: u8, replicas: u8 },
    Delete { deployment: u8 },
    Drain { node: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..12).prop_map(|(deployment, replicas)| Op::Scale {
            deployment,
            replicas
        }),
        (0u8..4).prop_map(|deployment| Op::Delete { deployment }),
        (0u8..3).prop_map(|node| Op::Drain { node }),
    ]
}

fn pod_spec(cpu: u64) -> PodSpec {
    PodSpec {
        image: Digest(1, 2),
        cpu_millis: cpu,
        memory_mib: 512,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of scale/delete/drain operations runs, no
    /// node is ever over-committed and accounting stays exact.
    #[test]
    fn nodes_never_overcommit(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let cluster = Cluster::new(vec![
            NodeSpec::new("n0", 4000, 4096),
            NodeSpec::new("n1", 4000, 4096),
            NodeSpec::new("n2", 2000, 2048),
        ]);
        let mut live: [bool; 4] = [false; 4];
        for op in &ops {
            match op {
                Op::Scale { deployment, replicas } => {
                    let name = format!("d{deployment}");
                    if live[*deployment as usize] {
                        let _ = cluster.scale(&name, *replicas as usize);
                    } else if cluster
                        .create_deployment(&name, pod_spec(700), *replicas as usize)
                        .is_ok()
                    {
                        live[*deployment as usize] = true;
                    } else {
                        // Creation may fail for capacity; the deployment
                        // still exists with whatever pods fit? No: our
                        // API creates the deployment record first, so
                        // mark it live if the record exists by probing
                        // a follow-up scale.
                        live[*deployment as usize] =
                            cluster.scale(&name, 0).is_ok();
                    }
                }
                Op::Delete { deployment } => {
                    let name = format!("d{deployment}");
                    if cluster.delete_deployment(&name).is_ok() {
                        live[*deployment as usize] = false;
                    }
                }
                Op::Drain { node } => {
                    let _ = cluster.drain_node(&format!("n{node}"));
                }
            }
            // Invariant 1: per-node usage within allocatable.
            for node in cluster.nodes() {
                let used: u64 = cluster
                    .pods_on_node(&node)
                    .iter()
                    .map(|p| p.spec.cpu_millis)
                    .sum();
                let cap = if node == "n2" { 2000 } else { 4000 };
                prop_assert!(used <= cap, "{node} over-committed: {used} > {cap}");
            }
            // Invariant 2: global accounting matches the pod list.
            let (used, _) = cluster.cpu_utilization();
            let listed: u64 = cluster
                .nodes()
                .iter()
                .flat_map(|n| cluster.pods_on_node(n))
                .map(|p| p.spec.cpu_millis)
                .sum();
            // cpu_utilization excludes cordoned nodes; listed includes
            // only running pods, which cordoned nodes no longer have
            // after a successful drain — so listed >= used.
            prop_assert!(listed >= used);
        }
    }

    /// Replica counts converge: after a successful scale to n, exactly
    /// n pods run.
    #[test]
    fn scale_is_exact_when_capacity_allows(n1 in 0usize..5, n2 in 0usize..5) {
        let cluster = Cluster::new(vec![NodeSpec::new("n0", 10_000, 65_536)]);
        cluster.create_deployment("d", pod_spec(1000), n1).unwrap();
        prop_assert_eq!(cluster.running_pods("d").len(), n1);
        cluster.scale("d", n2).unwrap();
        prop_assert_eq!(cluster.running_pods("d").len(), n2);
    }
}
