//! Admission control and per-tenant load shedding.
//!
//! DLHub's Management Service must protect itself under overload
//! (§III): without a front door, excess load just grows broker queues
//! until every request — including the ones that would have met their
//! SLO — times out deep in the stack. The admission controller sheds
//! *early* instead: a request that cannot be served in time is
//! rejected at the door with a typed
//! [`DlhubError::Overloaded`] carrying a suggested back-off, the
//! 429-with-`Retry-After` pattern.
//!
//! # Fairness
//!
//! Tenancy is keyed on `dlhub-auth` identities
//! ([`TokenInfo::tenant`](dlhub_auth::TokenInfo::tenant) — the
//! smallest linked identity, so aliases cannot multiply quota). While
//! the service is **uncontended** everyone is admitted and the
//! fairness ledger resets — quota is not hoarded across quiet
//! periods. Once **contended** (inflight beyond the fair-share
//! threshold, or queue-wait/burn-rate signals breaching), admission
//! switches to weighted round-robin credits: tenant `i` with weight
//! `w_i` is admitted iff
//!
//! ```text
//! accepted_i × Σw  <  (total_accepted + 1) × w_i
//! ```
//!
//! over the tenants seen in the current contention round. Accepted
//! shares therefore converge to `w_i / Σw`, and a zero-weight tenant
//! is always over its (empty) share — shed whenever the service is
//! contended, harmless when it is not.
//!
//! # Accounting
//!
//! Admission hands back an [`AdmissionPermit`] whose `Drop` releases
//! the inflight slot, so the bound holds no matter how the request
//! path exits. Sheds feed the `requests_shed_total` counter and, past
//! [`AdmissionConfig::storm_threshold`] inside one window, freeze a
//! flight-recorder bundle ([`FlightRecorder::shed_storm`]) so the
//! 3 a.m. overload arrives with evidence attached.

use crate::error::DlhubError;
use dlhub_auth::IdentityId;
use dlhub_obs::{Counter, FlightRecorder};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Admission-control thresholds and tenant weights.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Hard cap on concurrently admitted requests; at the cap every
    /// arrival is shed regardless of tenant.
    pub max_inflight: usize,
    /// Fraction of `max_inflight` at which weighted fairness engages
    /// (the service is "contended"). Zero means always contended.
    pub fair_share_at: f64,
    /// Suggested client back-off returned in
    /// [`DlhubError::Overloaded::retry_after_ms`].
    pub retry_after: Duration,
    /// p99 broker queue wait above which the service counts as
    /// contended even below the inflight threshold.
    pub queue_wait_p99_max: Duration,
    /// Fast-window SLO burn rate above which the service counts as
    /// contended.
    pub burn_rate_max: f64,
    /// Lookback window for the signal queries above.
    pub signal_window: Duration,
    /// Weight for tenants absent from `weights`.
    pub default_weight: u32,
    /// Per-tenant weights; zero marks a tenant that may only use
    /// otherwise-idle capacity.
    pub weights: HashMap<IdentityId, u32>,
    /// Sheds inside one `storm_window` that escalate to a
    /// flight-recorder freeze.
    pub storm_threshold: u64,
    /// Shed-storm accounting window.
    pub storm_window: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 64,
            fair_share_at: 0.5,
            retry_after: Duration::from_millis(250),
            queue_wait_p99_max: Duration::from_millis(100),
            burn_rate_max: 2.0,
            signal_window: Duration::from_secs(10),
            default_weight: 1,
            weights: HashMap::new(),
            storm_threshold: 50,
            storm_window: Duration::from_secs(1),
        }
    }
}

/// Ledger of the current contention round.
#[derive(Default)]
struct FairState {
    accepted: HashMap<IdentityId, u64>,
    total: u64,
}

struct StormState {
    window_start_ns: u64,
    shed_in_window: u64,
}

/// Proof of admission: holds the inflight slot and releases it on
/// drop, however the request path exits.
#[derive(Debug)]
pub struct AdmissionPermit {
    inflight: Arc<AtomicUsize>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The front door: bounded inflight, signal-aware contention, and
/// weighted fair shares per tenant. See the module docs for the
/// admission math.
pub struct AdmissionController {
    config: AdmissionConfig,
    inflight: Arc<AtomicUsize>,
    admitted: AtomicU64,
    fair: Mutex<FairState>,
    storm: Mutex<StormState>,
    shed_counter: Option<Arc<Counter>>,
    admitted_counter: Option<Arc<Counter>>,
    recorder: Option<FlightRecorder>,
}

impl AdmissionController {
    /// Build a controller over `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            inflight: Arc::new(AtomicUsize::new(0)),
            admitted: AtomicU64::new(0),
            fair: Mutex::new(FairState::default()),
            storm: Mutex::new(StormState {
                window_start_ns: 0,
                shed_in_window: 0,
            }),
            shed_counter: None,
            admitted_counter: None,
            recorder: None,
        }
    }

    /// Count sheds on `shed` and admissions on `admitted`
    /// (`requests_shed_total` / `requests_admitted_total` in the
    /// serving wiring — the pair `dlhub top`'s ADMISSION row reads),
    /// and freeze recorder bundles on shed storms.
    pub fn with_observability(
        mut self,
        shed: Arc<Counter>,
        admitted: Arc<Counter>,
        recorder: FlightRecorder,
    ) -> Self {
        self.shed_counter = Some(shed);
        self.admitted_counter = Some(admitted);
        self.recorder = Some(recorder);
        self
    }

    /// The thresholds this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests currently admitted and not yet finished.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests admitted over the controller's lifetime (evidence that
    /// admission was actually on the request path, e.g. in the bench
    /// harness's control-loop A/B artifact).
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// The weight `tenant` is scheduled at.
    pub fn weight(&self, tenant: IdentityId) -> u32 {
        self.config
            .weights
            .get(&tenant)
            .copied()
            .unwrap_or(self.config.default_weight)
    }

    /// Admit or shed one request from `tenant` at time `now_ns`.
    /// `pressured` is the embedder's signal-breach verdict (queue-wait
    /// p99 or burn rate over the configured maxima); the inflight
    /// threshold is checked here. On admission the returned permit
    /// must be held for the request's lifetime.
    pub fn admit(
        &self,
        tenant: IdentityId,
        pressured: bool,
        now_ns: u64,
    ) -> Result<AdmissionPermit, DlhubError> {
        // Reserve the slot atomically: a load-check-then-add would let
        // N racing arrivals all pass at `max_inflight - 1` and push
        // inflight past the documented hard cap.
        let inflight = match self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.config.max_inflight).then_some(n + 1)
            }) {
            Ok(previous) => previous,
            Err(_) => return Err(self.shed(now_ns)),
        };
        let fair_threshold =
            (self.config.fair_share_at * self.config.max_inflight as f64).ceil() as usize;
        let contended = pressured || inflight >= fair_threshold;
        let mut fair = self.fair.lock();
        if contended {
            let my_weight = self.weight(tenant) as u64;
            // Competing registers the tenant in the ledger (at zero
            // accepts) even when this request is shed, so Σw spans
            // every tenant that *requested* this round — a
            // persistently-shed tenant still dilutes everyone else's
            // share, per w_i / Σw over competing tenants.
            fair.accepted.entry(tenant).or_insert(0);
            let total_weight: u64 = fair.accepted.keys().map(|t| self.weight(*t) as u64).sum();
            let mine = fair.accepted.get(&tenant).copied().unwrap_or(0);
            if mine * total_weight >= (fair.total + 1) * my_weight {
                drop(fair);
                // Roll back the reserved slot before shedding.
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                return Err(self.shed(now_ns));
            }
            *fair.accepted.entry(tenant).or_insert(0) += 1;
            fair.total += 1;
        } else {
            // Uncontended admission resets the ledger: fairness is
            // about sharing scarce capacity, not hoarding credit from
            // quiet periods.
            if fair.total > 0 || !fair.accepted.is_empty() {
                *fair = FairState::default();
            }
        }
        drop(fair);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = &self.admitted_counter {
            counter.inc();
        }
        Ok(AdmissionPermit {
            inflight: Arc::clone(&self.inflight),
        })
    }

    /// Record one shed and return the typed rejection.
    fn shed(&self, now_ns: u64) -> DlhubError {
        if let Some(counter) = &self.shed_counter {
            counter.inc();
        }
        let window_ns = self.config.storm_window.as_nanos().min(u64::MAX as u128) as u64;
        let mut storm = self.storm.lock();
        if now_ns.saturating_sub(storm.window_start_ns) >= window_ns {
            storm.window_start_ns = now_ns;
            storm.shed_in_window = 0;
        }
        storm.shed_in_window += 1;
        // Freeze exactly once per window, at the threshold crossing.
        if storm.shed_in_window == self.config.storm_threshold {
            if let Some(recorder) = &self.recorder {
                recorder.shed_storm(
                    storm.shed_in_window,
                    self.config.storm_window.as_millis().min(u64::MAX as u128) as u64,
                );
            }
        }
        DlhubError::Overloaded {
            retry_after_ms: self.config.retry_after.as_millis().min(u64::MAX as u128) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(n: u64) -> IdentityId {
        IdentityId(n)
    }

    #[test]
    fn hard_cap_sheds_with_retry_after() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            retry_after: Duration::from_millis(125),
            ..AdmissionConfig::default()
        });
        let a = ctl.admit(tenant(1), false, 0).unwrap();
        let b = ctl.admit(tenant(1), false, 0).unwrap();
        assert_eq!(ctl.inflight(), 2);
        let err = ctl.admit(tenant(1), false, 0).unwrap_err();
        assert_eq!(
            err,
            DlhubError::Overloaded {
                retry_after_ms: 125
            }
        );
        // Finishing a request frees its slot.
        drop(a);
        assert_eq!(ctl.inflight(), 1);
        let _c = ctl.admit(tenant(1), false, 0).unwrap();
        drop(b);
    }

    #[test]
    fn zero_weight_is_admitted_only_when_uncontended() {
        let mut config = AdmissionConfig::default();
        config.weights.insert(tenant(9), 0);
        let ctl = AdmissionController::new(config);
        // Idle service: the hostile tenant may use spare capacity.
        let permit = ctl.admit(tenant(9), false, 0).unwrap();
        drop(permit);
        // Contended (signal breach): always over its empty share.
        assert!(matches!(
            ctl.admit(tenant(9), true, 0),
            Err(DlhubError::Overloaded { .. })
        ));
    }

    #[test]
    fn weighted_shares_converge_under_contention() {
        let mut config = AdmissionConfig {
            max_inflight: 1024,
            fair_share_at: 0.0, // always contended
            ..AdmissionConfig::default()
        };
        config.weights.insert(tenant(1), 2);
        config.weights.insert(tenant(2), 1);
        let ctl = AdmissionController::new(config);
        let mut accepted = [0u64; 2];
        for _ in 0..300 {
            for (slot, who) in [(0usize, tenant(1)), (1, tenant(2))] {
                if let Ok(permit) = ctl.admit(who, false, 0) {
                    accepted[slot] += 1;
                    drop(permit);
                }
            }
        }
        let total = (accepted[0] + accepted[1]) as f64;
        let share_b = accepted[1] as f64 / total;
        // Weight 1 of Σ3: B's share converges to 1/3.
        assert!((share_b - 1.0 / 3.0).abs() < 0.05, "share_b {share_b}");
        assert!(accepted[0] > accepted[1]);
    }

    #[test]
    fn uncontended_admission_resets_the_ledger() {
        let mut config = AdmissionConfig {
            max_inflight: 1024,
            fair_share_at: 1.0, // contention only when signalled
            ..AdmissionConfig::default()
        };
        config.weights.insert(tenant(1), 1);
        config.weights.insert(tenant(2), 1);
        let ctl = AdmissionController::new(config);
        // A burst from tenant 1 under contention builds up credit debt…
        for _ in 0..50 {
            let _ = ctl.admit(tenant(1), true, 0);
        }
        // …which an uncontended admission wipes: the next contention
        // round starts from a clean ledger.
        drop(ctl.admit(tenant(2), false, 0).unwrap());
        let permit = ctl.admit(tenant(1), true, 0);
        assert!(permit.is_ok(), "stale ledger starved tenant 1");
    }

    #[test]
    fn shed_storm_freezes_one_bundle_per_window() {
        use dlhub_obs::{Obs, RecorderSources};
        let obs = Obs::new();
        let recorder = FlightRecorder::disabled();
        recorder.enable(
            4,
            RecorderSources {
                tracer: obs.tracer.clone(),
                metrics: obs.metrics.clone(),
                contention: obs.contention.clone(),
                profiler: obs.profile.clone(),
            },
        );
        let shed_counter = obs.metrics.counter("requests_shed_total");
        let admitted_counter = obs.metrics.counter("requests_admitted_total");
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 1,
            storm_threshold: 5,
            storm_window: Duration::from_secs(1),
            ..AdmissionConfig::default()
        })
        .with_observability(
            Arc::clone(&shed_counter),
            Arc::clone(&admitted_counter),
            recorder.clone(),
        );
        let _held = ctl.admit(tenant(1), false, 0).unwrap();
        // 8 sheds inside one window: one freeze at the 5th.
        for i in 0..8u64 {
            assert!(ctl.admit(tenant(2), false, i).is_err());
        }
        assert_eq!(recorder.frozen_total(), 1);
        assert_eq!(recorder.latest().unwrap().trigger.kind(), "shed_storm");
        assert_eq!(shed_counter.get(), 8);
        assert_eq!(admitted_counter.get(), 1, "only the held permit admitted");
        // A new window starts a fresh count and may freeze again.
        for i in 0..5u64 {
            assert!(ctl.admit(tenant(2), false, 2_000_000_000 + i).is_err());
        }
        assert_eq!(recorder.frozen_total(), 2);
    }
}
