//! Replica autoscaling from servable profiles.
//!
//! Fig 7 shows throughput saturating once the Task Manager's
//! serialized dispatch dominates (`replicas ≈ service / dispatch`);
//! the paper leaves replica counts "configurable in the Management
//! Service" and names "automated tuning of servable execution" as
//! ongoing work (§VII). [`Autoscaler`] closes that loop: it reads the
//! live [`ProfileRegistry`] and drives each servable's Parsl pool to
//! its knee — enough replicas to stay compute-bound, no more.

use crate::executor::ParslExecutor;
use crate::profile::ProfileRegistry;
use dlhub_obs::{ControlSignals, GaugeWindow, WindowHistogram};
use std::sync::Arc;
use std::time::Duration;

/// Autoscaling policy bounds.
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    /// Lower bound on replicas per servable.
    pub min_replicas: usize,
    /// Upper bound on replicas per servable (cluster budget).
    pub max_replicas: usize,
    /// Observations required before trusting a profile.
    pub min_samples: u64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            min_replicas: 1,
            max_replicas: 16,
            min_samples: 5,
        }
    }
}

/// A scaling decision for one servable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingDecision {
    /// Servable id.
    pub servable: String,
    /// Replicas before the decision.
    pub current: usize,
    /// Replicas the policy wants.
    pub desired: usize,
}

/// Read-only windowed inputs a scaling control loop consumes. Every
/// accessor returns `None` when the underlying signal has no history
/// yet — callers must treat "no data" as "do not act", never as zero.
///
/// The trait exists so the (future) control loop can be tested against
/// scripted signal fixtures; production wires [`TelemetrySignals`]
/// over the telemetry store's [`ControlSignals`] view.
pub trait ScalingSignals {
    /// Requests per second answered for `servable` over `window`.
    fn arrival_rate(&self, servable: &str, window: Duration) -> Option<f64>;

    /// Slope of the arrival rate in req/s per second — positive means
    /// traffic is ramping toward the pool.
    fn arrival_trend(&self, servable: &str, window: Duration) -> Option<f64>;

    /// p99 broker queue wait over `window`, in nanoseconds.
    fn queue_wait_p99(&self, window: Duration) -> Option<u64>;

    /// Fast-window SLO burn rate for `servable` (mean over `window`);
    /// above 1.0 the error budget is being consumed too fast.
    fn burn_rate(&self, servable: &str, window: Duration) -> Option<f64>;

    /// Mean async worker-pool occupancy over `window`.
    fn pool_occupancy(&self, window: Duration) -> Option<f64>;
}

/// [`ScalingSignals`] over the telemetry store, via its
/// [`ControlSignals`] query view. Obtain one from
/// [`ManagementService::control_signals`] and wrap it:
/// `TelemetrySignals::new(service.control_signals()?)`.
///
/// [`ManagementService::control_signals`]: crate::serving::ManagementService::control_signals
#[derive(Clone)]
pub struct TelemetrySignals {
    signals: ControlSignals,
}

impl TelemetrySignals {
    /// Wrap the telemetry query view.
    pub fn new(signals: ControlSignals) -> Self {
        TelemetrySignals { signals }
    }

    /// The underlying view, for signals the trait does not name.
    pub fn inner(&self) -> &ControlSignals {
        &self.signals
    }
}

impl ScalingSignals for TelemetrySignals {
    fn arrival_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals.arrival_rate(servable, window)
    }

    fn arrival_trend(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals.arrival_trend(servable, window)
    }

    fn queue_wait_p99(&self, window: Duration) -> Option<u64> {
        self.signals
            .queue_wait(window)
            .and_then(|w: WindowHistogram| w.quantile(0.99))
    }

    fn burn_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals
            .burn_rate(servable, window)
            .map(|w: GaugeWindow| w.avg)
    }

    fn pool_occupancy(&self, window: Duration) -> Option<f64> {
        self.signals.pool_occupancy(window).map(|w| w.avg)
    }
}

/// Profile-driven replica autoscaler.
pub struct Autoscaler {
    registry: ProfileRegistry,
    executor: Arc<ParslExecutor>,
    policy: AutoscalePolicy,
}

impl Autoscaler {
    /// Wire an autoscaler to a profile source and the executor whose
    /// pools it manages.
    pub fn new(
        registry: ProfileRegistry,
        executor: Arc<ParslExecutor>,
        policy: AutoscalePolicy,
    ) -> Self {
        Autoscaler {
            registry,
            executor,
            policy,
        }
    }

    /// Desired replica count for one servable, or `None` if its
    /// profile is missing or too thin to act on.
    pub fn desired(&self, servable: &str) -> Option<usize> {
        let profile = self.registry.get(servable)?;
        if profile.samples < self.policy.min_samples {
            return None;
        }
        Some(
            profile
                .suggested_replicas(self.policy.max_replicas)
                .max(self.policy.min_replicas),
        )
    }

    /// Evaluate every profiled servable and rescale pools that are off
    /// their knee. Returns the decisions that changed something.
    pub fn reconcile(&self) -> Vec<ScalingDecision> {
        let mut changed = Vec::new();
        for servable in self.registry.servables() {
            let Some(desired) = self.desired(&servable) else {
                continue;
            };
            let current = self.executor.replicas(&servable);
            if current != desired {
                self.executor.scale(&servable, desired);
                changed.push(ScalingDecision {
                    servable,
                    current,
                    desired,
                });
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_container::Cluster;
    use std::time::Duration;

    fn setup() -> (ProfileRegistry, Arc<ParslExecutor>, Autoscaler) {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(ParslExecutor::new(Cluster::petrelkube(), 1));
        let scaler = Autoscaler::new(
            registry.clone(),
            Arc::clone(&executor),
            AutoscalePolicy::default(),
        );
        (registry, executor, scaler)
    }

    fn feed(registry: &ProfileRegistry, servable: &str, inference_ms: u64, invocation_ms: u64) {
        for _ in 0..10 {
            registry.record(
                servable,
                Duration::from_millis(inference_ms),
                Duration::from_millis(invocation_ms),
                1,
            );
        }
    }

    #[test]
    fn heavy_servables_scale_to_the_knee() {
        let (registry, executor, scaler) = setup();
        // 40ms inference behind 3ms overhead: knee ≈ 14.
        feed(&registry, "u/inception", 40, 43);
        executor.scale("u/inception", 1);
        let decisions = scaler.reconcile();
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.current, 1);
        assert!((12..=16).contains(&d.desired), "desired {}", d.desired);
        assert_eq!(executor.replicas("u/inception"), d.desired);
        // Second reconcile is a no-op: already at the knee.
        assert!(scaler.reconcile().is_empty());
    }

    #[test]
    fn cheap_servables_stay_at_min() {
        let (registry, executor, scaler) = setup();
        feed(&registry, "u/util", 0, 3);
        executor.scale("u/util", 8);
        let decisions = scaler.reconcile();
        assert_eq!(decisions[0].desired, 1);
        assert_eq!(executor.replicas("u/util"), 1);
    }

    #[test]
    fn thin_profiles_are_not_acted_on() {
        let (registry, _executor, scaler) = setup();
        registry.record(
            "u/new",
            Duration::from_millis(40),
            Duration::from_millis(43),
            1,
        );
        assert_eq!(scaler.desired("u/new"), None);
        assert!(scaler.reconcile().is_empty());
        assert_eq!(scaler.desired("u/ghost"), None);
    }

    #[test]
    fn max_replicas_caps_the_knee() {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(ParslExecutor::new(Cluster::petrelkube(), 1));
        let scaler = Autoscaler::new(
            registry.clone(),
            Arc::clone(&executor),
            AutoscalePolicy {
                max_replicas: 4,
                ..AutoscalePolicy::default()
            },
        );
        feed(&registry, "u/huge", 400, 403); // knee would be ~134
        scaler.reconcile();
        assert_eq!(executor.replicas("u/huge"), 4);
    }

    #[test]
    fn telemetry_signals_adapt_the_query_view() {
        use dlhub_obs::Obs;

        let obs = Obs::new();
        obs.enable_telemetry_manual(Duration::from_secs(1));
        let step = 1_000_000_000u64;
        for tick in 0..5u64 {
            obs.metrics.series("u/inception").requests.add(20);
            obs.metrics.gauge("async_pool_active").set(3);
            obs.metrics
                .histogram("broker_queue_wait_ns")
                .record(2_000_000);
            obs.telemetry.sample_now(tick * step);
        }
        let signals = TelemetrySignals::new(obs.telemetry.signals().unwrap());
        let w = Duration::from_secs(4);
        let arrival = signals.arrival_rate("u/inception", w).unwrap();
        assert!((arrival - 20.0).abs() < 1e-9, "{arrival}");
        // Constant arrivals: trend is flat.
        let trend = signals.arrival_trend("u/inception", w).unwrap();
        assert!(trend.abs() < 1e-6, "{trend}");
        assert!(signals.queue_wait_p99(w).unwrap() >= 2_000_000);
        assert_eq!(signals.pool_occupancy(w), Some(3.0));
        // No SLO registered: burn rate reports no data, not zero.
        assert_eq!(signals.burn_rate("u/inception", w), None);
    }

    #[test]
    fn signals_report_none_without_history() {
        use dlhub_obs::Obs;

        let obs = Obs::new();
        obs.enable_telemetry_manual(Duration::from_secs(1));
        let signals = TelemetrySignals::new(obs.telemetry.signals().unwrap());
        let w = Duration::from_secs(60);
        assert_eq!(signals.arrival_rate("u/ghost", w), None);
        assert_eq!(signals.queue_wait_p99(w), None);
        assert_eq!(signals.pool_occupancy(w), None);
        assert_eq!(signals.inner().arrival_trend("u/ghost", w), None);
    }
}
