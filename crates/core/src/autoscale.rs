//! Replica autoscaling from servable profiles.
//!
//! Fig 7 shows throughput saturating once the Task Manager's
//! serialized dispatch dominates (`replicas ≈ service / dispatch`);
//! the paper leaves replica counts "configurable in the Management
//! Service" and names "automated tuning of servable execution" as
//! ongoing work (§VII). [`Autoscaler`] closes that loop: it reads the
//! live [`ProfileRegistry`] and drives each servable's Parsl pool to
//! its knee — enough replicas to stay compute-bound, no more.

use crate::executor::ParslExecutor;
use crate::profile::ProfileRegistry;
use dlhub_obs::{ControlSignals, Counter, GaugeWindow, WindowHistogram};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Autoscaling policy bounds.
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    /// Lower bound on replicas per servable.
    pub min_replicas: usize,
    /// Upper bound on replicas per servable (cluster budget).
    pub max_replicas: usize,
    /// Observations required before trusting a profile.
    pub min_samples: u64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            min_replicas: 1,
            max_replicas: 16,
            min_samples: 5,
        }
    }
}

/// A scaling decision for one servable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingDecision {
    /// Servable id.
    pub servable: String,
    /// Replicas before the decision.
    pub current: usize,
    /// Replicas the policy wants.
    pub desired: usize,
}

/// Read-only windowed inputs a scaling control loop consumes. Every
/// accessor returns `None` when the underlying signal has no history
/// yet — callers must treat "no data" as "do not act", never as zero.
///
/// The trait exists so the (future) control loop can be tested against
/// scripted signal fixtures; production wires [`TelemetrySignals`]
/// over the telemetry store's [`ControlSignals`] view.
pub trait ScalingSignals {
    /// Requests per second answered for `servable` over `window`.
    fn arrival_rate(&self, servable: &str, window: Duration) -> Option<f64>;

    /// Slope of the arrival rate in req/s per second — positive means
    /// traffic is ramping toward the pool.
    fn arrival_trend(&self, servable: &str, window: Duration) -> Option<f64>;

    /// p99 broker queue wait over `window`, in nanoseconds.
    fn queue_wait_p99(&self, window: Duration) -> Option<u64>;

    /// Fast-window SLO burn rate for `servable` (mean over `window`);
    /// above 1.0 the error budget is being consumed too fast.
    fn burn_rate(&self, servable: &str, window: Duration) -> Option<f64>;

    /// Mean async worker-pool occupancy over `window`.
    fn pool_occupancy(&self, window: Duration) -> Option<f64>;
}

/// [`ScalingSignals`] over the telemetry store, via its
/// [`ControlSignals`] query view. Obtain one from
/// [`ManagementService::control_signals`] and wrap it:
/// `TelemetrySignals::new(service.control_signals()?)`.
///
/// [`ManagementService::control_signals`]: crate::serving::ManagementService::control_signals
#[derive(Clone)]
pub struct TelemetrySignals {
    signals: ControlSignals,
}

impl TelemetrySignals {
    /// Wrap the telemetry query view.
    pub fn new(signals: ControlSignals) -> Self {
        TelemetrySignals { signals }
    }

    /// The underlying view, for signals the trait does not name.
    pub fn inner(&self) -> &ControlSignals {
        &self.signals
    }
}

impl ScalingSignals for TelemetrySignals {
    fn arrival_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals.arrival_rate(servable, window)
    }

    fn arrival_trend(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals.arrival_trend(servable, window)
    }

    fn queue_wait_p99(&self, window: Duration) -> Option<u64> {
        self.signals
            .queue_wait(window)
            .and_then(|w: WindowHistogram| w.quantile(0.99))
    }

    fn burn_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.signals
            .burn_rate(servable, window)
            .map(|w: GaugeWindow| w.avg)
    }

    fn pool_occupancy(&self, window: Duration) -> Option<f64> {
        self.signals.pool_occupancy(window).map(|w| w.avg)
    }
}

/// Profile-driven replica autoscaler.
pub struct Autoscaler {
    registry: ProfileRegistry,
    executor: Arc<ParslExecutor>,
    policy: AutoscalePolicy,
}

impl Autoscaler {
    /// Wire an autoscaler to a profile source and the executor whose
    /// pools it manages.
    pub fn new(
        registry: ProfileRegistry,
        executor: Arc<ParslExecutor>,
        policy: AutoscalePolicy,
    ) -> Self {
        Autoscaler {
            registry,
            executor,
            policy,
        }
    }

    /// Desired replica count for one servable, or `None` if its
    /// profile is missing or too thin to act on.
    pub fn desired(&self, servable: &str) -> Option<usize> {
        let profile = self.registry.get(servable)?;
        if profile.samples < self.policy.min_samples {
            return None;
        }
        Some(
            profile
                .suggested_replicas(self.policy.max_replicas)
                .max(self.policy.min_replicas),
        )
    }

    /// Evaluate every profiled servable and rescale pools that are off
    /// their knee. Returns the decisions that changed something.
    pub fn reconcile(&self) -> Vec<ScalingDecision> {
        let mut changed = Vec::new();
        for servable in self.registry.servables() {
            let Some(desired) = self.desired(&servable) else {
                continue;
            };
            // Quarantined replicas are not capacity: a knee that says
            // "1 replica" while that one replica sits in quarantine
            // would leave zero healthy replicas behind a profiled
            // (i.e. trafficked) servable. Clamp so at least one
            // replica stays healthy even if that exceeds the knee.
            let desired = desired.max(self.executor.quarantined(&servable) + 1);
            let current = self.executor.replicas(&servable);
            if current != desired {
                self.executor.scale(&servable, desired);
                changed.push(ScalingDecision {
                    servable,
                    current,
                    desired,
                });
            }
        }
        changed
    }
}

/// Hysteresis and actuation policy for the closed control loop
/// ([`Reconciler`]). The knee policy ([`AutoscalePolicy`]) answers
/// "how many replicas until dispatch dominates"; this one answers
/// "when is it safe to act on live signals".
#[derive(Debug, Clone)]
pub struct ControlPolicy {
    /// Lower bound on replicas while a servable has traffic.
    pub min_replicas: usize,
    /// Upper bound on replicas per servable (cluster budget).
    pub max_replicas: usize,
    /// Observations required before trusting a profile.
    pub min_samples: u64,
    /// Utilization the loop sizes pools toward (`desired =
    /// ceil(demand / target_utilization)`), leaving headroom for
    /// bursts.
    pub target_utilization: f64,
    /// Upper hysteresis bound: act only when utilization of *healthy*
    /// replicas exceeds this.
    pub scale_up_utilization: f64,
    /// Lower hysteresis bound: shrink only when utilization falls
    /// below this. The gap between the bounds is the no-action band
    /// that prevents flapping.
    pub scale_down_utilization: f64,
    /// Minimum time between two resizes of the same servable. A wake
    /// from zero is exempt — cold traffic must not wait out a window.
    pub cooldown: Duration,
    /// Zero arrivals for this long parks the pool to `warm_pool`.
    pub idle_after: Duration,
    /// Replica floor an *idle* pool is parked at. Zero enables
    /// scale-to-zero; one keeps a warm replica to absorb the cold
    /// start of the first returning request.
    pub warm_pool: usize,
    /// Lookback window for every signal query.
    pub signal_window: Duration,
}

impl Default for ControlPolicy {
    fn default() -> Self {
        ControlPolicy {
            min_replicas: 1,
            max_replicas: 16,
            min_samples: 5,
            target_utilization: 0.6,
            scale_up_utilization: 0.85,
            scale_down_utilization: 0.3,
            cooldown: Duration::from_secs(30),
            idle_after: Duration::from_secs(120),
            warm_pool: 0,
            signal_window: Duration::from_secs(30),
        }
    }
}

/// Why the reconciler resized a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Healthy-replica utilization exceeded the upper hysteresis
    /// bound (or the SLO burn rate breached 1.0).
    ScaleUp,
    /// Utilization fell below the lower hysteresis bound.
    ScaleDown,
    /// No arrivals for `idle_after`: parked to the warm-pool floor.
    IdlePark,
    /// Traffic returned to a pool parked at zero.
    Wake,
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DecisionReason::ScaleUp => "scale_up",
            DecisionReason::ScaleDown => "scale_down",
            DecisionReason::IdlePark => "idle_park",
            DecisionReason::Wake => "wake",
        })
    }
}

/// One applied control-loop decision. [`fmt::Display`] renders the
/// canonical log line the determinism tests compare byte-for-byte:
/// every field is a pure function of the seed and the config.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// Virtual (or wall) time of the reconcile pass, in nanoseconds.
    pub at_ns: u64,
    /// Servable whose pool was resized.
    pub servable: String,
    /// Replicas before.
    pub from: usize,
    /// Replicas after.
    pub to: usize,
    /// What drove the change.
    pub reason: DecisionReason,
}

impl fmt::Display for ControlDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:.3}s {} {}->{} {}",
            self.at_ns as f64 / 1e9,
            self.servable,
            self.from,
            self.to,
            self.reason
        )
    }
}

#[derive(Default)]
struct ServableControl {
    /// Last resize, for the cooldown window.
    last_change_ns: Option<u64>,
    /// First pass that observed zero arrivals (cleared on traffic).
    idle_since_ns: Option<u64>,
}

struct ReconcilerState {
    servables: HashMap<String, ServableControl>,
    log: Vec<ControlDecision>,
}

/// The actuation half of the control loop: reads windowed
/// [`ScalingSignals`], sizes each profiled servable's pool by Little's
/// law (`demand = arrival_rate × inference_time`), and applies changes
/// through [`ParslExecutor::scale`] under hysteresis and per-servable
/// cooldowns. Driven either by the Management Service's background
/// thread (wall clock) or by a sim harness calling
/// [`reconcile_at`](Reconciler::reconcile_at) on a virtual clock —
/// the decision path never reads a real clock, which is what makes
/// seeded runs reproduce byte-identical decision logs.
pub struct Reconciler {
    profiles: ProfileRegistry,
    executor: Arc<ParslExecutor>,
    policy: ControlPolicy,
    state: Mutex<ReconcilerState>,
    decisions_counter: Option<Arc<Counter>>,
}

impl Reconciler {
    /// Wire the reconciler to its profile source and executor.
    pub fn new(
        profiles: ProfileRegistry,
        executor: Arc<ParslExecutor>,
        policy: ControlPolicy,
    ) -> Self {
        Reconciler {
            profiles,
            executor,
            policy,
            state: Mutex::new(ReconcilerState {
                servables: HashMap::new(),
                log: Vec::new(),
            }),
            decisions_counter: None,
        }
    }

    /// Count every applied decision on `counter`
    /// (`autoscale_decisions_total` in the serving wiring).
    pub fn with_counter(mut self, counter: Arc<Counter>) -> Self {
        self.decisions_counter = Some(counter);
        self
    }

    /// The policy this reconciler acts under.
    pub fn policy(&self) -> &ControlPolicy {
        &self.policy
    }

    /// One reconcile pass at time `now_ns`, reading `signals` for
    /// every profiled servable. Returns the decisions applied this
    /// pass; every decision is also appended to the cumulative
    /// [`log`](Reconciler::decisions).
    pub fn reconcile_at(&self, now_ns: u64, signals: &dyn ScalingSignals) -> Vec<ControlDecision> {
        let cooldown_ns = self.policy.cooldown.as_nanos().min(u64::MAX as u128) as u64;
        let idle_ns = self.policy.idle_after.as_nanos().min(u64::MAX as u128) as u64;
        let mut applied = Vec::new();
        let mut state = self.state.lock();
        for servable in self.profiles.servables() {
            let Some(profile) = self.profiles.get(&servable) else {
                continue;
            };
            if profile.samples < self.policy.min_samples {
                continue;
            }
            // No signal history means "do not act", never "zero load".
            let Some(rate) = signals.arrival_rate(&servable, self.policy.signal_window) else {
                continue;
            };
            let current = self.executor.replicas(&servable);
            let quarantined = self.executor.quarantined(&servable);
            let entry = state.servables.entry(servable.clone()).or_default();
            let cooled = entry
                .last_change_ns
                .is_none_or(|t| now_ns.saturating_sub(t) >= cooldown_ns);

            let decision: Option<(usize, DecisionReason)> = if rate <= f64::EPSILON {
                // Idle path: park to the warm-pool floor once the pool
                // has been quiet for the full idle window.
                let since = *entry.idle_since_ns.get_or_insert(now_ns);
                if now_ns.saturating_sub(since) >= idle_ns
                    && current > self.policy.warm_pool
                    && cooled
                {
                    Some((self.policy.warm_pool, DecisionReason::IdlePark))
                } else {
                    None
                }
            } else {
                entry.idle_since_ns = None;
                // Little's law: replicas busy serving the offered load.
                let demand = rate * profile.inference.as_secs_f64();
                let mut target = (demand / self.policy.target_utilization).ceil() as usize;
                target = target.clamp(self.policy.min_replicas, self.policy.max_replicas);
                // Quarantined replicas are not capacity: keep at least
                // one healthy replica beyond them, even past the caps.
                if target <= quarantined {
                    target = quarantined + 1;
                }
                let healthy = current.saturating_sub(quarantined);
                let burn_hot = signals
                    .burn_rate(&servable, self.policy.signal_window)
                    .is_some_and(|b| b > 1.0);
                if current == 0 {
                    // Wake from zero: cold traffic must not wait out a
                    // cooldown window.
                    Some((target.max(1), DecisionReason::Wake))
                } else if !cooled {
                    None
                } else {
                    let util = demand / healthy.max(1) as f64;
                    let pressured =
                        util > self.policy.scale_up_utilization || healthy == 0 || burn_hot;
                    if pressured {
                        let mut to = target;
                        // A burn breach (or an all-quarantined pool)
                        // always buys at least one more replica, even
                        // when the utilization math says "enough".
                        if (burn_hot || healthy == 0) && to <= current {
                            to = current + 1;
                        }
                        let to = to.min(self.policy.max_replicas.max(quarantined + 1));
                        (to > current).then_some((to, DecisionReason::ScaleUp))
                    } else if util < self.policy.scale_down_utilization && target < current {
                        Some((target, DecisionReason::ScaleDown))
                    } else {
                        None
                    }
                }
            };

            if let Some((to, reason)) = decision {
                entry.last_change_ns = Some(now_ns);
                self.executor.scale(&servable, to);
                if let Some(counter) = &self.decisions_counter {
                    counter.inc();
                }
                let d = ControlDecision {
                    at_ns: now_ns,
                    servable,
                    from: current,
                    to,
                    reason,
                };
                state.log.push(d.clone());
                applied.push(d);
            }
        }
        applied
    }

    /// Every decision applied since construction, oldest first.
    pub fn decisions(&self) -> Vec<ControlDecision> {
        self.state.lock().log.clone()
    }

    /// The cumulative decision log as canonical text, one line per
    /// decision — the artifact the determinism tests compare.
    pub fn log_text(&self) -> String {
        let state = self.state.lock();
        let mut out = String::new();
        for d in &state.log {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_container::Cluster;
    use std::time::Duration;

    fn setup() -> (ProfileRegistry, Arc<ParslExecutor>, Autoscaler) {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(ParslExecutor::new(Cluster::petrelkube(), 1));
        let scaler = Autoscaler::new(
            registry.clone(),
            Arc::clone(&executor),
            AutoscalePolicy::default(),
        );
        (registry, executor, scaler)
    }

    fn feed(registry: &ProfileRegistry, servable: &str, inference_ms: u64, invocation_ms: u64) {
        for _ in 0..10 {
            registry.record(
                servable,
                Duration::from_millis(inference_ms),
                Duration::from_millis(invocation_ms),
                1,
            );
        }
    }

    #[test]
    fn heavy_servables_scale_to_the_knee() {
        let (registry, executor, scaler) = setup();
        // 40ms inference behind 3ms overhead: knee ≈ 14.
        feed(&registry, "u/inception", 40, 43);
        executor.scale("u/inception", 1);
        let decisions = scaler.reconcile();
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.current, 1);
        assert!((12..=16).contains(&d.desired), "desired {}", d.desired);
        assert_eq!(executor.replicas("u/inception"), d.desired);
        // Second reconcile is a no-op: already at the knee.
        assert!(scaler.reconcile().is_empty());
    }

    #[test]
    fn cheap_servables_stay_at_min() {
        let (registry, executor, scaler) = setup();
        feed(&registry, "u/util", 0, 3);
        executor.scale("u/util", 8);
        let decisions = scaler.reconcile();
        assert_eq!(decisions[0].desired, 1);
        assert_eq!(executor.replicas("u/util"), 1);
    }

    #[test]
    fn thin_profiles_are_not_acted_on() {
        let (registry, _executor, scaler) = setup();
        registry.record(
            "u/new",
            Duration::from_millis(40),
            Duration::from_millis(43),
            1,
        );
        assert_eq!(scaler.desired("u/new"), None);
        assert!(scaler.reconcile().is_empty());
        assert_eq!(scaler.desired("u/ghost"), None);
    }

    #[test]
    fn max_replicas_caps_the_knee() {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(ParslExecutor::new(Cluster::petrelkube(), 1));
        let scaler = Autoscaler::new(
            registry.clone(),
            Arc::clone(&executor),
            AutoscalePolicy {
                max_replicas: 4,
                ..AutoscalePolicy::default()
            },
        );
        feed(&registry, "u/huge", 400, 403); // knee would be ~134
        scaler.reconcile();
        assert_eq!(executor.replicas("u/huge"), 4);
    }

    use crate::executor::{Executor, HealthPolicy};

    /// Scripted [`ScalingSignals`] fixture: rates and burns by
    /// servable, everything else "no data".
    #[derive(Default)]
    struct Scripted {
        rates: HashMap<String, f64>,
        burns: HashMap<String, f64>,
    }

    impl Scripted {
        fn rate(mut self, servable: &str, rate: f64) -> Self {
            self.rates.insert(servable.to_string(), rate);
            self
        }

        fn burn(mut self, servable: &str, burn: f64) -> Self {
            self.burns.insert(servable.to_string(), burn);
            self
        }
    }

    impl ScalingSignals for Scripted {
        fn arrival_rate(&self, servable: &str, _: Duration) -> Option<f64> {
            self.rates.get(servable).copied()
        }

        fn arrival_trend(&self, _: &str, _: Duration) -> Option<f64> {
            None
        }

        fn queue_wait_p99(&self, _: Duration) -> Option<u64> {
            None
        }

        fn burn_rate(&self, servable: &str, _: Duration) -> Option<f64> {
            self.burns.get(servable).copied()
        }

        fn pool_occupancy(&self, _: Duration) -> Option<f64> {
            None
        }
    }

    const SEC: u64 = 1_000_000_000;

    fn control_setup(policy: ControlPolicy) -> (ProfileRegistry, Arc<ParslExecutor>, Reconciler) {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(ParslExecutor::new(Cluster::petrelkube(), 1));
        let loop_ = Reconciler::new(registry.clone(), Arc::clone(&executor), policy);
        (registry, executor, loop_)
    }

    #[test]
    fn reconciler_scales_up_then_holds_in_the_band() {
        let (registry, executor, ctl) = control_setup(ControlPolicy::default());
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 1);
        // 20 req/s × 100 ms = 2 busy replicas on 1 → util 2.0, up.
        let signals = Scripted::default().rate("u/m", 20.0);
        let applied = ctl.reconcile_at(0, &signals);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].from, 1);
        assert_eq!(applied[0].to, 4); // ceil(2.0 / 0.6)
        assert_eq!(applied[0].reason, DecisionReason::ScaleUp);
        assert_eq!(executor.replicas("u/m"), 4);
        // Same steady load after the resize: util 0.5 sits inside the
        // (0.3, 0.85) band — no flapping by construction.
        assert!(ctl.reconcile_at(60 * SEC, &signals).is_empty());
        assert!(ctl.reconcile_at(120 * SEC, &signals).is_empty());
        assert_eq!(ctl.decisions().len(), 1);
    }

    #[test]
    fn cooldown_gates_consecutive_resizes() {
        let (registry, executor, ctl) = control_setup(ControlPolicy::default());
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 1);
        assert_eq!(
            ctl.reconcile_at(0, &Scripted::default().rate("u/m", 20.0))
                .len(),
            1
        );
        // Load doubles one second later: still inside the 30 s
        // cooldown, so the loop must sit on its hands…
        let hot = Scripted::default().rate("u/m", 60.0);
        assert!(ctl.reconcile_at(SEC, &hot).is_empty());
        assert_eq!(executor.replicas("u/m"), 4);
        // …and act once the window has passed.
        let applied = ctl.reconcile_at(31 * SEC, &hot);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].to, 10); // ceil(6.0 / 0.6)
    }

    #[test]
    fn low_utilization_scales_down_to_target() {
        let (registry, executor, ctl) = control_setup(ControlPolicy::default());
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 8);
        // 5 req/s × 100 ms = 0.5 busy on 8 replicas → util 0.0625.
        let applied = ctl.reconcile_at(0, &Scripted::default().rate("u/m", 5.0));
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].reason, DecisionReason::ScaleDown);
        assert_eq!(applied[0].to, 1);
        assert_eq!(executor.replicas("u/m"), 1);
    }

    #[test]
    fn idle_parks_to_warm_pool_and_wake_bypasses_cooldown() {
        let policy = ControlPolicy {
            idle_after: Duration::from_secs(10),
            warm_pool: 0,
            ..ControlPolicy::default()
        };
        let (registry, executor, ctl) = control_setup(policy);
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 2);
        let quiet = Scripted::default().rate("u/m", 0.0);
        // Idle clock starts on the first quiet pass; nothing yet.
        assert!(ctl.reconcile_at(0, &quiet).is_empty());
        assert!(ctl.reconcile_at(5 * SEC, &quiet).is_empty());
        // Full idle window elapsed: park to zero.
        let parked = ctl.reconcile_at(10 * SEC, &quiet);
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].reason, DecisionReason::IdlePark);
        assert_eq!(parked[0].to, 0);
        assert_eq!(executor.replicas("u/m"), 0);
        // Traffic returns 2 s later — far inside the 30 s cooldown —
        // and the wake must not wait it out.
        let woken = ctl.reconcile_at(12 * SEC, &Scripted::default().rate("u/m", 5.0));
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].reason, DecisionReason::Wake);
        assert_eq!(executor.replicas("u/m"), 1);
    }

    #[test]
    fn burn_breach_buys_a_replica_even_inside_the_band() {
        let (registry, executor, ctl) = control_setup(ControlPolicy::default());
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 4);
        // util 0.5 is inside the band, but the SLO is burning.
        let burning = Scripted::default().rate("u/m", 20.0).burn("u/m", 3.0);
        let applied = ctl.reconcile_at(0, &burning);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].to, 5);
        assert_eq!(applied[0].reason, DecisionReason::ScaleUp);
    }

    #[test]
    fn no_signal_history_means_no_action() {
        let (registry, executor, ctl) = control_setup(ControlPolicy::default());
        feed(&registry, "u/m", 100, 103);
        executor.scale("u/m", 3);
        // Scripted fixture has no entry for u/m: rate is None.
        assert!(ctl.reconcile_at(0, &Scripted::default()).is_empty());
        assert_eq!(executor.replicas("u/m"), 3);
    }

    #[test]
    fn decision_log_is_byte_identical_across_replays() {
        let run = || {
            let (registry, executor, ctl) = control_setup(ControlPolicy::default());
            feed(&registry, "u/m", 100, 103);
            executor.scale("u/m", 1);
            ctl.reconcile_at(0, &Scripted::default().rate("u/m", 20.0));
            ctl.reconcile_at(31 * SEC, &Scripted::default().rate("u/m", 60.0));
            ctl.reconcile_at(62 * SEC, &Scripted::default().rate("u/m", 5.0));
            ctl.log_text()
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(
            first,
            "t=0.000s u/m 1->4 scale_up\n\
             t=31.000s u/m 4->10 scale_up\n\
             t=62.000s u/m 10->1 scale_down\n"
        );
    }

    fn quarantine_one_replica(executor: &ParslExecutor, servable: &str) {
        use crate::servable::servable_fn;
        use crate::value::Value;
        let failing = servable_fn(|_| Err("kaboom".into()));
        let _ = executor.execute(servable, &failing, &[Value::Null]);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while executor.quarantined(servable) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            executor.quarantined(servable),
            1,
            "replica never quarantined"
        );
    }

    #[test]
    fn reconciler_never_counts_quarantined_replicas_as_capacity() {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(
            ParslExecutor::new(Cluster::petrelkube(), 1).with_health(Some(HealthPolicy {
                quarantine_after: 1,
                quarantine_for: Duration::from_secs(5),
            })),
        );
        let ctl = Reconciler::new(
            registry.clone(),
            Arc::clone(&executor),
            ControlPolicy::default(),
        );
        feed(&registry, "u/sick", 10, 13);
        quarantine_one_replica(&executor, "u/sick");
        // Tiny demand says one replica is plenty — but that replica is
        // quarantined, so the loop must buy a healthy one.
        let applied = ctl.reconcile_at(0, &Scripted::default().rate("u/sick", 5.0));
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].to, 2);
        assert_eq!(applied[0].reason, DecisionReason::ScaleUp);
    }

    #[test]
    fn autoscaler_clamps_desired_against_quarantine() {
        let registry = ProfileRegistry::new();
        let executor = Arc::new(
            ParslExecutor::new(Cluster::petrelkube(), 1).with_health(Some(HealthPolicy {
                quarantine_after: 1,
                quarantine_for: Duration::from_secs(5),
            })),
        );
        let scaler = Autoscaler::new(
            registry.clone(),
            Arc::clone(&executor),
            AutoscalePolicy::default(),
        );
        // Cheap profile: the knee says 1 replica.
        feed(&registry, "u/sick", 0, 3);
        quarantine_one_replica(&executor, "u/sick");
        let decisions = scaler.reconcile();
        assert_eq!(decisions.len(), 1);
        assert_eq!(
            decisions[0].desired, 2,
            "quarantined replica counted as capacity"
        );
        assert_eq!(executor.replicas("u/sick"), 2);
    }

    #[test]
    fn telemetry_signals_adapt_the_query_view() {
        use dlhub_obs::Obs;

        let obs = Obs::new();
        obs.enable_telemetry_manual(Duration::from_secs(1));
        let step = 1_000_000_000u64;
        for tick in 0..5u64 {
            obs.metrics.series("u/inception").requests.add(20);
            obs.metrics.gauge("async_pool_active").set(3);
            obs.metrics
                .histogram("broker_queue_wait_ns")
                .record(2_000_000);
            obs.telemetry.sample_now(tick * step);
        }
        let signals = TelemetrySignals::new(obs.telemetry.signals().unwrap());
        let w = Duration::from_secs(4);
        let arrival = signals.arrival_rate("u/inception", w).unwrap();
        assert!((arrival - 20.0).abs() < 1e-9, "{arrival}");
        // Constant arrivals: trend is flat.
        let trend = signals.arrival_trend("u/inception", w).unwrap();
        assert!(trend.abs() < 1e-6, "{trend}");
        assert!(signals.queue_wait_p99(w).unwrap() >= 2_000_000);
        assert_eq!(signals.pool_occupancy(w), Some(3.0));
        // No SLO registered: burn rate reports no data, not zero.
        assert_eq!(signals.burn_rate("u/inception", w), None);
    }

    #[test]
    fn signals_report_none_without_history() {
        use dlhub_obs::Obs;

        let obs = Obs::new();
        obs.enable_telemetry_manual(Duration::from_secs(1));
        let signals = TelemetrySignals::new(obs.telemetry.signals().unwrap());
        let w = Duration::from_secs(60);
        assert_eq!(signals.arrival_rate("u/ghost", w), None);
        assert_eq!(signals.queue_wait_p99(w), None);
        assert_eq!(signals.pool_occupancy(w), None);
        assert_eq!(signals.inner().arrival_trend("u/ghost", w), None);
    }
}
