//! Request batching (§V-B3).
//!
//! "DLHub support for batch queries is designed to improve overall
//! throughput by amortizing system overheads over many requests." The
//! [`Batcher`] coalesces concurrently submitted single requests into
//! one dispatched task, flushing when either `max_batch` items are
//! pending or the oldest item has waited `max_delay`.
//!
//! ```
//! use dlhub_core::batch::Batcher;
//! use dlhub_core::value::Value;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // Dispatch just echoes the coalesced inputs.
//! let batcher = Batcher::new(8, Duration::from_millis(2), Arc::new(Ok));
//! assert_eq!(batcher.submit(Value::Int(7)).unwrap(), Value::Int(7));
//! ```

use crate::error::DlhubError;
use crate::profile::ProfileRegistry;
use crate::value::Value;
use crossbeam::channel;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback that dispatches one coalesced batch and returns outputs in
/// input order.
pub type BatchDispatch = Arc<dyn Fn(Vec<Value>) -> Result<Vec<Value>, DlhubError> + Send + Sync>;

/// How the flush threshold is chosen.
///
/// `Adaptive` implements the paper's proposed extension (§V-B3): "use
/// such servable profiles to design adaptive batching algorithms" —
/// the threshold is recomputed from the servable's observed
/// inference/overhead profile so cheap servables batch aggressively
/// while expensive ones flush early to keep latency down.
#[derive(Clone)]
pub enum BatchSizing {
    /// Always flush at `n` pending items.
    Fixed(usize),
    /// Derive the threshold from the live [`ProfileRegistry`].
    Adaptive {
        /// Source of observed servable costs.
        registry: ProfileRegistry,
        /// Which servable's profile to consult.
        servable: String,
        /// Acceptable overhead share of per-item cost (e.g. 0.1 =
        /// overhead may be 10% of a batch item's total cost).
        target_overhead_fraction: f64,
        /// Hard upper bound on the batch size.
        cap: usize,
    },
}

impl BatchSizing {
    fn current_max(&self) -> usize {
        match self {
            BatchSizing::Fixed(n) => (*n).max(1),
            BatchSizing::Adaptive {
                registry,
                servable,
                target_overhead_fraction,
                cap,
            } => registry
                .get(servable)
                .map(|p| p.suggested_batch(*target_overhead_fraction, *cap))
                // No profile yet: start conservatively at 1 so the
                // first flush seeds the profile quickly.
                .unwrap_or(1),
        }
    }
}

struct Pending {
    input: Value,
    reply: channel::Sender<Result<Value, DlhubError>>,
}

struct State {
    pending: Vec<Pending>,
    oldest: Option<Instant>,
}

/// Coalesces concurrent requests into batches.
pub struct Batcher {
    state: Arc<Mutex<State>>,
    wakeup: Arc<Condvar>,
    shutdown: Arc<AtomicBool>,
    flusher: Option<std::thread::JoinHandle<()>>,
    sizing: BatchSizing,
}

impl Batcher {
    /// Create a batcher flushing at `max_batch` items or `max_delay`
    /// of waiting, dispatching through `dispatch`.
    pub fn new(max_batch: usize, max_delay: Duration, dispatch: BatchDispatch) -> Self {
        Self::with_sizing(BatchSizing::Fixed(max_batch), max_delay, dispatch)
    }

    /// Create a batcher with an explicit sizing policy (fixed or
    /// profile-adaptive).
    pub fn with_sizing(sizing: BatchSizing, max_delay: Duration, dispatch: BatchDispatch) -> Self {
        Self::with_wait_sink(sizing, max_delay, dispatch, Arc::new(AtomicU64::new(0)))
    }

    /// Like [`Batcher::with_sizing`], but before each dispatch the
    /// flusher stores how long the flushed batch's oldest item waited
    /// (nanoseconds) into `wait_sink`. The dispatch callback reads the
    /// sink to attribute batch-wait time on its own flush — the store
    /// happens-before the dispatch call on the same flusher thread.
    pub fn with_wait_sink(
        sizing: BatchSizing,
        max_delay: Duration,
        dispatch: BatchDispatch,
        wait_sink: Arc<AtomicU64>,
    ) -> Self {
        let state = Arc::new(Mutex::new(State {
            pending: Vec::new(),
            oldest: None,
        }));
        let wakeup = Arc::new(Condvar::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let flusher = {
            let state = Arc::clone(&state);
            let wakeup = Arc::clone(&wakeup);
            let shutdown = Arc::clone(&shutdown);
            let sizing = sizing.clone();
            std::thread::Builder::new()
                .name("dlhub-batcher".into())
                .spawn(move || loop {
                    let (batch, waited): (Vec<Pending>, Duration) = {
                        let mut st = state.lock();
                        loop {
                            if shutdown.load(Ordering::Relaxed) && st.pending.is_empty() {
                                return;
                            }
                            let due = match st.oldest {
                                Some(t) => {
                                    st.pending.len() >= sizing.current_max()
                                        || t.elapsed() >= max_delay
                                        || shutdown.load(Ordering::Relaxed)
                                }
                                None => false,
                            };
                            if due {
                                let waited =
                                    st.oldest.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                                st.oldest = None;
                                break (std::mem::take(&mut st.pending), waited);
                            }
                            match st.oldest {
                                Some(t) => {
                                    let deadline = t + max_delay;
                                    wakeup.wait_until(&mut st, deadline);
                                }
                                None => {
                                    wakeup.wait_for(&mut st, Duration::from_millis(50));
                                }
                            }
                        }
                    };
                    wait_sink.store(waited.as_nanos() as u64, Ordering::Relaxed);
                    let inputs: Vec<Value> = batch.iter().map(|p| p.input.clone()).collect();
                    match (dispatch)(inputs) {
                        Ok(outputs) if outputs.len() == batch.len() => {
                            for (p, out) in batch.into_iter().zip(outputs) {
                                let _ = p.reply.send(Ok(out));
                            }
                        }
                        Ok(_) => {
                            for p in batch {
                                let _ = p.reply.send(Err(DlhubError::Transport(
                                    "batch output count mismatch".into(),
                                )));
                            }
                        }
                        Err(e) => {
                            for p in batch {
                                let _ = p.reply.send(Err(e.clone()));
                            }
                        }
                    }
                })
                .expect("spawn batcher flusher")
        };
        Batcher {
            state,
            wakeup,
            shutdown,
            flusher: Some(flusher),
            sizing,
        }
    }

    /// Submit one input; blocks until its batch is dispatched and the
    /// matching output arrives.
    pub fn submit(&self, input: Value) -> Result<Value, DlhubError> {
        let (tx, rx) = channel::bounded(1);
        {
            let mut st = self.state.lock();
            if self.shutdown.load(Ordering::Relaxed) {
                return Err(DlhubError::Transport("batcher shut down".into()));
            }
            st.pending.push(Pending { input, reply: tx });
            if st.oldest.is_none() {
                st.oldest = Some(Instant::now());
            }
            if st.pending.len() >= self.sizing.current_max() {
                self.wakeup.notify_all();
            }
        }
        rx.recv()
            .map_err(|_| DlhubError::Transport("batcher dropped request".into()))?
    }

    /// Items currently waiting for a flush.
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.wakeup.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Dispatch that records batch sizes and echoes inputs.
    fn counting_dispatch(batches: Arc<Mutex<Vec<usize>>>) -> BatchDispatch {
        Arc::new(move |inputs: Vec<Value>| {
            batches.lock().push(inputs.len());
            Ok(inputs)
        })
    }

    #[test]
    fn single_request_flushes_after_delay() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Batcher::new(
            100,
            Duration::from_millis(10),
            counting_dispatch(batches.clone()),
        );
        let start = Instant::now();
        let out = b.submit(Value::Int(7)).unwrap();
        assert_eq!(out, Value::Int(7));
        assert!(start.elapsed() >= Duration::from_millis(9));
        assert_eq!(*batches.lock(), vec![1]);
    }

    #[test]
    fn concurrent_requests_coalesce() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Arc::new(Batcher::new(
            100,
            Duration::from_millis(30),
            counting_dispatch(batches.clone()),
        ));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.submit(Value::Int(i)).unwrap())
            })
            .collect();
        let outs: Vec<Value> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every caller got its own value back.
        let mut got: Vec<i64> = outs
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                _ => panic!("unexpected"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // Fewer dispatches than requests (coalescing happened).
        let total_batches = batches.lock().len();
        assert!(total_batches < 8, "no coalescing: {total_batches} batches");
    }

    #[test]
    fn max_batch_triggers_early_flush() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b = Arc::new(Batcher::new(
            4,
            Duration::from_secs(10), // far longer than the test
            counting_dispatch(batches.clone()),
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.submit(Value::Int(i)).unwrap())
            })
            .collect();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        // Flush happened at max_batch, not after the 10s delay.
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(*batches.lock(), vec![4]);
    }

    #[test]
    fn dispatch_errors_propagate_to_all_callers() {
        let b = Arc::new(Batcher::new(
            2,
            Duration::from_millis(5),
            Arc::new(|_| Err(DlhubError::Timeout)),
        ));
        let h = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.submit(Value::Null))
        };
        let r1 = b.submit(Value::Null);
        let r2 = h.join().unwrap();
        assert_eq!(r1.unwrap_err(), DlhubError::Timeout);
        assert_eq!(r2.unwrap_err(), DlhubError::Timeout);
    }

    #[test]
    fn output_count_mismatch_is_an_error() {
        let b = Batcher::new(1, Duration::from_millis(5), Arc::new(|_| Ok(vec![])));
        assert!(matches!(
            b.submit(Value::Null).unwrap_err(),
            DlhubError::Transport(_)
        ));
    }

    #[test]
    fn adaptive_sizing_starts_at_one_then_grows() {
        let registry = ProfileRegistry::new();
        let sizing = BatchSizing::Adaptive {
            registry: registry.clone(),
            servable: "m".into(),
            target_overhead_fraction: 0.1,
            cap: 64,
        };
        // No profile yet: conservative threshold of 1.
        assert_eq!(sizing.current_max(), 1);
        // Cheap servable with heavy overhead: wants the cap.
        registry.record("m", Duration::from_micros(5), Duration::from_millis(3), 1);
        assert_eq!(sizing.current_max(), 64);
    }

    #[test]
    fn adaptive_sizing_keeps_expensive_servables_small() {
        let registry = ProfileRegistry::new();
        registry.record(
            "inception",
            Duration::from_millis(40),
            Duration::from_millis(43),
            1,
        );
        let sizing = BatchSizing::Adaptive {
            registry,
            servable: "inception".into(),
            target_overhead_fraction: 0.1,
            cap: 64,
        };
        // overhead 3ms, inference 40ms: a single item already keeps
        // overhead under ~7%, so the threshold stays 1.
        assert_eq!(sizing.current_max(), 1);
    }

    #[test]
    fn adaptive_batcher_coalesces_after_profile_seeds() {
        let registry = ProfileRegistry::new();
        let batches = Arc::new(Mutex::new(Vec::new()));
        let dispatch: BatchDispatch = {
            let registry = registry.clone();
            let batches = Arc::clone(&batches);
            Arc::new(move |inputs: Vec<Value>| {
                batches.lock().push(inputs.len());
                // Simulate a cheap servable behind a 2ms dispatch and
                // feed the observation back into the profile, exactly
                // like the Management Service does.
                registry.record(
                    "cheap",
                    Duration::from_micros(inputs.len() as u64),
                    Duration::from_millis(2),
                    inputs.len(),
                );
                Ok(inputs)
            })
        };
        let b = Arc::new(Batcher::with_sizing(
            BatchSizing::Adaptive {
                registry,
                servable: "cheap".into(),
                target_overhead_fraction: 0.1,
                cap: 100,
            },
            Duration::from_millis(15),
            dispatch,
        ));
        // Seed the profile with one request…
        b.submit(Value::Int(0)).unwrap();
        // …then a concurrent burst must coalesce under the grown
        // threshold.
        let handles: Vec<_> = (1..9)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.submit(Value::Int(i)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sizes = batches.lock().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 9);
        assert!(
            sizes.len() < 9,
            "burst should coalesce once profiled: {sizes:?}"
        );
    }

    #[test]
    fn wait_sink_reports_the_oldest_items_wait() {
        let sink = Arc::new(AtomicU64::new(0));
        let b = Batcher::with_wait_sink(
            BatchSizing::Fixed(100),
            Duration::from_millis(10),
            Arc::new(Ok),
            Arc::clone(&sink),
        );
        b.submit(Value::Int(1)).unwrap();
        // The lone item sat the full max_delay before flushing.
        let waited = sink.load(Ordering::SeqCst);
        assert!(waited >= 9_000_000, "waited {waited}ns");
    }

    #[test]
    fn drop_flushes_outstanding_work() {
        static DISPATCHED: AtomicUsize = AtomicUsize::new(0);
        let b = Arc::new(Batcher::new(
            100,
            Duration::from_secs(10),
            Arc::new(|inputs: Vec<Value>| {
                DISPATCHED.fetch_add(inputs.len(), Ordering::SeqCst);
                Ok(inputs)
            }),
        ));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.submit(Value::Int(1)));
        // Give the submit a moment to enqueue, then drop the batcher:
        // the flusher must dispatch the pending item on shutdown
        // rather than strand the caller.
        std::thread::sleep(Duration::from_millis(30));
        drop(b);
        assert_eq!(h.join().unwrap().unwrap(), Value::Int(1));
        assert_eq!(DISPATCHED.load(Ordering::SeqCst), 1);
    }
}
