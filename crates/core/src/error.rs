//! Unified error type.

use std::fmt;

/// Errors surfaced by the DLHub public API.
#[derive(Debug, Clone, PartialEq)]
pub enum DlhubError {
    /// Authentication/authorization failure.
    Auth(String),
    /// The caller's token lacks access to the servable (or it does not
    /// exist — the two are indistinguishable by design, so restricted
    /// models do not leak their existence).
    NotFound(String),
    /// Publication rejected (schema violation, dependency conflict…).
    Publication(String),
    /// A servable failed while executing.
    Execution {
        /// Servable that failed.
        servable: String,
        /// Failure description.
        message: String,
    },
    /// The input did not match the servable's declared input type.
    InvalidInput {
        /// Servable that rejected the input.
        servable: String,
        /// What was expected.
        expected: String,
    },
    /// Queueing/transport failure between MS and Task Managers.
    Transport(String),
    /// The request timed out waiting for a Task Manager.
    Timeout,
    /// The request's retry budget (or deadline) ran out; every attempt
    /// failed, the last one with `last_error`.
    Exhausted {
        /// Servable the request targeted.
        servable: String,
        /// Attempts made before giving up (>= 1).
        attempts: u32,
        /// The final attempt's failure.
        last_error: String,
    },
    /// The admission controller shed this request before dispatch: the
    /// service is at capacity (bounded-queue occupancy, queue-wait or
    /// burn-rate breach) or the caller's tenant is over its fair share.
    /// 429-style: the caller should back off for `retry_after_ms`
    /// before retrying. Distinct from [`DlhubError::Exhausted`] — no
    /// attempt was ever dispatched, so nothing deep in the stack timed
    /// out.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// No executor can run this servable type.
    NoExecutor(String),
    /// Async task id unknown — it was never registered with this
    /// service.
    UnknownTask(String),
    /// Async task id belonged to a task whose record has since been
    /// expired (forgotten); its result is gone but the id was real.
    ExpiredTask(String),
    /// Pipeline definition invalid (empty, or references missing
    /// servables).
    Pipeline(String),
}

impl fmt::Display for DlhubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlhubError::Auth(m) => write!(f, "auth: {m}"),
            DlhubError::NotFound(s) => write!(f, "no such servable: {s}"),
            DlhubError::Publication(m) => write!(f, "publication rejected: {m}"),
            DlhubError::Execution { servable, message } => {
                write!(f, "execution failed in {servable}: {message}")
            }
            DlhubError::InvalidInput { servable, expected } => {
                write!(f, "invalid input for {servable}: expected {expected}")
            }
            DlhubError::Transport(m) => write!(f, "transport: {m}"),
            DlhubError::Timeout => write!(f, "request timed out"),
            DlhubError::Exhausted {
                servable,
                attempts,
                last_error,
            } => write!(
                f,
                "request to {servable} exhausted after {attempts} attempts: {last_error}"
            ),
            DlhubError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            DlhubError::NoExecutor(t) => write!(f, "no executor for model type {t}"),
            DlhubError::UnknownTask(id) => write!(f, "unknown task: {id}"),
            DlhubError::ExpiredTask(id) => write!(f, "task expired: {id}"),
            DlhubError::Pipeline(m) => write!(f, "invalid pipeline: {m}"),
        }
    }
}

impl DlhubError {
    /// How many dispatch attempts stand behind this error: the recorded
    /// count for [`DlhubError::Exhausted`], 0 for a shed request
    /// ([`DlhubError::Overloaded`] never dispatched anything), 1 for
    /// everything else (an error that was not retried).
    pub fn attempts(&self) -> u32 {
        match self {
            DlhubError::Exhausted { attempts, .. } => *attempts,
            DlhubError::Overloaded { .. } => 0,
            _ => 1,
        }
    }
}

impl std::error::Error for DlhubError {}

impl From<dlhub_auth::AuthError> for DlhubError {
    fn from(e: dlhub_auth::AuthError) -> Self {
        DlhubError::Auth(e.to_string())
    }
}

impl From<dlhub_queue::QueueError> for DlhubError {
    fn from(e: dlhub_queue::QueueError) -> Self {
        DlhubError::Transport(e.to_string())
    }
}

impl From<dlhub_queue::RpcError> for DlhubError {
    fn from(e: dlhub_queue::RpcError) -> Self {
        match e {
            dlhub_queue::RpcError::Timeout => DlhubError::Timeout,
            other => DlhubError::Transport(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DlhubError::Execution {
            servable: "m".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "execution failed in m: boom");
        assert!(DlhubError::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn conversions_preserve_meaning() {
        let e: DlhubError = dlhub_queue::RpcError::Timeout.into();
        assert_eq!(e, DlhubError::Timeout);
        let e: DlhubError = dlhub_queue::QueueError::NoSuchTopic("t".into()).into();
        assert!(matches!(e, DlhubError::Transport(_)));
    }
}
