//! The flexible executor model (§IV-C).
//!
//! "DLHub … implements an arbitrary executor model that currently
//! supports three serving systems: TensorFlow Serving, SageMaker, and
//! a general-purpose Parsl executor." Inference tasks go to the
//! serving executor matching the model type; everything else (pre/post
//! processing functions) goes to the Parsl executor.

use crate::servable::{ModelType, Servable};
use crate::value::Value;
use crossbeam::channel;
use dlhub_container::{Cluster, Digest, PodSpec};
use dlhub_fault::{site, FaultHandle, FaultKind};
use dlhub_obs::{Counter, Gauge, Histogram, Obs, ProfilerHandle, SpanRecord, TraceContext};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Executors run batches of inputs against one servable and report
/// per-input inference times (the innermost measurement point, §V-A).
pub trait Executor: Send + Sync {
    /// Executor name for routing diagnostics.
    fn name(&self) -> &str;

    /// Whether this executor can serve the given model family.
    fn supports(&self, model_type: ModelType) -> bool;

    /// Execute all `inputs` against `servable`, returning outputs in
    /// order plus per-input inference durations.
    fn execute(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
    ) -> Result<(Vec<Value>, Vec<Duration>), String>;

    /// Number of tasks dispatched so far.
    fn dispatched(&self) -> u64;

    /// [`Executor::execute`] plus span recording: when an observability
    /// handle and a parent context are supplied, record one
    /// `inference` span per input under the parent (the Task Manager's
    /// invocation span).
    ///
    /// The default implementation runs `execute` and reconstructs
    /// end-anchored spans from the reported durations, which is exact
    /// for executors that run inputs sequentially inline. Executors
    /// with replica pools should override it to record spans on the
    /// replica threads themselves (see [`ParslExecutor`]).
    fn execute_traced(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
        obs: Option<&Obs>,
        parent: Option<TraceContext>,
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        let result = self.execute(servable_id, servable, inputs);
        if let (Some(obs), Some(parent), Ok((_, times))) = (obs, parent, &result) {
            if obs.tracer.enabled() {
                let end_ns = dlhub_obs::now_ns();
                for time in times {
                    obs.tracer.record(SpanRecord {
                        trace: parent.trace,
                        span: 0, // minted by the tracer
                        parent: parent.span,
                        name: "inference",
                        start_ns: end_ns.saturating_sub(time.as_nanos() as u64),
                        end_ns,
                        attrs: vec![
                            ("servable", servable_id.to_string()),
                            ("executor", self.name().to_string()),
                        ],
                    });
                }
            }
        }
        result
    }

    /// Zero-copy variant of [`Executor::execute_traced`]: the caller
    /// hands over shared ownership of the decoded inputs, so pooled
    /// executors can fan jobs out to replica threads without cloning
    /// `Value` trees. The default delegates to `execute_traced` (inline
    /// executors read the values in place and never needed the copy).
    fn execute_shared(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: Arc<Vec<Value>>,
        obs: Option<&Obs>,
        parent: Option<TraceContext>,
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        self.execute_traced(servable_id, servable, &inputs, obs, parent)
    }

    /// Resize a servable's replica pool; returns the applied count.
    /// Inline executors (TF-Serving, SageMaker) have no pools: the
    /// default ignores the request and reports one always-on server.
    /// Pooled executors override this (see [`ParslExecutor::scale`]).
    fn scale(&self, _servable_id: &str, _replicas: usize) -> usize {
        1
    }

    /// Current replica count for a servable; inline executors always
    /// report one.
    fn replicas(&self, _servable_id: &str) -> usize {
        1
    }

    /// Replicas of the servable currently quarantined by health
    /// supervision; executors without supervision report zero.
    fn quarantined(&self, _servable_id: &str) -> usize {
        0
    }
}

/// Trace baggage attached to a pooled job so the replica thread can
/// record its own exact `inference` span (with the replica's identity)
/// instead of a reconstructed one.
struct JobTrace {
    tracer: dlhub_obs::Tracer,
    parent: TraceContext,
    servable_id: String,
}

struct Job {
    servable: Arc<dyn Servable>,
    /// The whole batch, shared by reference across every job; each job
    /// reads its own `inputs[index]` in place. Dispatching a batch of
    /// `n` inputs is `n` refcount bumps, not `n` deep `Value` clones.
    inputs: Arc<Vec<Value>>,
    reply: channel::Sender<(usize, Result<Value, String>, Duration)>,
    index: usize,
    trace: Option<JobTrace>,
    /// Obs-clock stamp taken when the job entered the pool queue, so
    /// the replica can report its queue wait on the inference span.
    queued_ns: u64,
}

impl Job {
    fn input(&self) -> &Value {
        &self.inputs[self.index]
    }
}

/// Replica health thresholds: a replica accumulating
/// `quarantine_after` *consecutive* failures is quarantined — it stops
/// pulling work for `quarantine_for`, then restarts with a clean
/// record. Models pulling a crashing pod out of the load-balancer
/// rotation and rescheduling it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Consecutive failures before a replica is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined replica sits out before restarting.
    pub quarantine_for: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_after: 3,
            quarantine_for: Duration::from_millis(250),
        }
    }
}

/// Health gauges shared by every replica pool of one executor,
/// installed by [`ParslExecutor::attach_obs`].
struct HealthMetrics {
    quarantined: Arc<Gauge>,
    restarts: Arc<Counter>,
    /// Wall time to bring a pool from zero replicas to serving, fed by
    /// [`ParslExecutor::scale`] on every cold start.
    cold_start: Arc<Histogram>,
    /// Replica threads mark `replica.execute` frames while running
    /// user code, so profiler samples attribute worker CPU.
    profiler: ProfilerHandle,
}

struct Pool {
    sender: channel::Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
    replicas: usize,
    /// Replicas of *this* pool sitting in quarantine right now. The
    /// reconciler reads it per servable so a quarantine + scale-down
    /// cannot count sick replicas as capacity; the global
    /// `replicas_quarantined` gauge still aggregates across pools.
    quarantined: Arc<AtomicUsize>,
}

impl Pool {
    fn spawn(
        servable_id: &str,
        replicas: usize,
        faults: FaultHandle,
        health: Option<HealthPolicy>,
        metrics: Arc<OnceLock<HealthMetrics>>,
    ) -> Pool {
        let (sender, receiver) = channel::unbounded::<Job>();
        let quarantined = Arc::new(AtomicUsize::new(0));
        let workers = (0..replicas)
            .map(|i| {
                let rx = receiver.clone();
                let faults = faults.clone();
                let metrics = Arc::clone(&metrics);
                let pool_quarantined = Arc::clone(&quarantined);
                std::thread::Builder::new()
                    .name(format!("pod-{servable_id}-{i}"))
                    .spawn(move || {
                        // Each worker models one pod replica: pull the
                        // next request (IPP-style load balancing across
                        // the pool), run the servable, reply. A panic
                        // inside user code must not kill the pod — the
                        // real system's container would trap the crash
                        // and report it — so unwind is caught and
                        // surfaced as an execution error.
                        let mut strikes = 0u32;
                        while let Ok(job) = rx.recv() {
                            let _frame = metrics.get().map(|m| m.profiler.frame("replica.execute"));
                            let start = Instant::now();
                            let start_ns = dlhub_obs::now_ns();
                            let injected = faults.decide(site::REPLICA);
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    match injected {
                                        // Slow and Hang delay the real
                                        // work; the others replace it.
                                        Some(fault)
                                            if matches!(
                                                fault.kind,
                                                FaultKind::Slow | FaultKind::Hang
                                            ) =>
                                        {
                                            std::thread::sleep(fault.delay);
                                            job.servable.run(job.input())
                                        }
                                        Some(fault) if fault.kind == FaultKind::Panic => {
                                            panic!("injected replica panic")
                                        }
                                        Some(_) => Err("injected replica fault".to_string()),
                                        None => job.servable.run(job.input()),
                                    }
                                }))
                                .unwrap_or_else(|panic| {
                                    let msg = panic
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| panic.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "unknown panic".into());
                                    Err(format!("servable panicked: {msg}"))
                                });
                            let inference = start.elapsed();
                            if let Some(trace) = job.trace {
                                trace.tracer.record(SpanRecord {
                                    trace: trace.parent.trace,
                                    span: 0, // minted by the tracer
                                    parent: trace.parent.span,
                                    name: "inference",
                                    start_ns,
                                    end_ns: dlhub_obs::now_ns(),
                                    attrs: vec![
                                        ("servable", trace.servable_id),
                                        ("replica", i.to_string()),
                                        ("executor", "parsl".to_string()),
                                        ("queued_ns", job.queued_ns.to_string()),
                                    ],
                                });
                            }
                            let failed = result.is_err();
                            let _ = job.reply.send((job.index, result, inference));
                            // Health state machine: healthy → suspect
                            // (strikes accumulating) → quarantined →
                            // restarted. Success wipes the record.
                            if let Some(policy) = health {
                                if !failed {
                                    strikes = 0;
                                } else {
                                    strikes += 1;
                                    if strikes >= policy.quarantine_after {
                                        pool_quarantined.fetch_add(1, Ordering::Relaxed);
                                        if let Some(m) = metrics.get() {
                                            m.quarantined.add(1);
                                        }
                                        std::thread::sleep(policy.quarantine_for);
                                        strikes = 0;
                                        pool_quarantined.fetch_sub(1, Ordering::Relaxed);
                                        if let Some(m) = metrics.get() {
                                            m.quarantined.add(-1);
                                            m.restarts.inc();
                                        }
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn pod worker")
            })
            .collect();
        Pool {
            sender,
            workers,
            replicas,
            quarantined,
        }
    }

    fn shutdown(self) {
        drop(self.sender);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// The general-purpose Parsl executor (§IV-C): deploys `n` pod
/// replicas per servable on the cluster, load-balances requests across
/// them, and supports *any* servable type — the property that lets
/// DLHub serve "any Python 3-compatible model or processing function".
pub struct ParslExecutor {
    cluster: Cluster,
    // Read-mostly: every dispatch reads the pool map, while writes
    // only happen on deploy/rescale. An RwLock lets concurrent
    // requests for different (or the same) servables share the map.
    pools: RwLock<HashMap<String, Pool>>,
    default_replicas: usize,
    dispatched: AtomicU64,
    faults: FaultHandle,
    health: Option<HealthPolicy>,
    /// How long a dispatch waits for all replica replies before
    /// declaring the batch wedged (a hung replica must not wedge the
    /// Task Manager consumer forever).
    reply_timeout: Duration,
    metrics: Arc<OnceLock<HealthMetrics>>,
}

impl ParslExecutor {
    /// Create over a cluster with a default replica count per
    /// servable ("a number configurable in the Management Service").
    pub fn new(cluster: Cluster, default_replicas: usize) -> Self {
        ParslExecutor {
            cluster,
            pools: RwLock::new(HashMap::new()),
            default_replicas: default_replicas.max(1),
            dispatched: AtomicU64::new(0),
            faults: FaultHandle::default(),
            health: Some(HealthPolicy::default()),
            reply_timeout: Duration::from_secs(60),
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Inject faults at the [`dlhub_fault::site::REPLICA`] site of
    /// every replica this executor spawns *afterwards*. Builder-style;
    /// call before the first dispatch.
    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the replica health policy (`None` disables quarantine
    /// entirely). Builder-style; call before the first dispatch.
    pub fn with_health(mut self, health: Option<HealthPolicy>) -> Self {
        self.health = health;
        self
    }

    /// Bound how long one dispatch waits for its replica replies.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Register this executor's health metrics (`replicas_quarantined`
    /// gauge, `replica_restarts_total` counter) with a shared
    /// observability handle, and mark replica work with profiler
    /// frames. Idempotent; replicas report nothing until this is
    /// called.
    pub fn attach_obs(&self, obs: &Obs) {
        let _ = self.metrics.set(HealthMetrics {
            quarantined: obs.metrics.gauge_with_help(
                "replicas_quarantined",
                "Replicas currently quarantined after repeated failures",
            ),
            restarts: obs.metrics.counter_with_help(
                "replica_restarts_total",
                "Replica processes restarted by health supervision",
            ),
            cold_start: obs.metrics.histogram_with_help(
                "cold_start_ns",
                "Wall time to bring a replica pool from zero to serving",
            ),
            profiler: obs.profile.clone(),
        });
    }

    /// Scale a servable's replica pool, mirroring the change into the
    /// cluster's Deployment. Returns the new replica count.
    ///
    /// `replicas == 0` is scale-to-zero: the Deployment's pods are
    /// terminated and the pool is dropped. The next dispatch (or the
    /// next non-zero `scale`) recreates the pool and pays a cold start,
    /// recorded in the `cold_start_ns` histogram when observability is
    /// attached.
    pub fn scale(&self, servable_id: &str, replicas: usize) -> usize {
        let deployment = format!("parsl-{}", servable_id.replace('/', "-"));
        if replicas == 0 {
            let _ = self.cluster.scale(&deployment, 0);
            let retired = self.pools.write().remove(servable_id);
            // Join worker threads outside the pool-map lock: a replica
            // sleeping through quarantine (or a hung inference) would
            // otherwise block every dispatch for every servable while
            // the write guard is held.
            if let Some(pool) = retired {
                pool.shutdown();
            }
            return 0;
        }
        // Cold-start clock starts here: deployment creation is the
        // dominant cost of zero-to-serving, not thread spawn.
        let cold_started = Instant::now();
        if self.cluster.running_pods(&deployment).is_empty() {
            let _ = self.cluster.create_deployment(
                &deployment,
                PodSpec {
                    image: Digest(0, 0),
                    cpu_millis: 1000,
                    memory_mib: 2048,
                },
                replicas,
            );
        } else {
            let _ = self.cluster.scale(&deployment, replicas);
        }
        let retired;
        {
            let mut pools = self.pools.write();
            if pools
                .get(servable_id)
                .is_some_and(|p| p.replicas == replicas)
            {
                return replicas;
            }
            let cold = !pools.contains_key(servable_id);
            retired = pools.remove(servable_id);
            pools.insert(
                servable_id.to_string(),
                Pool::spawn(
                    servable_id,
                    replicas,
                    self.faults.clone(),
                    self.health,
                    Arc::clone(&self.metrics),
                ),
            );
            if cold {
                if let Some(m) = self.metrics.get() {
                    m.cold_start
                        .record(cold_started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
            }
        }
        // As above: join the replaced pool's workers only after the
        // write guard is dropped.
        if let Some(pool) = retired {
            pool.shutdown();
        }
        replicas
    }

    /// Current replica count for a servable (0 if never deployed or
    /// scaled to zero).
    pub fn replicas(&self, servable_id: &str) -> usize {
        self.pools.read().get(servable_id).map_or(0, |p| p.replicas)
    }

    /// Replicas of the servable sitting in quarantine right now (0 if
    /// never deployed). The reconciler subtracts this from observed
    /// capacity so sick replicas are never scaled away as surplus.
    pub fn quarantined(&self, servable_id: &str) -> usize {
        self.pools
            .read()
            .get(servable_id)
            .map_or(0, |p| p.quarantined.load(Ordering::Relaxed))
    }

    fn ensure_pool(&self, servable_id: &str) {
        if !self.pools.read().contains_key(servable_id) {
            self.scale(servable_id, self.default_replicas);
        }
    }

    fn execute_inner(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: Arc<Vec<Value>>,
        trace: Option<(&Obs, TraceContext)>,
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        self.ensure_pool(servable_id);
        let count = inputs.len();
        let (reply_tx, reply_rx) = channel::unbounded();
        // Shared lock: many batches dispatch concurrently; the
        // per-replica channels do the fan-out. The reconciler's idle
        // park (scale-to-zero) can retire the pool between
        // ensure_pool() and the read lock — that is a cold start to
        // retry, never a panic on a live request thread.
        let mut park_races = 0u32;
        loop {
            {
                let pools = self.pools.read();
                if let Some(pool) = pools.get(servable_id) {
                    for index in 0..count {
                        self.dispatched.fetch_add(1, Ordering::Relaxed);
                        pool.sender
                            .send(Job {
                                servable: Arc::clone(servable),
                                inputs: Arc::clone(&inputs),
                                reply: reply_tx.clone(),
                                index,
                                trace: trace.map(|(obs, parent)| JobTrace {
                                    tracer: obs.tracer.clone(),
                                    parent,
                                    servable_id: servable_id.to_string(),
                                }),
                                queued_ns: dlhub_obs::now_ns(),
                            })
                            .map_err(|_| "executor pool shut down".to_string())?;
                    }
                    break;
                }
            }
            park_races += 1;
            if park_races > 3 {
                return Err("executor pool shut down".to_string());
            }
            self.ensure_pool(servable_id);
        }
        drop(reply_tx);
        let mut outputs: Vec<Option<Value>> = vec![None; count];
        let mut inference = vec![Duration::ZERO; count];
        let mut first_error = None;
        let mut received = 0usize;
        // Deadline-bounded collection: a replica that hangs mid-job
        // must not wedge this dispatch (and with it a Task Manager
        // consumer thread) forever.
        let deadline = Instant::now() + self.reply_timeout;
        while received < inputs.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match reply_rx.recv_timeout(remaining) {
                Ok((index, result, time)) => {
                    received += 1;
                    inference[index] = time;
                    match result {
                        Ok(v) => outputs[index] = Some(v),
                        Err(e) => {
                            first_error.get_or_insert(e);
                        }
                    }
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    return Err(format!(
                        "executor timed out after {:?} waiting for {} of {} replies",
                        self.reply_timeout,
                        inputs.len() - received,
                        inputs.len()
                    ));
                }
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.ok_or_else(|| "worker dropped a reply".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((outputs, inference))
    }
}

impl Executor for ParslExecutor {
    fn name(&self) -> &str {
        "parsl"
    }

    fn supports(&self, _model_type: ModelType) -> bool {
        true
    }

    fn execute(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        self.execute_inner(servable_id, servable, Arc::new(inputs.to_vec()), None)
    }

    fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    fn execute_traced(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
        obs: Option<&Obs>,
        parent: Option<TraceContext>,
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        // Record spans on the replica threads themselves so each span
        // carries the replica that ran it and exact start/end stamps.
        let trace = match (obs, parent) {
            (Some(obs), Some(parent)) if obs.tracer.enabled() => Some((obs, parent)),
            _ => None,
        };
        self.execute_inner(servable_id, servable, Arc::new(inputs.to_vec()), trace)
    }

    fn execute_shared(
        &self,
        servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: Arc<Vec<Value>>,
        obs: Option<&Obs>,
        parent: Option<TraceContext>,
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        // The serving path lands here: the decoded request batch is
        // shared with every replica job as-is — no `Value` deep clones
        // anywhere between the wire and `Servable::run`.
        let trace = match (obs, parent) {
            (Some(obs), Some(parent)) if obs.tracer.enabled() => Some((obs, parent)),
            _ => None,
        };
        self.execute_inner(servable_id, servable, inputs, trace)
    }

    fn scale(&self, servable_id: &str, replicas: usize) -> usize {
        ParslExecutor::scale(self, servable_id, replicas)
    }

    fn replicas(&self, servable_id: &str) -> usize {
        ParslExecutor::replicas(self, servable_id)
    }

    fn quarantined(&self, servable_id: &str) -> usize {
        ParslExecutor::quarantined(self, servable_id)
    }
}

impl Drop for ParslExecutor {
    fn drop(&mut self) {
        for (_, pool) in self.pools.write().drain() {
            pool.shutdown();
        }
    }
}

/// TensorFlow-Serving executor: a dedicated low-overhead server that
/// only accepts TensorFlow-exportable servables (§IV-C). Inference is
/// executed inline — there is no Python hop — which models the C++
/// `tensorflow_model_server`'s minimal per-request cost.
pub struct TfServingExecutor {
    dispatched: AtomicU64,
}

impl TfServingExecutor {
    /// Create the executor.
    pub fn new() -> Self {
        TfServingExecutor {
            dispatched: AtomicU64::new(0),
        }
    }
}

impl Default for TfServingExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for TfServingExecutor {
    fn name(&self) -> &str {
        "tfserving"
    }

    fn supports(&self, model_type: ModelType) -> bool {
        matches!(model_type, ModelType::TensorFlow | ModelType::Keras)
    }

    fn execute(
        &self,
        _servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut times = Vec::with_capacity(inputs.len());
        for input in inputs {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            outputs.push(servable.run(input)?);
            times.push(start.elapsed());
        }
        Ok((outputs, times))
    }

    fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }
}

/// SageMaker executor: "a Python Flask application that exposes an
/// HTTP-based model inference interface" (§IV-C). Every request pays a
/// JSON serialize/deserialize round trip of both payloads, modelling
/// the HTTP interface the Task Manager composes requests against.
pub struct SageMakerExecutor {
    dispatched: AtomicU64,
}

impl SageMakerExecutor {
    /// Create the executor.
    pub fn new() -> Self {
        SageMakerExecutor {
            dispatched: AtomicU64::new(0),
        }
    }
}

impl Default for SageMakerExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for SageMakerExecutor {
    fn name(&self) -> &str {
        "sagemaker"
    }

    fn supports(&self, _model_type: ModelType) -> bool {
        true
    }

    fn execute(
        &self,
        _servable_id: &str,
        servable: &Arc<dyn Servable>,
        inputs: &[Value],
    ) -> Result<(Vec<Value>, Vec<Duration>), String> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut times = Vec::with_capacity(inputs.len());
        for input in inputs {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            // HTTP body round trip in, …
            let body = serde_json::to_vec(input).map_err(|e| e.to_string())?;
            let decoded: Value = serde_json::from_slice(&body).map_err(|e| e.to_string())?;
            let start = Instant::now();
            let output = servable.run(&decoded)?;
            times.push(start.elapsed());
            // … and out.
            let body = serde_json::to_vec(&output).map_err(|e| e.to_string())?;
            outputs.push(serde_json::from_slice(&body).map_err(|e| e.to_string())?);
        }
        Ok((outputs, times))
    }

    fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servable::builtins::NoopServable;
    use crate::servable::servable_fn;
    use dlhub_container::NodeSpec;

    fn cluster() -> Cluster {
        Cluster::new(vec![NodeSpec::new("n0", 64_000, 65_536)])
    }

    #[test]
    fn parsl_executes_and_orders_outputs() {
        let ex = ParslExecutor::new(cluster(), 4);
        let echo = servable_fn(|v| Ok(v.clone()));
        let inputs: Vec<Value> = (0..20).map(Value::Int).collect();
        let (outputs, times) = ex.execute("u/echo", &echo, &inputs).unwrap();
        assert_eq!(outputs, inputs);
        assert_eq!(times.len(), 20);
        assert_eq!(ex.dispatched(), 20);
    }

    #[test]
    fn parsl_parallelizes_across_replicas() {
        let ex = ParslExecutor::new(cluster(), 4);
        let slow = servable_fn(|v| {
            std::thread::sleep(Duration::from_millis(25));
            Ok(v.clone())
        });
        let inputs = vec![Value::Null; 4];
        let start = Instant::now();
        ex.execute("u/slow", &slow, &inputs).unwrap();
        let elapsed = start.elapsed();
        // 4 x 25ms on 4 replicas must overlap (well under serial 100ms).
        assert!(elapsed < Duration::from_millis(80), "elapsed {elapsed:?}");
    }

    #[test]
    fn parsl_scale_changes_pool_and_cluster() {
        let ex = ParslExecutor::new(cluster(), 1);
        ex.scale("u/m", 3);
        assert_eq!(ex.replicas("u/m"), 3);
        assert_eq!(ex.cluster.running_pods("parsl-u-m").len(), 3);
        ex.scale("u/m", 1);
        assert_eq!(ex.replicas("u/m"), 1);
        assert_eq!(ex.cluster.running_pods("parsl-u-m").len(), 1);
        // Pool still works after rescale.
        let echo = servable_fn(|v| Ok(v.clone()));
        let (out, _) = ex.execute("u/m", &echo, &[Value::Int(1)]).unwrap();
        assert_eq!(out, vec![Value::Int(1)]);
    }

    #[test]
    fn parsl_scales_to_zero_and_cold_starts_back() {
        let ex = ParslExecutor::new(cluster(), 2);
        let obs = Obs::new();
        ex.attach_obs(&obs);
        let echo = servable_fn(|v| Ok(v.clone()));
        ex.execute("u/idle", &echo, &[Value::Int(1)]).unwrap();
        assert_eq!(ex.replicas("u/idle"), 2);
        // Park the pool: pods terminated, pool dropped.
        assert_eq!(ex.scale("u/idle", 0), 0);
        assert_eq!(ex.replicas("u/idle"), 0);
        assert!(ex.cluster.running_pods("parsl-u-idle").is_empty());
        // First request after park recreates the pool (cold start).
        let (out, _) = ex.execute("u/idle", &echo, &[Value::Int(2)]).unwrap();
        assert_eq!(out, vec![Value::Int(2)]);
        assert_eq!(ex.replicas("u/idle"), 2);
        // Both pool creations were cold starts; rescales are not.
        assert_eq!(obs.metrics.histogram("cold_start_ns").count(), 2);
        ex.scale("u/idle", 3);
        assert_eq!(obs.metrics.histogram("cold_start_ns").count(), 2);
    }

    #[test]
    fn quarantined_is_tracked_per_pool() {
        let ex = ParslExecutor::new(cluster(), 1).with_health(Some(HealthPolicy {
            quarantine_after: 1,
            quarantine_for: Duration::from_millis(200),
        }));
        let failing = servable_fn(|_| Err("kaboom".into()));
        assert_eq!(ex.quarantined("u/sick"), 0);
        let _ = ex.execute("u/sick", &failing, &[Value::Null]);
        // The single replica strikes out immediately and sits in
        // quarantine; the per-pool counter must see it, and the
        // healthy pool next door must not.
        let deadline = Instant::now() + Duration::from_secs(2);
        while ex.quarantined("u/sick") == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ex.quarantined("u/sick"), 1);
        assert_eq!(ex.quarantined("u/healthy"), 0);
        // After the quarantine window the replica returns to duty.
        let deadline = Instant::now() + Duration::from_secs(2);
        while ex.quarantined("u/sick") > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ex.quarantined("u/sick"), 0);
    }

    #[test]
    fn inline_executors_report_one_fixed_replica() {
        let tfs = TfServingExecutor::new();
        assert_eq!(Executor::scale(&tfs, "u/m", 5), 1);
        assert_eq!(Executor::replicas(&tfs, "u/m"), 1);
        assert_eq!(Executor::quarantined(&tfs, "u/m"), 0);
    }

    #[test]
    fn parsl_propagates_servable_errors() {
        let ex = ParslExecutor::new(cluster(), 2);
        let failing = servable_fn(|_| Err("kaboom".into()));
        let err = ex
            .execute("u/fail", &failing, &[Value::Null, Value::Null])
            .unwrap_err();
        assert_eq!(err, "kaboom");
    }

    #[test]
    fn panicking_servable_does_not_kill_the_pool() {
        let ex = ParslExecutor::new(cluster(), 2);
        let bomb = servable_fn(|v| {
            if matches!(v, Value::Int(13)) {
                panic!("simulated crash in user code");
            }
            Ok(v.clone())
        });
        // The panicking input yields an error, not a hang.
        let err = ex.execute("u/bomb", &bomb, &[Value::Int(13)]).unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("simulated crash"), "{err}");
        // Both replicas are still alive and serving afterwards.
        let inputs: Vec<Value> = (0..8).map(Value::Int).collect();
        let (outputs, _) = ex.execute("u/bomb", &bomb, &inputs).unwrap();
        assert_eq!(outputs, inputs);
        // A mixed batch reports the panic but the pool survives it.
        let mixed = vec![Value::Int(1), Value::Int(13), Value::Int(2)];
        assert!(ex.execute("u/bomb", &bomb, &mixed).is_err());
        let (outputs, _) = ex.execute("u/bomb", &bomb, &[Value::Int(0)]).unwrap();
        assert_eq!(outputs, vec![Value::Int(0)]);
    }

    #[test]
    fn executor_support_matrix() {
        let parsl = ParslExecutor::new(cluster(), 1);
        let tfs = TfServingExecutor::new();
        let sm = SageMakerExecutor::new();
        assert!(parsl.supports(ModelType::PythonFunction));
        assert!(parsl.supports(ModelType::TensorFlow));
        assert!(tfs.supports(ModelType::TensorFlow));
        assert!(tfs.supports(ModelType::Keras));
        assert!(!tfs.supports(ModelType::ScikitLearn));
        assert!(!tfs.supports(ModelType::PythonFunction));
        assert!(sm.supports(ModelType::ScikitLearn));
    }

    #[test]
    fn tfserving_executes_inline() {
        let tfs = TfServingExecutor::new();
        let noop: Arc<dyn Servable> = Arc::new(NoopServable);
        let (out, times) = tfs.execute("u/noop", &noop, &[Value::Null]).unwrap();
        assert_eq!(out[0], Value::Str("hello world".into()));
        assert_eq!(times.len(), 1);
        assert_eq!(tfs.dispatched(), 1);
    }

    #[test]
    fn sagemaker_round_trips_payloads() {
        let sm = SageMakerExecutor::new();
        let echo = servable_fn(|v| Ok(v.clone()));
        let input = Value::Tensor {
            shape: vec![2],
            data: vec![0.25, -1.5],
        };
        let (out, _) = sm
            .execute("u/echo", &echo, std::slice::from_ref(&input))
            .unwrap();
        assert_eq!(out[0], input);
    }

    #[test]
    fn parsl_traced_execution_records_replica_spans() {
        let ex = ParslExecutor::new(cluster(), 2);
        let echo = servable_fn(|v| Ok(v.clone()));
        let obs = Obs::new();
        let root = obs.tracer.start_root("invocation");
        let parent = root.ctx();
        let inputs: Vec<Value> = (0..6).map(Value::Int).collect();
        let (outputs, times) = ex
            .execute_traced("u/echo", &echo, &inputs, Some(&obs), Some(parent))
            .unwrap();
        assert_eq!(outputs, inputs);
        assert_eq!(times.len(), 6);
        obs.tracer.finish(root);
        let export = obs.tracer.export(Some(parent.trace));
        let spans = export.named("inference");
        assert_eq!(spans.len(), 6);
        assert!(spans.iter().all(|s| s.parent == parent.span));
        assert!(spans.iter().all(|s| s.attr("servable") == Some("u/echo")));
        assert!(spans.iter().all(|s| s.attr("replica").is_some()));
    }

    #[test]
    fn default_execute_traced_reconstructs_inference_spans() {
        let tfs = TfServingExecutor::new();
        let noop: Arc<dyn Servable> = Arc::new(NoopServable);
        let obs = Obs::new();
        let root = obs.tracer.start_root("invocation");
        let parent = root.ctx();
        tfs.execute_traced(
            "u/noop",
            &noop,
            &[Value::Null, Value::Null],
            Some(&obs),
            Some(parent),
        )
        .unwrap();
        obs.tracer.finish(root);
        let export = obs.tracer.export(Some(parent.trace));
        let spans = export.named("inference");
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.parent == parent.span));
        assert!(spans
            .iter()
            .all(|s| s.attr("executor") == Some("tfserving")));
    }

    #[test]
    fn inference_times_are_positive_for_real_work() {
        let ex = ParslExecutor::new(cluster(), 1);
        let busy = servable_fn(|_| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(Value::Null)
        });
        let (_, times) = ex.execute("u/busy", &busy, &[Value::Null]).unwrap();
        assert!(times[0] >= Duration::from_millis(4));
    }
}
