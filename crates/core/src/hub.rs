//! A fully wired single-process DLHub deployment for tests, examples
//! and benchmarks.
//!
//! `TestHub` assembles the whole stack — auth service, repository with
//! the paper's six evaluation servables, broker, a Task Manager with a
//! Parsl executor over a PetrelKube-shaped cluster, and the Management
//! Service — exactly as Fig 2 wires them, but in one process.

use crate::executor::{Executor, HealthPolicy, ParslExecutor};
use crate::repository::{
    PublishVisibility, Repository, PUBLISH_SCOPE, RESOURCE_SERVER, SERVE_SCOPE,
};
use crate::servable::builtins::evaluation_servables;
use crate::servable::{ModelType, Servable, ServableMetadata};
use crate::serving::{ManagementService, ServingConfig};
use crate::task_manager::TaskManager;
use dlhub_auth::{AuthService, Scope, Token};
use dlhub_container::Cluster;
use dlhub_fault::FaultHandle;
use dlhub_queue::{Broker, BrokerConfig, TopicConfig};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Builder for [`TestHub`].
pub struct TestHubBuilder {
    replicas: usize,
    consumers: usize,
    task_managers: usize,
    seed: u64,
    memo: bool,
    eval_servables: bool,
    extra_executors: Vec<Arc<dyn Executor>>,
    config: ServingConfig,
    faults: FaultHandle,
    task_topic_config: Option<TopicConfig>,
    replica_health: Option<HealthPolicy>,
    executor_reply_timeout: Option<Duration>,
}

impl TestHubBuilder {
    /// Replicas per servable for the Parsl executor pools.
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Task Manager consumer threads.
    pub fn consumers(mut self, n: usize) -> Self {
        self.consumers = n;
        self
    }

    /// Number of Task Managers pulling from the task queue ("one or
    /// more Task Managers", §IV). Each gets its own Parsl executor
    /// over the shared cluster, like TMs on separate login nodes.
    pub fn task_managers(mut self, n: usize) -> Self {
        self.task_managers = n.max(1);
        self
    }

    /// Weight seed for the evaluation models.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Start with memoization on/off.
    pub fn memo(mut self, enabled: bool) -> Self {
        self.memo = enabled;
        self
    }

    /// Skip publishing the six evaluation servables (faster startup
    /// for tests that publish their own).
    pub fn without_eval_servables(mut self) -> Self {
        self.eval_servables = false;
        self
    }

    /// Prepend an executor ahead of the default Parsl executor in the
    /// Task Manager's routing order.
    pub fn with_executor(mut self, executor: Arc<dyn Executor>) -> Self {
        self.extra_executors.push(executor);
        self
    }

    /// Override the full serving configuration.
    pub fn config(mut self, config: ServingConfig) -> Self {
        self.config = config;
        self
    }

    /// Register a service-level objective on the deployment (appends
    /// to [`ServingConfig::slos`]).
    pub fn slo(mut self, spec: dlhub_obs::SloSpec) -> Self {
        self.config.slos.push(spec);
        self
    }

    /// Thread one fault-injection schedule through the whole
    /// deployment: the broker's send/recv sites, every Task Manager's
    /// crash site, every Parsl replica, and the Management Service's
    /// memo and batch sites all consult `faults`.
    pub fn faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// Create the task topic with a specific configuration (lease
    /// duration, delivery attempts, capacity) before the Task Managers
    /// start; chaos tests shorten the lease so crashed-TM redelivery
    /// happens within the test budget.
    pub fn task_topic_config(mut self, config: TopicConfig) -> Self {
        self.task_topic_config = Some(config);
        self
    }

    /// Replica health policy for every Parsl executor in the hub
    /// (`None` keeps the executor default).
    pub fn replica_health(mut self, policy: HealthPolicy) -> Self {
        self.replica_health = Some(policy);
        self
    }

    /// Bound how long executors wait for replica replies (hung-replica
    /// detection).
    pub fn executor_reply_timeout(mut self, timeout: Duration) -> Self {
        self.executor_reply_timeout = Some(timeout);
        self
    }

    /// Assemble the hub.
    pub fn build(self) -> TestHub {
        let auth = AuthService::new();
        auth.register_provider("dlhub.org");
        let repo = Arc::new(Repository::new(auth.clone()));
        let owner_id = auth.register_identity("dlhub.org", "dlhub").unwrap();
        let token = auth
            .issue_token(
                owner_id,
                &[
                    Scope::new(RESOURCE_SERVER, PUBLISH_SCOPE),
                    Scope::new(RESOURCE_SERVER, SERVE_SCOPE),
                ],
            )
            .unwrap();

        if self.eval_servables {
            for builtin in evaluation_servables("dlhub@dlhub.org", self.seed) {
                repo.publish(
                    &token,
                    builtin.metadata,
                    builtin.servable,
                    BTreeMap::new(),
                    PublishVisibility::Public,
                )
                .unwrap();
            }
        }

        let broker = Broker::new(BrokerConfig {
            faults: self.faults.clone(),
            ..BrokerConfig::default()
        });
        let cluster = Cluster::petrelkube();
        let make_parsl = |cluster: &Cluster| {
            let mut parsl =
                ParslExecutor::new(cluster.clone(), self.replicas).with_faults(self.faults.clone());
            if let Some(policy) = self.replica_health {
                parsl = parsl.with_health(Some(policy));
            }
            if let Some(timeout) = self.executor_reply_timeout {
                parsl = parsl.with_reply_timeout(timeout);
            }
            Arc::new(parsl)
        };
        let parsl = make_parsl(&cluster);
        let mut config = self.config;
        config.memo_enabled = self.memo;
        config.faults = self.faults.clone();
        // One observability layer for the whole deployment: the broker,
        // every Task Manager and the Management Service record into the
        // same tracer and registry, so one request yields one trace
        // tree spanning all tiers.
        let obs = dlhub_obs::Obs::new();
        broker.attach_obs(&obs);
        parsl.attach_obs(&obs);
        // The task topic must exist with its chaos-tuned lease before
        // any Task Manager binds a consumer to it.
        if let Some(topic_config) = self.task_topic_config {
            broker
                .create_topic_with(&config.task_topic, topic_config)
                .expect("task topic created once");
        }
        let mut task_managers = Vec::with_capacity(self.task_managers);
        for i in 0..self.task_managers {
            // The first TM shares the exposed Parsl executor so tests
            // and benches can inspect/scale it; additional TMs get
            // their own executors over the same cluster (like TMs on
            // separate login nodes).
            let mut executors = self.extra_executors.clone();
            if i == 0 {
                executors.push(Arc::clone(&parsl) as Arc<dyn Executor>);
            } else {
                let extra = make_parsl(&cluster);
                extra.attach_obs(&obs);
                executors.push(extra as Arc<dyn Executor>);
            }
            task_managers.push(TaskManager::start_with_faults(
                &format!("cooley-tm-{i}"),
                &broker,
                &config.task_topic,
                Arc::clone(&repo),
                executors,
                self.consumers,
                obs.clone(),
                self.faults.clone(),
            ));
        }
        let autoscale = config.autoscale.is_some();
        let service = ManagementService::with_obs(Arc::clone(&repo), &broker, config, obs);
        if autoscale {
            // The control loop actuates through the first TM's exposed
            // Parsl executor — the one tests and benches inspect.
            service.attach_autoscaler(Arc::clone(&parsl));
        }
        TestHub {
            auth,
            repo,
            broker,
            cluster,
            parsl,
            service,
            token,
            owner: "dlhub@dlhub.org".to_string(),
            _task_managers: task_managers,
        }
    }
}

/// A complete in-process DLHub deployment.
pub struct TestHub {
    /// The auth service.
    pub auth: AuthService,
    /// The model repository.
    pub repo: Arc<Repository>,
    /// The message broker between MS and TM.
    pub broker: Broker,
    /// The PetrelKube-shaped cluster the Parsl executor deploys onto.
    pub cluster: Cluster,
    /// The Parsl executor (exposed so benchmarks can scale replicas).
    pub parsl: Arc<ParslExecutor>,
    /// The Management Service.
    pub service: Arc<ManagementService>,
    /// A token for the hub owner, carrying publish + serve scopes.
    pub token: Token,
    /// The owner's qualified identity.
    pub owner: String,
    _task_managers: Vec<TaskManager>,
}

impl TestHub {
    /// Start building a hub (defaults: 2 replicas, 2 consumers,
    /// memoization on, evaluation servables published, seed 7).
    pub fn builder() -> TestHubBuilder {
        TestHubBuilder {
            replicas: 2,
            consumers: 2,
            task_managers: 1,
            seed: 7,
            memo: true,
            eval_servables: true,
            extra_executors: Vec::new(),
            config: ServingConfig::default(),
            faults: FaultHandle::default(),
            task_topic_config: None,
            replica_health: None,
            executor_reply_timeout: None,
        }
    }

    /// Publish a public servable under the hub owner with minimal
    /// metadata — a shorthand for tests and examples.
    pub fn publish_simple(
        &self,
        name: &str,
        model_type: ModelType,
        servable: Arc<dyn Servable>,
    ) -> String {
        let metadata = ServableMetadata::new(name, &self.owner, model_type);
        self.service
            .publish(
                &self.token,
                metadata,
                servable,
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .expect("publish_simple")
            .id
    }

    /// Issue a serve-only token for a fresh user `username`.
    pub fn user_token(&self, username: &str) -> Token {
        let id = self
            .auth
            .register_identity("dlhub.org", username)
            .or_else(|_| {
                self.auth
                    .lookup(&format!("{username}@dlhub.org"))
                    .ok_or(dlhub_auth::AuthError::UnknownProvider("dlhub.org".into()))
            })
            .unwrap();
        self.auth
            .issue_token(id, &[Scope::new(RESOURCE_SERVER, SERVE_SCOPE)])
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn hub_serves_all_six_eval_servables() {
        let hub = TestHub::builder().build();
        let ids = hub.repo.all_ids();
        assert_eq!(ids.len(), 6);
        for id in [
            "dlhub/noop",
            "dlhub/inception",
            "dlhub/cifar10",
            "dlhub/matminer-util",
            "dlhub/matminer-featurize",
            "dlhub/matminer-model",
        ] {
            assert!(ids.contains(&id.to_string()), "missing {id}");
        }
    }

    #[test]
    fn hub_without_eval_servables_is_empty() {
        let hub = TestHub::builder().without_eval_servables().build();
        assert!(hub.repo.all_ids().is_empty());
    }

    #[test]
    fn user_token_can_serve_but_not_publish() {
        let hub = TestHub::builder().without_eval_servables().build();
        hub.publish_simple(
            "m",
            ModelType::PythonFunction,
            crate::servable::servable_fn(|_| Ok(Value::Int(1))),
        );
        let user = hub.user_token("visitor");
        assert!(hub.service.run(&user, "dlhub/m", Value::Null).is_ok());
        let err = hub
            .service
            .publish(
                &user,
                ServableMetadata::new("theirs", "x@y", ModelType::PythonFunction),
                crate::servable::servable_fn(|_| Ok(Value::Null)),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(matches!(err, crate::DlhubError::Auth(_)));
    }

    #[test]
    fn replicas_are_deployed_on_the_cluster() {
        let hub = TestHub::builder()
            .replicas(3)
            .without_eval_servables()
            .build();
        hub.publish_simple(
            "m",
            ModelType::PythonFunction,
            crate::servable::servable_fn(|v| Ok(v.clone())),
        );
        hub.service.run(&hub.token, "dlhub/m", Value::Null).unwrap();
        assert_eq!(hub.parsl.replicas("dlhub/m"), 3);
        assert_eq!(hub.cluster.running_pods("parsl-dlhub-m").len(), 3);
    }
}
