#![warn(missing_docs)]

//! # dlhub-core
//!
//! The DLHub system: a multi-tenant model **repository** and **serving**
//! platform for science, after Chard et al., *DLHub: Model and Data
//! Serving for Science* (IPDPS 2019).
//!
//! The architecture follows §IV of the paper:
//!
//! * [`serving::ManagementService`] — the user-facing service: model
//!   publication (with automatic servable/container builds), search,
//!   task intake, sync/async execution, **memoization**, **batching**
//!   and multi-servable **pipelines**.
//! * [`task_manager::TaskManager`] — deployed near compute; pulls tasks
//!   from the [`dlhub_queue`] broker, routes them to executors, and
//!   reports the paper's nested timings back to the Management Service.
//! * [`executor`] — the flexible executor model: a general-purpose
//!   Parsl-like engine with per-servable replica pools, plus
//!   TensorFlow-Serving-style and SageMaker-style adapters.
//! * [`servable`] — the common execution interface every published
//!   model is converted into, with the paper's six evaluation servables
//!   built in (noop, Inception, CIFAR-10 and the three matminer
//!   stages).
//!
//! ```
//! use dlhub_core::hub::TestHub;
//! use dlhub_core::value::Value;
//!
//! // A fully wired single-process deployment for tests and examples.
//! let hub = TestHub::builder().build();
//! let out = hub
//!     .service
//!     .run(&hub.token, "dlhub/noop", Value::Null)
//!     .unwrap();
//! assert_eq!(out.value, Value::Str("hello world".into()));
//! ```

pub mod admission;
pub mod autoscale;
pub mod batch;
pub mod error;
pub mod executor;
pub mod hub;
pub mod memo;
pub mod metrics;
pub mod pipeline;
pub mod profile;
pub mod repository;
pub mod servable;
pub mod serving;
pub mod task;
pub mod task_manager;
pub mod value;

pub use error::DlhubError;
pub use servable::{Servable, ServableMetadata};
pub use value::Value;

// Re-export the compute substrates so downstream users (examples,
// benches) reach the model builders without extra dependencies.
pub use dlhub_matsci as matsci;
pub use dlhub_tensor as tensor;

// Re-export the observability layer: every handle the serving stack
// exposes (`ManagementService::obs`, trace exports, metric snapshots)
// is typed in terms of this crate.
pub use dlhub_obs as obs;

// Re-exported so integration and chaos tests configure fault plans
// without a separate dependency on the fault crate.
pub use dlhub_fault as fault;
