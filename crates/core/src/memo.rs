//! Memoization cache (§V-B2).
//!
//! "DLHub's Parsl executor implements memoization, caching the inputs
//! and outputs for each request and returning the recorded output for
//! a new request if its inputs are in the cache." The cache is keyed
//! by `(servable id, canonical input hash)` and lives at the Task
//! Manager — which is why, unlike Clipper's cluster-side cache, a
//! DLHub hit costs ~1 ms (§V-B5).
//!
//! ```
//! use dlhub_core::memo::{MemoCache, MemoKey};
//! use dlhub_core::value::Value;
//!
//! let cache = MemoCache::new(1024 * 1024);
//! let key = MemoKey::new("dlhub/cifar10", &Value::Str("input".into()));
//! assert_eq!(cache.get(&key), None);
//! cache.put(key.clone(), Value::Str("cat".into()));
//! assert_eq!(cache.get(&key), Some(Value::Str("cat".into())));
//! assert_eq!(cache.stats().hits, 1);
//! ```

use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: servable id plus the input's 128-bit content hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    servable: String,
    input_hash: (u64, u64),
}

impl MemoKey {
    /// Build the key for `servable` applied to `input`.
    pub fn new(servable: &str, input: &Value) -> Self {
        MemoKey {
            servable: servable.to_string(),
            input_hash: input.content_hash(),
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted under memory pressure.
    pub evictions: u64,
}

struct Entry {
    output: Value,
    size: usize,
    last_used: u64,
}

struct State {
    entries: HashMap<MemoKey, Entry>,
    stats: MemoStats,
    bytes: usize,
    clock: u64,
}

/// An LRU-evicting memo cache with a byte budget.
pub struct MemoCache {
    state: Mutex<State>,
    capacity_bytes: usize,
}

impl MemoCache {
    /// Create a cache bounded to `capacity_bytes` of stored outputs.
    pub fn new(capacity_bytes: usize) -> Self {
        MemoCache {
            state: Mutex::new(State {
                entries: HashMap::new(),
                stats: MemoStats::default(),
                bytes: 0,
                clock: 0,
            }),
            capacity_bytes,
        }
    }

    /// Look up a cached output.
    pub fn get(&self, key: &MemoKey) -> Option<Value> {
        let mut st = self.state.lock();
        st.clock += 1;
        let clock = st.clock;
        match st.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                let out = entry.output.clone();
                st.stats.hits += 1;
                Some(out)
            }
            None => {
                st.stats.misses += 1;
                None
            }
        }
    }

    /// Insert an output, evicting least-recently-used entries if the
    /// byte budget would be exceeded. Outputs larger than the whole
    /// budget are not cached.
    pub fn put(&self, key: MemoKey, output: Value) {
        let size = output.approx_size();
        if size > self.capacity_bytes {
            return;
        }
        let mut st = self.state.lock();
        st.clock += 1;
        let clock = st.clock;
        if let Some(old) = st.entries.remove(&key) {
            st.bytes -= old.size;
        }
        while st.bytes + size > self.capacity_bytes {
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = st.entries.remove(&k).expect("victim present");
                    st.bytes -= e.size;
                    st.stats.evictions += 1;
                }
                None => break,
            }
        }
        st.bytes += size;
        st.entries.insert(
            key,
            Entry {
                output,
                size,
                last_used: clock,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> MemoStats {
        self.state.lock().stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently stored.
    pub fn bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Drop all entries (used when a servable is republished: stale
    /// outputs must not survive a version bump).
    pub fn invalidate_servable(&self, servable: &str) {
        let mut st = self.state.lock();
        let victims: Vec<MemoKey> = st
            .entries
            .keys()
            .filter(|k| k.servable == servable)
            .cloned()
            .collect();
        for k in victims {
            let e = st.entries.remove(&k).expect("victim present");
            st.bytes -= e.size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> MemoCache {
        MemoCache::new(10_000)
    }

    #[test]
    fn hit_after_put() {
        let c = cache();
        let key = MemoKey::new("m", &Value::Int(1));
        assert_eq!(c.get(&key), None);
        c.put(key.clone(), Value::Str("out".into()));
        assert_eq!(c.get(&key), Some(Value::Str("out".into())));
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn different_servables_do_not_collide() {
        let c = cache();
        let input = Value::Int(1);
        c.put(MemoKey::new("a", &input), Value::Str("from-a".into()));
        assert_eq!(c.get(&MemoKey::new("b", &input)), None);
    }

    #[test]
    fn equal_inputs_hit_regardless_of_identity() {
        let c = cache();
        let k1 = MemoKey::new("m", &Value::List(vec![Value::Int(1), Value::Str("x".into())]));
        let k2 = MemoKey::new("m", &Value::List(vec![Value::Int(1), Value::Str("x".into())]));
        c.put(k1, Value::Bool(true));
        assert_eq!(c.get(&k2), Some(Value::Bool(true)));
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let c = MemoCache::new(100);
        // ~40-byte entries: only 2 fit.
        let val = |i: i64| Value::Bytes(vec![i as u8; 40]);
        let k = |i: i64| MemoKey::new("m", &Value::Int(i));
        c.put(k(1), val(1));
        c.put(k(2), val(2));
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&k(1)).is_some());
        c.put(k(3), val(3));
        assert!(c.get(&k(1)).is_some());
        assert_eq!(c.get(&k(2)), None, "LRU entry must be evicted");
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn oversized_outputs_are_not_cached() {
        let c = MemoCache::new(10);
        let key = MemoKey::new("m", &Value::Int(1));
        c.put(key.clone(), Value::Bytes(vec![0; 100]));
        assert_eq!(c.get(&key), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn put_same_key_replaces() {
        let c = cache();
        let key = MemoKey::new("m", &Value::Int(1));
        c.put(key.clone(), Value::Int(1));
        c.put(key.clone(), Value::Int(2));
        assert_eq!(c.get(&key), Some(Value::Int(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_servable_clears_only_its_entries() {
        let c = cache();
        c.put(MemoKey::new("a", &Value::Int(1)), Value::Int(10));
        c.put(MemoKey::new("a", &Value::Int(2)), Value::Int(20));
        c.put(MemoKey::new("b", &Value::Int(1)), Value::Int(30));
        c.invalidate_servable("a");
        assert_eq!(c.get(&MemoKey::new("a", &Value::Int(1))), None);
        assert_eq!(c.get(&MemoKey::new("b", &Value::Int(1))), Some(Value::Int(30)));
        assert_eq!(c.len(), 1);
    }
}
