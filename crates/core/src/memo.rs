//! Memoization cache (§V-B2).
//!
//! "DLHub's Parsl executor implements memoization, caching the inputs
//! and outputs for each request and returning the recorded output for
//! a new request if its inputs are in the cache." The cache is keyed
//! by `(servable id, canonical input hash)` and lives at the Task
//! Manager — which is why, unlike Clipper's cluster-side cache, a
//! DLHub hit costs ~1 ms (§V-B5).
//!
//! # Concurrency
//!
//! The cache is sharded: the key's content hash selects one of
//! [`SHARD_COUNT`] independently locked shards, so concurrent requests
//! for different keys almost never contend on a lock. Within a shard,
//! recency is an intrusive doubly-linked list threaded through a slab
//! of entries, giving O(1) touch-on-hit and O(1) eviction (no
//! full-table scans). The byte budget is global: a put that pushes the
//! cache over budget evicts the globally oldest shard head until the
//! budget holds again — an O(shards) operation, independent of entry
//! count. Hit/miss/eviction counters and the byte/entry gauges are
//! relaxed atomics, so [`MemoCache::stats`], [`MemoCache::len`] and
//! [`MemoCache::bytes`] never take a lock and never stall the hot
//! path.
//!
//! ```
//! use dlhub_core::memo::{MemoCache, MemoKey};
//! use dlhub_core::value::Value;
//!
//! let cache = MemoCache::new(1024 * 1024);
//! let key = MemoKey::new("dlhub/cifar10", &Value::Str("input".into()));
//! assert_eq!(cache.get(&key), None);
//! cache.put(key.clone(), Value::Str("cat".into()));
//! assert_eq!(cache.get(&key), Some(Value::Str("cat".into())));
//! assert_eq!(cache.stats().hits, 1);
//! ```

use crate::value::Value;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Observability instruments, resolved once at attach time so the hot
/// path touches plain atomics — never the registry maps.
struct ObsHooks {
    hits: Arc<dlhub_obs::Counter>,
    misses: Arc<dlhub_obs::Counter>,
    evictions: Arc<dlhub_obs::Counter>,
    tracer: dlhub_obs::Tracer,
    shard_lock: Arc<dlhub_obs::ContentionSite>,
    profiler: dlhub_obs::ProfilerHandle,
}

/// Number of independently locked shards (power of two).
const SHARD_COUNT: usize = 16;

/// Sentinel index for the intrusive recency list.
const NIL: usize = usize::MAX;

/// Cache key: servable id plus the input's 128-bit content hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    servable: String,
    input_hash: (u64, u64),
}

impl MemoKey {
    /// Build the key for `servable` applied to `input`.
    pub fn new(servable: &str, input: &Value) -> Self {
        MemoKey {
            servable: servable.to_string(),
            input_hash: input.content_hash(),
        }
    }

    /// Which shard this key lives in.
    fn shard(&self) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARD_COUNT - 1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted under memory pressure.
    pub evictions: u64,
}

/// One cached entry, doubly linked into its shard's recency list
/// (`prev` toward LRU, `next` toward MRU).
struct Slot {
    key: MemoKey,
    output: Value,
    size: usize,
    last_used: u64,
    prev: usize,
    next: usize,
}

/// One lock's worth of the cache: an index map plus a slab of slots
/// threaded by an intrusive LRU list. All operations are O(1).
struct Shard {
    index: HashMap<MemoKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Least recently used slot (eviction candidate).
    head: usize,
    /// Most recently used slot.
    tail: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_mru(&mut self, idx: usize) {
        self.slots[idx].prev = self.tail;
        self.slots[idx].next = NIL;
        match self.tail {
            NIL => self.head = idx,
            t => self.slots[t].next = idx,
        }
        self.tail = idx;
    }

    /// Move an existing slot to the MRU end.
    fn touch(&mut self, idx: usize, now: u64) {
        self.unlink(idx);
        self.push_mru(idx);
        self.slots[idx].last_used = now;
    }

    fn insert(&mut self, key: MemoKey, output: Value, size: usize, now: u64) {
        let slot = Slot {
            key: key.clone(),
            output,
            size,
            last_used: now,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.push_mru(idx);
    }

    /// Remove a slot by index, returning its byte size.
    fn remove(&mut self, idx: usize) -> usize {
        self.unlink(idx);
        let key = self.slots[idx].key.clone();
        self.index.remove(&key);
        let size = self.slots[idx].size;
        // Drop the payload eagerly; the slot is recycled.
        self.slots[idx].output = Value::Null;
        self.slots[idx].size = 0;
        self.free.push(idx);
        size
    }
}

/// A sharded, LRU-evicting memo cache with a global byte budget.
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    capacity_bytes: usize,
    bytes: AtomicUsize,
    entries: AtomicUsize,
    /// Logical clock ordering recency across shards.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: Option<ObsHooks>,
    faults: dlhub_fault::FaultHandle,
}

impl MemoCache {
    /// Create a cache bounded to `capacity_bytes` of stored outputs.
    pub fn new(capacity_bytes: usize) -> Self {
        MemoCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_bytes,
            bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: None,
            faults: dlhub_fault::FaultHandle::default(),
        }
    }

    /// Attach a fault-injection schedule. `Slow`/`Hang` faults at
    /// [`dlhub_fault::site::MEMO_GET`] delay the lookup, any other kind
    /// forces a miss; any fault at [`dlhub_fault::site::MEMO_PUT`]
    /// silently skips the insert. The cache degrades — it never fails a
    /// request.
    pub fn attach_faults(mut self, faults: dlhub_fault::FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// Mirror this cache's counters into an observability handle:
    /// hits/misses/evictions are incremented in the registry
    /// (`memo_hits_total`, `memo_misses_total`, `memo_evictions_total`)
    /// at the same sites as the local [`MemoStats`] counters — the two
    /// always agree — and every eviction is recorded as a tracer event
    /// carrying the evicted servable.
    pub fn attach_obs(mut self, obs: &dlhub_obs::Obs) -> Self {
        self.obs = Some(ObsHooks {
            hits: obs
                .metrics
                .counter_with_help("memo_hits_total", "Memo-cache lookups answered from cache"),
            misses: obs
                .metrics
                .counter_with_help("memo_misses_total", "Memo-cache lookups that fell through"),
            evictions: obs.metrics.counter_with_help(
                "memo_evictions_total",
                "Memo-cache entries evicted to stay within the byte budget",
            ),
            tracer: obs.tracer.clone(),
            shard_lock: obs.contention.site("memo.shard_lock"),
            profiler: obs.profile.clone(),
        });
        self
    }

    /// Lock a shard, recording the wait as contention only when the
    /// uncontended `try_lock` fast path loses to another holder.
    fn locked_shard(&self, index: usize) -> parking_lot::MutexGuard<'_, Shard> {
        match self.shards[index].try_lock() {
            Some(guard) => guard,
            None => {
                let waited_from = self.obs.as_ref().map(|_| std::time::Instant::now());
                let guard = self.shards[index].lock();
                if let (Some(hooks), Some(at)) = (self.obs.as_ref(), waited_from) {
                    hooks.shard_lock.record(at.elapsed());
                }
                guard
            }
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up a cached output.
    pub fn get(&self, key: &MemoKey) -> Option<Value> {
        let _frame = self.obs.as_ref().map(|h| h.profiler.frame("memo.get"));
        if let Some(fault) = self.faults.decide(dlhub_fault::site::MEMO_GET) {
            match fault.kind {
                dlhub_fault::FaultKind::Slow | dlhub_fault::FaultKind::Hang => {
                    // A stalled lookup: the caller blocks here while
                    // eviction and other lookups race on.
                    std::thread::sleep(fault.delay);
                }
                _ => {
                    // A failed lookup degrades to a miss.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(hooks) = &self.obs {
                        hooks.misses.inc();
                    }
                    return None;
                }
            }
        }
        let now = self.tick();
        let mut shard = self.locked_shard(key.shard());
        match shard.index.get(key).copied() {
            Some(idx) => {
                shard.touch(idx, now);
                let out = shard.slots[idx].output.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(hooks) = &self.obs {
                    hooks.hits.inc();
                }
                Some(out)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(hooks) = &self.obs {
                    hooks.misses.inc();
                }
                None
            }
        }
    }

    /// Insert an output, evicting least-recently-used entries if the
    /// byte budget would be exceeded. Outputs larger than the whole
    /// budget are not cached.
    pub fn put(&self, key: MemoKey, output: Value) {
        let _frame = self.obs.as_ref().map(|h| h.profiler.frame("memo.put"));
        if self.faults.decide(dlhub_fault::site::MEMO_PUT).is_some() {
            // A lost insert: the next identical request misses.
            return;
        }
        let size = output.approx_size();
        if size > self.capacity_bytes {
            return;
        }
        let now = self.tick();
        {
            let mut shard = self.locked_shard(key.shard());
            if let Some(idx) = shard.index.get(&key).copied() {
                let old = shard.remove(idx);
                self.bytes.fetch_sub(old, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
            shard.insert(key, output, size, now);
            self.bytes.fetch_add(size, Ordering::Relaxed);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.trim();
    }

    /// Evict globally-oldest entries until the byte budget holds.
    /// Each round peeks one slot per shard (O(shards), independent of
    /// entry count) and pops the stalest head. Locks are taken one
    /// shard at a time, never nested.
    fn trim(&self) {
        while self.bytes.load(Ordering::Relaxed) > self.capacity_bytes {
            let mut victim: Option<(usize, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock();
                if shard.head != NIL {
                    let ts = shard.slots[shard.head].last_used;
                    if victim.is_none_or(|(_, best)| ts < best) {
                        victim = Some((i, ts));
                    }
                }
            }
            match victim {
                Some((i, _)) => {
                    let mut shard = self.shards[i].lock();
                    // The head may have moved since the peek; evicting
                    // whatever is oldest in this shard now keeps the
                    // policy approximately LRU without re-scanning.
                    if shard.head == NIL {
                        continue;
                    }
                    let idx = shard.head;
                    let servable = self
                        .obs
                        .as_ref()
                        .map(|_| shard.slots[idx].key.servable.clone());
                    let size = shard.remove(idx);
                    drop(shard);
                    self.bytes.fetch_sub(size, Ordering::Relaxed);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if let (Some(hooks), Some(servable)) = (&self.obs, servable) {
                        hooks.evictions.inc();
                        hooks
                            .tracer
                            .event(None, "memo_evict", vec![("servable", servable)]);
                    }
                }
                None => break,
            }
        }
    }

    /// Current counters. Lock-free: reads three relaxed atomics.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Entries currently cached. Lock-free.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently stored. Lock-free.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Drop all entries for one servable (used when a servable is
    /// republished: stale outputs must not survive a version bump).
    /// Walks shards one at a time — readers of other shards are never
    /// blocked, and there is no moment the whole cache is frozen.
    pub fn invalidate_servable(&self, servable: &str) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let victims: Vec<usize> = shard
                .index
                .iter()
                .filter(|(k, _)| k.servable == servable)
                .map(|(_, idx)| *idx)
                .collect();
            for idx in victims {
                let size = shard.remove(idx);
                self.bytes.fetch_sub(size, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cache() -> MemoCache {
        MemoCache::new(10_000)
    }

    #[test]
    fn hit_after_put() {
        let c = cache();
        let key = MemoKey::new("m", &Value::Int(1));
        assert_eq!(c.get(&key), None);
        c.put(key.clone(), Value::Str("out".into()));
        assert_eq!(c.get(&key), Some(Value::Str("out".into())));
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn different_servables_do_not_collide() {
        let c = cache();
        let input = Value::Int(1);
        c.put(MemoKey::new("a", &input), Value::Str("from-a".into()));
        assert_eq!(c.get(&MemoKey::new("b", &input)), None);
    }

    #[test]
    fn equal_inputs_hit_regardless_of_identity() {
        let c = cache();
        let k1 = MemoKey::new(
            "m",
            &Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        );
        let k2 = MemoKey::new(
            "m",
            &Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        );
        c.put(k1, Value::Bool(true));
        assert_eq!(c.get(&k2), Some(Value::Bool(true)));
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let c = MemoCache::new(100);
        // ~40-byte entries: only 2 fit.
        let val = |i: i64| Value::Bytes(vec![i as u8; 40]);
        let k = |i: i64| MemoKey::new("m", &Value::Int(i));
        c.put(k(1), val(1));
        c.put(k(2), val(2));
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&k(1)).is_some());
        c.put(k(3), val(3));
        assert!(c.get(&k(1)).is_some());
        assert_eq!(c.get(&k(2)), None, "LRU entry must be evicted");
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn eviction_order_is_global_across_shards() {
        // Keys land in different shards; eviction must still pick the
        // globally least-recently-used entry, not a per-shard victim.
        let entry = |i: i64| {
            (
                MemoKey::new("m", &Value::Int(i)),
                Value::Bytes(vec![0; 100]),
            )
        };
        let (k0, v0) = entry(0);
        let probe = v0.approx_size();
        // Budget for exactly 8 entries.
        let c = MemoCache::new(8 * probe);
        c.put(k0, v0);
        for i in 1..8 {
            let (k, v) = entry(i);
            c.put(k, v);
        }
        assert_eq!(c.len(), 8);
        // Refresh everything except entry 3: it becomes global LRU.
        for i in 0..8 {
            if i != 3 {
                assert!(c.get(&MemoKey::new("m", &Value::Int(i))).is_some());
            }
        }
        let (k8, v8) = entry(8);
        c.put(k8, v8);
        assert_eq!(c.get(&MemoKey::new("m", &Value::Int(3))), None);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn registry_counters_agree_with_memo_stats() {
        let obs = dlhub_obs::Obs::new();
        let c = MemoCache::new(100).attach_obs(&obs);
        let k = |i: i64| MemoKey::new("m", &Value::Int(i));
        let val = || Value::Bytes(vec![0; 40]);
        // Two entries fit; the third put must evict.
        c.put(k(1), val());
        c.put(k(2), val());
        c.put(k(3), val());
        assert!(c.get(&k(3)).is_some());
        assert!(c.get(&k(999)).is_none());
        let stats = c.stats();
        assert!(stats.evictions > 0);
        assert_eq!(stats.hits, obs.metrics.counter("memo_hits_total").get());
        assert_eq!(stats.misses, obs.metrics.counter("memo_misses_total").get());
        assert_eq!(
            stats.evictions,
            obs.metrics.counter("memo_evictions_total").get()
        );
        // Each eviction was also recorded as a tracer event naming the
        // evicted servable.
        let events = obs.tracer.export(None);
        let evicts = events.named("memo_evict");
        assert_eq!(evicts.len(), stats.evictions as usize);
        assert!(evicts.iter().all(|e| e.attr("servable") == Some("m")));
    }

    #[test]
    fn oversized_outputs_are_not_cached() {
        let c = MemoCache::new(10);
        let key = MemoKey::new("m", &Value::Int(1));
        c.put(key.clone(), Value::Bytes(vec![0; 100]));
        assert_eq!(c.get(&key), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn put_same_key_replaces() {
        let c = cache();
        let key = MemoKey::new("m", &Value::Int(1));
        c.put(key.clone(), Value::Int(1));
        c.put(key.clone(), Value::Int(2));
        assert_eq!(c.get(&key), Some(Value::Int(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_servable_clears_only_its_entries() {
        let c = cache();
        c.put(MemoKey::new("a", &Value::Int(1)), Value::Int(10));
        c.put(MemoKey::new("a", &Value::Int(2)), Value::Int(20));
        c.put(MemoKey::new("b", &Value::Int(1)), Value::Int(30));
        c.invalidate_servable("a");
        assert_eq!(c.get(&MemoKey::new("a", &Value::Int(1))), None);
        assert_eq!(
            c.get(&MemoKey::new("b", &Value::Int(1))),
            Some(Value::Int(30))
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn slots_are_recycled_after_eviction() {
        let c = MemoCache::new(200);
        let k = |i: i64| MemoKey::new("m", &Value::Int(i));
        for i in 0..100 {
            c.put(k(i), Value::Bytes(vec![0; 40]));
        }
        // Only a handful fit at a time; the slabs must not have grown
        // one slot per put.
        let total_slots: usize = c.shards.iter().map(|s| s.lock().slots.len()).sum();
        assert!(total_slots <= 32, "slab leaked slots: {total_slots}");
        assert!(c.bytes() <= 200);
    }

    #[test]
    fn concurrent_get_put_invalidate_is_consistent() {
        let c = Arc::new(MemoCache::new(64 * 1024));
        let threads = 8;
        let ops = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut local_gets = 0u64;
                    for i in 0..ops {
                        let servable = format!("s{}", (t + i) % 3);
                        let key = MemoKey::new(&servable, &Value::Int((i % 97) as i64));
                        match i % 5 {
                            0 | 1 => {
                                c.put(key, Value::Bytes(vec![t as u8; 64 + i % 32]));
                            }
                            2 | 3 => {
                                let _ = c.get(&key);
                                local_gets += 1;
                            }
                            _ => c.invalidate_servable(&servable),
                        }
                    }
                    local_gets
                })
            })
            .collect();
        let total_gets: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let stats = c.stats();
        assert_eq!(
            stats.hits + stats.misses,
            total_gets,
            "every get counted once"
        );
        assert!(
            c.bytes() <= 64 * 1024,
            "byte budget violated: {}",
            c.bytes()
        );
        // The lock-free gauges must agree with the ground truth held
        // under the shard locks once the storm has quiesced.
        let (real_entries, real_bytes) = c.shards.iter().fold((0, 0), |(n, b), s| {
            let s = s.lock();
            (
                n + s.index.len(),
                b + s.index.values().map(|&i| s.slots[i].size).sum::<usize>(),
            )
        });
        assert_eq!(c.len(), real_entries);
        assert_eq!(c.bytes(), real_bytes);
    }

    #[test]
    fn eviction_races_slow_lookups_without_corruption() {
        // Injected Slow faults stall readers inside `get` (before the
        // shard lock) while writers drive an eviction storm and
        // invalidations underneath them. A stalled lookup may miss, but
        // any hit it returns must be the exact value stored for its
        // key, and the cache bookkeeping must survive the race.
        let faults = dlhub_fault::FaultPlan::seeded(42)
            .inject(
                dlhub_fault::site::MEMO_GET,
                dlhub_fault::FaultSpec::new(dlhub_fault::FaultKind::Slow)
                    .probability(0.3)
                    .delay(std::time::Duration::from_millis(1)),
            )
            .build();
        // Tiny byte budget: nearly every put evicts something.
        let c = Arc::new(MemoCache::new(4 * 1024).attach_faults(faults.clone()));
        let keyspace = 64i64;
        let value_for = |i: i64| Value::Bytes(vec![(i % 251) as u8; 96]);
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1_500i64 {
                        let k = (i * 7 + t * 3) % keyspace;
                        c.put(MemoKey::new("race", &Value::Int(k)), value_for(k));
                        if i % 97 == 0 {
                            c.invalidate_servable("race");
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    for i in 0..1_500i64 {
                        let k = (i * 5 + t) % keyspace;
                        if let Some(out) = c.get(&MemoKey::new("race", &Value::Int(k))) {
                            assert_eq!(out, value_for(k), "hit returned a foreign value");
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let hits: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(
            faults.injected(dlhub_fault::site::MEMO_GET) > 0,
            "no slow lookup was ever injected"
        );
        assert_eq!(c.stats().hits, hits, "hit accounting diverged");
        assert!(c.stats().evictions > 0, "budget never forced an eviction");
        assert!(c.bytes() <= 4 * 1024, "byte budget violated: {}", c.bytes());
        // Gauges agree with the ground truth under the shard locks.
        let (real_entries, real_bytes) = c.shards.iter().fold((0, 0), |(n, b), s| {
            let s = s.lock();
            (
                n + s.index.len(),
                b + s.index.values().map(|&i| s.slots[i].size).sum::<usize>(),
            )
        });
        assert_eq!(c.len(), real_entries);
        assert_eq!(c.bytes(), real_bytes);
    }

    #[test]
    fn stats_never_block_during_a_put_storm() {
        let c = Arc::new(MemoCache::new(32 * 1024));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = MemoKey::new("storm", &Value::Int(i * 4 + t));
                        c.put(key, Value::Bytes(vec![0; 128]));
                        i += 1;
                    }
                })
            })
            .collect();
        // The reader must sail through a large number of metric reads
        // while the writers hold shard locks; counters only grow.
        let mut last = 0u64;
        for _ in 0..50_000 {
            let s = c.stats();
            let total = s.hits + s.misses + s.evictions;
            assert!(total >= last, "counters went backwards");
            last = total;
            let _ = c.len();
            let _ = c.bytes();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(c.bytes() <= 32 * 1024);
    }
}
