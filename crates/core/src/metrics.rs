//! The paper's three measurement points (§V-A) and summary helpers.

use std::time::Duration;

/// Nested timings of one request.
///
/// * `inference` — "captured at the servable; the time taken … to run
///   the component".
/// * `invocation` — "captured at the Task Manager; elapsed time from
///   when a request is made to the executor to when the result is
///   received".
/// * `request` — "captured at the Management Service; the time from
///   receipt of the task request to receipt of its result".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Servable execution time.
    pub inference: Duration,
    /// Executor round trip as seen by the Task Manager.
    pub invocation: Duration,
    /// End-to-end time as seen by the Management Service.
    pub request: Duration,
    /// Whether the memo cache served this request.
    pub cache_hit: bool,
}

/// Single percentile (`0.0 ..= 1.0`, nearest-rank) of a duration
/// series. `None` on an empty series.
pub fn percentile(series: &[Duration], q: f64) -> Option<Duration> {
    if series.is_empty() {
        return None;
    }
    let mut sorted = series.to_vec();
    sorted.sort();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// Percentile summary of a duration series: `(p5, median, p95)` —
/// exactly the statistics the paper's error bars show. `None` on an
/// empty series (earlier versions panicked here while [`mean`]
/// silently returned zero; both now report emptiness the same way).
pub fn percentile_summary(series: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    if series.is_empty() {
        return None;
    }
    let mut sorted = series.to_vec();
    sorted.sort();
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    Some((at(0.05), at(0.5), at(0.95)))
}

/// Mean of a duration series. `None` on an empty series.
pub fn mean(series: &[Duration]) -> Option<Duration> {
    if series.is_empty() {
        return None;
    }
    let total: Duration = series.iter().sum();
    Some(total / series.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_ordered() {
        let series: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let (p5, p50, p95) = percentile_summary(&series).unwrap();
        // round(99 * 0.5) = 50 -> the 51st value of 1..=100.
        assert_eq!(p50, Duration::from_millis(51));
        assert!(p5 < p50 && p50 < p95);
        assert_eq!(p5, Duration::from_millis(6));
        assert_eq!(p95, Duration::from_millis(95));
        assert_eq!(percentile(&series, 0.5), Some(p50));
        assert_eq!(percentile(&series, 0.0), Some(Duration::from_millis(1)));
        assert_eq!(percentile(&series, 1.0), Some(Duration::from_millis(100)));
    }

    #[test]
    fn single_sample_summary() {
        let (p5, p50, p95) = percentile_summary(&[Duration::from_millis(7)]).unwrap();
        assert_eq!(p5, p50);
        assert_eq!(p50, p95);
    }

    #[test]
    fn mean_of_series() {
        let series = vec![Duration::from_millis(10), Duration::from_millis(30)];
        assert_eq!(mean(&series), Some(Duration::from_millis(20)));
    }

    #[test]
    fn empty_series_report_none_consistently() {
        assert_eq!(percentile_summary(&[]), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(percentile(&[], 0.5), None);
    }
}
