//! The paper's three measurement points (§V-A) and summary helpers.

use std::time::Duration;

/// Nested timings of one request.
///
/// * `inference` — "captured at the servable; the time taken … to run
///   the component".
/// * `invocation` — "captured at the Task Manager; elapsed time from
///   when a request is made to the executor to when the result is
///   received".
/// * `request` — "captured at the Management Service; the time from
///   receipt of the task request to receipt of its result".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Servable execution time.
    pub inference: Duration,
    /// Executor round trip as seen by the Task Manager.
    pub invocation: Duration,
    /// End-to-end time as seen by the Management Service.
    pub request: Duration,
    /// Whether the memo cache served this request.
    pub cache_hit: bool,
}

/// Percentile summary of a duration series: `(p5, median, p95)` —
/// exactly the statistics the paper's error bars show.
pub fn percentile_summary(series: &[Duration]) -> (Duration, Duration, Duration) {
    assert!(!series.is_empty(), "empty timing series");
    let mut sorted = series.to_vec();
    sorted.sort();
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (at(0.05), at(0.5), at(0.95))
}

/// Mean of a duration series.
pub fn mean(series: &[Duration]) -> Duration {
    if series.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = series.iter().sum();
    total / series.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_ordered() {
        let series: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let (p5, p50, p95) = percentile_summary(&series);
        // round(99 * 0.5) = 50 -> the 51st value of 1..=100.
        assert_eq!(p50, Duration::from_millis(51));
        assert!(p5 < p50 && p50 < p95);
        assert_eq!(p5, Duration::from_millis(6));
        assert_eq!(p95, Duration::from_millis(95));
    }

    #[test]
    fn single_sample_summary() {
        let (p5, p50, p95) = percentile_summary(&[Duration::from_millis(7)]);
        assert_eq!(p5, p50);
        assert_eq!(p50, p95);
    }

    #[test]
    fn mean_of_series() {
        let series = vec![Duration::from_millis(10), Duration::from_millis(30)];
        assert_eq!(mean(&series), Duration::from_millis(20));
        assert_eq!(mean(&[]), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty timing series")]
    fn empty_percentiles_panic() {
        percentile_summary(&[]);
    }
}
