//! Multi-servable pipelines (§VI-D).
//!
//! "Defining these steps as a pipeline means data are automatically
//! passed between each servable in the pipeline, meaning the entire
//! execution is performed server-side, drastically lowering both the
//! latency and user burden."

use serde::{Deserialize, Serialize};

/// A named, ordered sequence of servable ids. The output of step *k*
/// becomes the input of step *k + 1*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Pipeline name (registered in the same namespace as servables).
    pub name: String,
    /// Servable ids in execution order.
    pub steps: Vec<String>,
    /// Human description for discovery.
    pub description: String,
}

impl Pipeline {
    /// Build a pipeline definition.
    pub fn new(name: impl Into<String>, steps: Vec<String>) -> Self {
        Pipeline {
            name: name.into(),
            steps,
            description: String::new(),
        }
    }

    /// Validate structural invariants: non-empty name and steps, no
    /// immediate self-loops.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("pipeline name must be non-empty".into());
        }
        if self.steps.is_empty() {
            return Err("pipeline must have at least one step".into());
        }
        for pair in self.steps.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!("pipeline repeats step '{}' consecutively", pair[0]));
            }
        }
        Ok(())
    }
}

/// Per-step timing of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Which servable ran.
    pub servable: String,
    /// That step's request timings.
    pub timings: crate::metrics::Timings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_pipeline_passes() {
        let p = Pipeline::new(
            "formation-enthalpy",
            vec![
                "logan/matminer-util".into(),
                "logan/matminer-featurize".into(),
                "logan/matminer-model".into(),
            ],
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn structural_violations_rejected() {
        assert!(Pipeline::new("", vec!["a".into()]).validate().is_err());
        assert!(Pipeline::new("p", vec![]).validate().is_err());
        assert!(Pipeline::new("p", vec!["a".into(), "a".into()])
            .validate()
            .is_err());
    }

    #[test]
    fn serializes() {
        let p = Pipeline::new("p", vec!["a/b".into()]);
        let s = serde_json::to_string(&p).unwrap();
        let back: Pipeline = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
    }
}
