//! Servable execution profiles.
//!
//! The paper's future work (§V-B3): "we intend to use such servable
//! profiles to design adaptive batching algorithms that intelligently
//! distribute serving requests to reduce latency." A
//! [`ServableProfile`] is the rolling per-servable record of observed
//! inference and dispatch costs that the adaptive batcher
//! ([`crate::batch::BatchSizing::Adaptive`]) and the replica autoscaler
//! ([`crate::autoscale`]) consume.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Exponentially weighted moving average with a fixed smoothing
/// factor; cheap enough to update on every request.
#[derive(Debug, Clone, Copy)]
struct Ewma {
    value: f64,
    initialized: bool,
}

impl Ewma {
    const ALPHA: f64 = 0.2;

    fn new() -> Self {
        Ewma {
            value: 0.0,
            initialized: false,
        }
    }

    fn update(&mut self, sample: f64) {
        if self.initialized {
            self.value += Self::ALPHA * (sample - self.value);
        } else {
            self.value = sample;
            self.initialized = true;
        }
    }
}

/// Rolling profile of one servable's observed costs.
#[derive(Debug, Clone)]
pub struct ServableProfile {
    /// Smoothed single-item inference time.
    pub inference: Duration,
    /// Smoothed per-task overhead (invocation − inference): dispatch,
    /// transfer, **and queueing** under load.
    pub overhead: Duration,
    /// Smallest overhead ever observed: the uncontended dispatch
    /// floor. Under concurrency the mean overhead is inflated by
    /// queue wait — which is *demand*, not cost — so capacity
    /// decisions (the Fig 7 knee) must use the floor.
    pub overhead_floor: Duration,
    /// Total observations folded into the profile.
    pub samples: u64,
}

impl ServableProfile {
    /// The batch size at which per-item overhead drops below
    /// `target_overhead_fraction` of per-item total cost:
    /// overhead / (batch · inference + overhead) ≤ f. Saturates at
    /// `max` and never returns 0.
    pub fn suggested_batch(&self, target_overhead_fraction: f64, max: usize) -> usize {
        let overhead = self.overhead.as_secs_f64();
        let inference = self.inference.as_secs_f64();
        if overhead <= 0.0 {
            return 1;
        }
        if inference <= 0.0 {
            // Pure-overhead servables (noop-like): batch as much as
            // allowed, every extra item is free.
            return max.max(1);
        }
        let f = target_overhead_fraction.clamp(1e-3, 0.999);
        // Solve overhead / (n·inference + overhead) = f for n.
        let n = overhead * (1.0 - f) / (f * inference);
        (n.ceil() as usize).clamp(1, max.max(1))
    }

    /// Replica count at which dispatch stops being amortizable:
    /// ceil(inference / dispatch-floor) — the Fig 7 knee. Uses
    /// [`ServableProfile::overhead_floor`] so queueing delay under
    /// load (which extra replicas would *remove*) does not masquerade
    /// as dispatch cost. With a negligible floor the knee is unbounded
    /// (replicas are pure win up to the budget); with negligible
    /// inference a single replica already keeps up.
    pub fn suggested_replicas(&self, max: usize) -> usize {
        let floor = self.overhead_floor.as_secs_f64();
        let inference = self.inference.as_secs_f64();
        if inference <= 0.0 {
            return 1;
        }
        if floor <= 0.0 {
            return max.max(1);
        }
        ((inference / floor).ceil() as usize).clamp(1, max.max(1))
    }
}

#[derive(Default)]
struct Entry {
    inference: Option<Ewma>,
    overhead: Option<Ewma>,
    overhead_floor: Option<f64>,
    samples: u64,
}

/// Thread-safe registry of per-servable profiles.
#[derive(Clone, Default)]
pub struct ProfileRegistry {
    entries: Arc<RwLock<HashMap<String, Entry>>>,
}

impl ProfileRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ProfileRegistry::default()
    }

    /// Fold one request's timings into the servable's profile.
    /// `items` is the batch size the invocation carried.
    pub fn record(
        &self,
        servable: &str,
        inference_total: Duration,
        invocation: Duration,
        items: usize,
    ) {
        let items = items.max(1) as f64;
        let per_item_inference = inference_total.as_secs_f64() / items;
        let overhead = (invocation.saturating_sub(inference_total)).as_secs_f64();
        let mut entries = self.entries.write();
        let entry = entries.entry(servable.to_string()).or_default();
        entry
            .inference
            .get_or_insert_with(Ewma::new)
            .update(per_item_inference);
        entry
            .overhead
            .get_or_insert_with(Ewma::new)
            .update(overhead);
        entry.overhead_floor = Some(match entry.overhead_floor {
            Some(floor) => floor.min(overhead),
            None => overhead,
        });
        entry.samples += 1;
    }

    /// Current profile, if the servable has been observed.
    pub fn get(&self, servable: &str) -> Option<ServableProfile> {
        let entries = self.entries.read();
        let entry = entries.get(servable)?;
        Some(ServableProfile {
            inference: Duration::from_secs_f64(
                entry.inference.map(|e| e.value).unwrap_or(0.0).max(0.0),
            ),
            overhead: Duration::from_secs_f64(
                entry.overhead.map(|e| e.value).unwrap_or(0.0).max(0.0),
            ),
            overhead_floor: Duration::from_secs_f64(entry.overhead_floor.unwrap_or(0.0).max(0.0)),
            samples: entry.samples,
        })
    }

    /// Names of profiled servables.
    pub fn servables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(inference_ms: f64, overhead_ms: f64) -> ServableProfile {
        ServableProfile {
            inference: Duration::from_secs_f64(inference_ms / 1e3),
            overhead: Duration::from_secs_f64(overhead_ms / 1e3),
            overhead_floor: Duration::from_secs_f64(overhead_ms / 1e3),
            samples: 10,
        }
    }

    #[test]
    fn record_and_get() {
        let reg = ProfileRegistry::new();
        assert!(reg.get("m").is_none());
        reg.record("m", Duration::from_millis(40), Duration::from_millis(45), 1);
        let p = reg.get("m").unwrap();
        assert_eq!(p.samples, 1);
        assert!((p.inference.as_secs_f64() - 0.040).abs() < 1e-9);
        assert!((p.overhead.as_secs_f64() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn ewma_converges_toward_new_regime() {
        let reg = ProfileRegistry::new();
        for _ in 0..50 {
            reg.record("m", Duration::from_millis(10), Duration::from_millis(12), 1);
        }
        let before = reg.get("m").unwrap().inference;
        for _ in 0..50 {
            reg.record("m", Duration::from_millis(30), Duration::from_millis(32), 1);
        }
        let after = reg.get("m").unwrap().inference;
        assert!(after > before);
        assert!((after.as_secs_f64() - 0.030).abs() < 0.005);
    }

    #[test]
    fn batch_sizes_fold_into_per_item_costs() {
        let reg = ProfileRegistry::new();
        // 10 items, 100ms total inference => 10ms/item.
        reg.record(
            "m",
            Duration::from_millis(100),
            Duration::from_millis(104),
            10,
        );
        let p = reg.get("m").unwrap();
        assert!((p.inference.as_secs_f64() - 0.010).abs() < 1e-9);
        assert!((p.overhead.as_secs_f64() - 0.004).abs() < 1e-9);
    }

    #[test]
    fn suggested_batch_grows_with_overhead_ratio() {
        // Cheap compute, big overhead: wants big batches.
        let cheap = profile(0.01, 3.0);
        // Expensive compute: batch of 1-2 suffices.
        let heavy = profile(40.0, 3.0);
        let b_cheap = cheap.suggested_batch(0.1, 1000);
        let b_heavy = heavy.suggested_batch(0.1, 1000);
        assert!(b_cheap > 100 * b_heavy.max(1), "{b_cheap} vs {b_heavy}");
        assert!(b_heavy >= 1);
    }

    #[test]
    fn suggested_batch_edge_cases() {
        assert_eq!(profile(0.0, 3.0).suggested_batch(0.1, 64), 64);
        assert_eq!(profile(5.0, 0.0).suggested_batch(0.1, 64), 1);
        // Clamped to max.
        assert_eq!(profile(0.001, 100.0).suggested_batch(0.1, 16), 16);
    }

    #[test]
    fn queueing_inflates_mean_overhead_but_not_the_floor() {
        let reg = ProfileRegistry::new();
        // One uncontended request…
        reg.record("m", Duration::from_millis(10), Duration::from_millis(11), 1);
        // …then heavy contention: 80ms of queue wait per request.
        for _ in 0..20 {
            reg.record("m", Duration::from_millis(10), Duration::from_millis(90), 1);
        }
        let p = reg.get("m").unwrap();
        assert!(
            p.overhead > Duration::from_millis(40),
            "mean {:?}",
            p.overhead
        );
        assert_eq!(p.overhead_floor, Duration::from_millis(1));
        // The knee uses the floor: 10ms / 1ms => 10 replicas, not 1.
        assert_eq!(p.suggested_replicas(32), 10);
    }

    #[test]
    fn suggested_replicas_matches_fig7_knee() {
        // 40ms service / 3ms dispatch ≈ 14 replicas — the paper's ~15.
        let p = profile(40.0, 3.0);
        let r = p.suggested_replicas(32);
        assert!((12..=16).contains(&r), "knee {r}");
        // Short servables want few replicas.
        assert_eq!(profile(0.001, 3.0).suggested_replicas(32), 1);
    }
}
