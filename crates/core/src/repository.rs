//! The model repository (§IV-A): publication, servable/container
//! builds, versioning, DOIs, discovery and access control.

use crate::error::DlhubError;
use crate::servable::{Servable, ServableMetadata};
use dlhub_auth::{Acl, AuthService, Scope, Token, TokenInfo};
use dlhub_container::{Dependency, Digest, ImageBuilder, Recipe, Registry};
use dlhub_search::{Document, Index, Query, SearchHit};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The scope required to publish models.
pub const PUBLISH_SCOPE: &str = "dlhub:publish";
/// The scope required to invoke models.
pub const SERVE_SCOPE: &str = "dlhub:serve";
/// The auth resource server DLHub registers as (§IV-D).
pub const RESOURCE_SERVER: &str = "dlhub";

/// Desired visibility at publication time.
#[derive(Debug, Clone)]
pub enum PublishVisibility {
    /// Discoverable and invocable by anyone.
    Public,
    /// Only the owner plus the listed users/groups (the CANDLE
    /// pre-release flow, §VI-A).
    Restricted {
        /// Additional allowed identities (qualified names).
        users: Vec<String>,
        /// Allowed group names.
        groups: Vec<String>,
    },
}

/// Receipt returned by a successful publication.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishReceipt {
    /// Servable id (`owner/name`).
    pub id: String,
    /// Version number (1 for first publication).
    pub version: u32,
    /// Minted DOI for citation.
    pub doi: String,
    /// Digest of the built servable container.
    pub image: Digest,
}

/// A published entry.
pub struct Published {
    /// Current metadata.
    pub metadata: ServableMetadata,
    /// Current version.
    pub version: u32,
    /// DOI of the current version.
    pub doi: String,
    /// Container image digest of the current version.
    pub image: Digest,
    /// Access policy.
    pub acl: Acl,
    servable: Arc<dyn Servable>,
}

/// DLHub-runtime dependencies merged into every servable container
/// ("combines DLHub-specific dependencies with user-supplied model
/// dependencies", §IV-A).
fn shim_dependencies() -> Vec<Dependency> {
    vec![
        Dependency::new("dlhub-shim", "0.1"),
        Dependency::new("parsl", "0.7"),
    ]
}

/// The repository. Thread-safe; share via `Arc`.
pub struct Repository {
    auth: AuthService,
    search: Index,
    registry: Registry,
    builder: Mutex<ImageBuilder>,
    entries: RwLock<HashMap<String, Published>>,
}

impl Repository {
    /// Create a repository wired to an auth service. Registers the
    /// DLHub resource server and its scopes.
    pub fn new(auth: AuthService) -> Self {
        auth.register_resource_server(RESOURCE_SERVER, &[PUBLISH_SCOPE, SERVE_SCOPE]);
        Repository {
            auth,
            search: Index::new(),
            registry: Registry::new(),
            builder: Mutex::new(ImageBuilder::new()),
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// The auth service backing this repository.
    pub fn auth(&self) -> &AuthService {
        &self.auth
    }

    /// The container registry holding servable images.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn authorize(&self, token: &Token, scope: &str) -> Result<TokenInfo, DlhubError> {
        self.auth
            .authorize(token, &Scope::new(RESOURCE_SERVER, scope))
            .map_err(DlhubError::from)
    }

    /// The caller's search/ACL principals: each linked identity plus
    /// each group membership. Anonymous callers have none.
    pub fn principals(&self, token: Option<&Token>) -> Vec<String> {
        let Some(token) = token else {
            return Vec::new();
        };
        let Ok(info) = self.auth.introspect(token) else {
            return Vec::new();
        };
        let mut out: Vec<String> = info
            .linked_identities
            .iter()
            .map(|id| format!("id-{}", id.0))
            .collect();
        if let Ok(groups) = self.auth.groups_of(info.identity) {
            out.extend(groups.into_iter().map(|g| format!("group:{g}")));
        }
        out
    }

    /// Publish (or republish) a model: validates metadata, builds the
    /// servable container, mints a DOI, indexes the metadata, and
    /// stores the implementation.
    pub fn publish(
        &self,
        token: &Token,
        mut metadata: ServableMetadata,
        servable: Arc<dyn Servable>,
        components: BTreeMap<String, Vec<u8>>,
        visibility: PublishVisibility,
    ) -> Result<PublishReceipt, DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        if metadata.name.is_empty() || metadata.name.contains('/') {
            return Err(DlhubError::Publication(
                "model name must be non-empty and must not contain '/'".into(),
            ));
        }
        // Pre-complete owner from the authenticated profile (§IV-D).
        let identity = self.auth.identity(info.identity)?;
        metadata.owner = identity.qualified_name();
        let id = metadata.id();

        // Version bump requires ownership of the existing entry.
        let next_version = {
            let entries = self.entries.read();
            match entries.get(&id) {
                Some(existing) => {
                    if !existing.acl.is_owner(&info.linked_identities) {
                        return Err(DlhubError::Publication(format!(
                            "{id} is already published by another user"
                        )));
                    }
                    existing.version + 1
                }
                None => 1,
            }
        };

        // Build the servable container: DLHub shim deps merged with
        // the user's pinned deps, plus uploaded model components.
        let mut recipe = Recipe::from_base("python:3.7");
        recipe
            .merge_dependencies(shim_dependencies())
            .and_then(|r| {
                r.merge_dependencies(
                    metadata
                        .dependencies
                        .iter()
                        .map(|(n, v)| Dependency::new(n.clone(), v.clone())),
                )
            })
            .map_err(|e| DlhubError::Publication(e.to_string()))?;
        for (path, content) in components {
            recipe.add_file(path, content);
        }
        recipe.entrypoint("dlhub-shim --serve");
        let image = self.builder.lock().build(&recipe);
        let reference = format!("dlhub/{}:v{next_version}", id.replace('/', "-"));
        self.registry.push(&reference, image.clone());

        // Mint a citable identifier.
        let doi = format!(
            "10.26311/dlhub.{:08x}.v{next_version}",
            image.digest.0 as u32
        );

        // Assemble the ACL.
        let mut acl = match &visibility {
            PublishVisibility::Public => Acl::public(info.identity),
            PublishVisibility::Restricted { .. } => Acl::restricted(info.identity),
        };
        if let PublishVisibility::Restricted { users, groups } = &visibility {
            for qualified in users {
                let uid = self
                    .auth
                    .lookup(qualified)
                    .ok_or_else(|| DlhubError::Publication(format!("unknown user: {qualified}")))?;
                acl.allow_user(uid);
            }
            for g in groups {
                acl.allow_group(g.clone());
            }
        }

        self.index_entry(&id, &metadata, &acl, next_version)?;
        self.entries.write().insert(
            id.clone(),
            Published {
                metadata,
                version: next_version,
                doi: doi.clone(),
                image: image.digest,
                acl,
                servable,
            },
        );
        Ok(PublishReceipt {
            id,
            version: next_version,
            doi,
            image: image.digest,
        })
    }

    fn index_entry(
        &self,
        id: &str,
        metadata: &ServableMetadata,
        acl: &Acl,
        version: u32,
    ) -> Result<(), DlhubError> {
        let mut doc = metadata.to_search_document();
        doc["version"] = serde_json::json!(version);
        let visible_to = acl_principals(acl);
        self.search
            .upsert(Document::new(id, doc, visible_to))
            .map_err(|e| DlhubError::Publication(e.to_string()))
    }

    /// Fetch the implementation of a servable the caller may invoke.
    /// Restricted models are indistinguishable from missing ones.
    pub fn resolve(
        &self,
        token: Option<&Token>,
        id: &str,
    ) -> Result<(Arc<dyn Servable>, ServableMetadata), DlhubError> {
        let principals = self.principals(token);
        let entries = self.entries.read();
        let entry = entries
            .get(id)
            .filter(|e| permits(&e.acl, &principals))
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        Ok((Arc::clone(&entry.servable), entry.metadata.clone()))
    }

    /// Publish with components staged from a remote endpoint — the
    /// paper's actual upload path: "model components can be uploaded
    /// to … a Globus endpoint. Once a model is published, the
    /// Management Service downloads the components and builds the
    /// servable" (§IV-A), acting on the user's behalf (§IV-D).
    ///
    /// Every file under `prefix` on `source` is transferred (with
    /// integrity verification) into `staging`, then baked into the
    /// servable container. Any transfer failure aborts publication.
    #[allow(clippy::too_many_arguments)]
    pub fn publish_from_endpoint(
        &self,
        token: &Token,
        metadata: ServableMetadata,
        servable: Arc<dyn Servable>,
        transfer: &dlhub_transfer::TransferService,
        source: &dlhub_transfer::Endpoint,
        prefix: &str,
        staging: &dlhub_transfer::Endpoint,
        visibility: PublishVisibility,
    ) -> Result<PublishReceipt, DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let paths = source.list(prefix);
        if paths.is_empty() {
            return Err(DlhubError::Publication(format!(
                "no components under {prefix} on {}",
                source.name()
            )));
        }
        // Stage all components concurrently, acting as the user.
        let tasks: Vec<(String, dlhub_transfer::TransferTaskId)> = paths
            .iter()
            .map(|path| {
                let staged_path = format!("/staging{path}");
                transfer
                    .submit_as(Some(info.identity), source, path, staging, &staged_path)
                    .map(|task| (path.clone(), task))
                    .map_err(|e| DlhubError::Publication(e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let mut components = BTreeMap::new();
        for (path, task) in tasks {
            let done = transfer
                .wait(&task)
                .map_err(|e| DlhubError::Publication(e.to_string()))?;
            if done.status != dlhub_transfer::TransferStatus::Succeeded {
                return Err(DlhubError::Publication(format!(
                    "staging {path} failed: {}",
                    done.error.unwrap_or_else(|| "unknown".into())
                )));
            }
            let staged_path = format!("/staging{path}");
            let content = staging.get(&staged_path).ok_or_else(|| {
                DlhubError::Publication(format!("staged file vanished: {staged_path}"))
            })?;
            components.insert(path, content);
        }
        self.publish(token, metadata, servable, components, visibility)
    }

    /// Publish several servables as one **bundle** sharing a single
    /// container image — the paper's §VII extension ("integrating
    /// multiple servables into single containers"). All components are
    /// baked into one image; each servable is registered, versioned
    /// and indexed individually but points at the shared digest, so a
    /// Task Manager deploying any of them pulls one image.
    pub fn publish_bundle(
        &self,
        token: &Token,
        bundle: &str,
        entries: Vec<(ServableMetadata, Arc<dyn Servable>)>,
        components: BTreeMap<String, Vec<u8>>,
        visibility: PublishVisibility,
    ) -> Result<Vec<PublishReceipt>, DlhubError> {
        if entries.is_empty() {
            return Err(DlhubError::Publication(
                "a bundle needs at least one servable".into(),
            ));
        }
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let identity = self.auth.identity(info.identity)?;

        // One image for the whole bundle: union of all dependencies
        // plus all components.
        let mut recipe = Recipe::from_base("python:3.7");
        recipe
            .merge_dependencies(shim_dependencies())
            .map_err(|e| DlhubError::Publication(e.to_string()))?;
        for (metadata, _) in &entries {
            recipe
                .merge_dependencies(
                    metadata
                        .dependencies
                        .iter()
                        .map(|(n, v)| Dependency::new(n.clone(), v.clone())),
                )
                .map_err(|e| DlhubError::Publication(e.to_string()))?;
        }
        for (path, content) in components {
            recipe.add_file(path, content);
        }
        recipe.entrypoint("dlhub-shim --serve-bundle");
        let image = self.builder.lock().build(&recipe);
        let user = identity.qualified_name();
        let user_short = user.split('@').next().unwrap_or(&user);
        self.registry.push(
            &format!("dlhub/{user_short}-{bundle}:bundle"),
            image.clone(),
        );

        // Register each member against the shared image. Validate all
        // names before touching state so a bundle publishes atomically
        // or not at all.
        for (metadata, _) in &entries {
            if metadata.name.is_empty() || metadata.name.contains('/') {
                return Err(DlhubError::Publication(format!(
                    "invalid servable name in bundle: {:?}",
                    metadata.name
                )));
            }
        }
        let mut receipts = Vec::with_capacity(entries.len());
        for (mut metadata, servable) in entries {
            metadata.owner = user.clone();
            metadata.tags.push(format!("bundle:{bundle}"));
            let id = metadata.id();
            let next_version = {
                let store = self.entries.read();
                match store.get(&id) {
                    Some(existing) => {
                        if !existing.acl.is_owner(&info.linked_identities) {
                            return Err(DlhubError::Publication(format!(
                                "{id} is already published by another user"
                            )));
                        }
                        existing.version + 1
                    }
                    None => 1,
                }
            };
            let doi = format!(
                "10.26311/dlhub.{:08x}.v{next_version}",
                image.digest.0 as u32 ^ (id.len() as u32).rotate_left(16)
            );
            let mut acl = match &visibility {
                PublishVisibility::Public => Acl::public(info.identity),
                PublishVisibility::Restricted { .. } => Acl::restricted(info.identity),
            };
            if let PublishVisibility::Restricted { users, groups } = &visibility {
                for qualified in users {
                    let uid = self.auth.lookup(qualified).ok_or_else(|| {
                        DlhubError::Publication(format!("unknown user: {qualified}"))
                    })?;
                    acl.allow_user(uid);
                }
                for g in groups {
                    acl.allow_group(g.clone());
                }
            }
            self.index_entry(&id, &metadata, &acl, next_version)?;
            self.entries.write().insert(
                id.clone(),
                Published {
                    metadata,
                    version: next_version,
                    doi: doi.clone(),
                    image: image.digest,
                    acl,
                    servable,
                },
            );
            receipts.push(PublishReceipt {
                id,
                version: next_version,
                doi,
                image: image.digest,
            });
        }
        Ok(receipts)
    }

    /// Resolution for Task Managers, which execute tasks the
    /// Management Service has already authorized — the trusted
    /// internal path, bypassing ACLs.
    pub fn resolve_internal(
        &self,
        id: &str,
    ) -> Result<(Arc<dyn Servable>, ServableMetadata), DlhubError> {
        let entries = self.entries.read();
        let entry = entries
            .get(id)
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        Ok((Arc::clone(&entry.servable), entry.metadata.clone()))
    }

    /// Describe a visible servable: `(metadata, version, doi)`.
    pub fn describe(
        &self,
        token: Option<&Token>,
        id: &str,
    ) -> Result<(ServableMetadata, u32, String), DlhubError> {
        let principals = self.principals(token);
        let entries = self.entries.read();
        let entry = entries
            .get(id)
            .filter(|e| permits(&e.acl, &principals))
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        Ok((entry.metadata.clone(), entry.version, entry.doi.clone()))
    }

    /// Search visible models.
    pub fn search(&self, token: Option<&Token>, query: &Query) -> Vec<SearchHit> {
        self.search.search(query, &self.principals(token)).hits
    }

    /// Faceted search over visible models.
    pub fn search_faceted(
        &self,
        token: Option<&Token>,
        query: &Query,
        facets: &[&str],
    ) -> dlhub_search::SearchResults {
        self.search
            .search_faceted(query, &self.principals(token), facets)
    }

    /// Flip a restricted model public (owner only) — the CANDLE
    /// general-release transition (§VI-A).
    pub fn make_public(&self, token: &Token, id: &str) -> Result<(), DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(id)
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        if !entry.acl.is_owner(&info.linked_identities) {
            return Err(DlhubError::Auth(format!("not an owner of {id}")));
        }
        entry.acl.make_public();
        let (metadata, acl, version) = (entry.metadata.clone(), entry.acl.clone(), entry.version);
        drop(entries);
        self.index_entry(id, &metadata, &acl, version)
    }

    /// Grant a user access to a restricted model (owner only).
    pub fn share_with(
        &self,
        token: &Token,
        id: &str,
        qualified_user: &str,
    ) -> Result<(), DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let uid = self
            .auth
            .lookup(qualified_user)
            .ok_or_else(|| DlhubError::Auth(format!("unknown user: {qualified_user}")))?;
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(id)
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        if !entry.acl.is_owner(&info.linked_identities) {
            return Err(DlhubError::Auth(format!("not an owner of {id}")));
        }
        entry.acl.allow_user(uid);
        let (metadata, acl, version) = (entry.metadata.clone(), entry.acl.clone(), entry.version);
        drop(entries);
        self.index_entry(id, &metadata, &acl, version)
    }

    /// Withdraw a model (owner only): removes the serving entry and
    /// its search document. Container images remain pullable by
    /// digest so prior results stay reproducible — withdrawal stops
    /// *serving*, not *citation*.
    pub fn unpublish(&self, token: &Token, id: &str) -> Result<(), DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let mut entries = self.entries.write();
        let entry = entries
            .get(id)
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        if !entry.acl.is_owner(&info.linked_identities) {
            return Err(DlhubError::Auth(format!("not an owner of {id}")));
        }
        entries.remove(id);
        drop(entries);
        self.search.delete(id);
        Ok(())
    }

    /// Update mutable metadata fields (owner only); reindexes.
    pub fn update_metadata(
        &self,
        token: &Token,
        id: &str,
        description: Option<String>,
        tags: Option<Vec<String>>,
    ) -> Result<(), DlhubError> {
        let info = self.authorize(token, PUBLISH_SCOPE)?;
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(id)
            .ok_or_else(|| DlhubError::NotFound(id.to_string()))?;
        if !entry.acl.is_owner(&info.linked_identities) {
            return Err(DlhubError::Auth(format!("not an owner of {id}")));
        }
        if let Some(d) = description {
            entry.metadata.description = d;
        }
        if let Some(t) = tags {
            entry.metadata.tags = t;
        }
        let (metadata, acl, version) = (entry.metadata.clone(), entry.acl.clone(), entry.version);
        drop(entries);
        self.index_entry(id, &metadata, &acl, version)
    }

    /// Ids of all published servables (unfiltered; internal use).
    pub fn all_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.entries.read().keys().cloned().collect();
        ids.sort();
        ids
    }
}

fn acl_principals(acl: &Acl) -> Vec<String> {
    use dlhub_auth::Visibility;
    match acl.visibility {
        Visibility::Public => vec!["public".to_string()],
        Visibility::Restricted => {
            let mut out: Vec<String> = acl
                .owners
                .iter()
                .chain(acl.allowed_users.iter())
                .map(|id| format!("id-{}", id.0))
                .collect();
            out.extend(acl.allowed_groups.iter().map(|g| format!("group:{g}")));
            out
        }
    }
}

fn permits(acl: &Acl, principals: &[String]) -> bool {
    use dlhub_auth::Visibility;
    if acl.visibility == Visibility::Public {
        return true;
    }
    let allowed = acl_principals(acl);
    principals.iter().any(|p| allowed.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servable::builtins::NoopServable;
    use crate::servable::{servable_fn, ModelType};
    use crate::value::Value;

    struct Fixture {
        repo: Repository,
        alice: Token,
        bob: Token,
    }

    fn fixture() -> Fixture {
        let auth = AuthService::new();
        auth.register_provider("uchicago.edu");
        let repo = Repository::new(auth.clone());
        let a = auth.register_identity("uchicago.edu", "alice").unwrap();
        let b = auth.register_identity("uchicago.edu", "bob").unwrap();
        let scopes = [
            Scope::new(RESOURCE_SERVER, PUBLISH_SCOPE),
            Scope::new(RESOURCE_SERVER, SERVE_SCOPE),
        ];
        Fixture {
            alice: auth.issue_token(a, &scopes).unwrap(),
            bob: auth.issue_token(b, &scopes).unwrap(),
            repo,
        }
    }

    fn meta(name: &str) -> ServableMetadata {
        ServableMetadata::new(name, "ignored@provider", ModelType::PythonFunction)
    }

    #[test]
    fn publish_and_resolve() {
        let f = fixture();
        let receipt = f
            .repo
            .publish(
                &f.alice,
                meta("noop"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(receipt.id, "alice/noop");
        assert_eq!(receipt.version, 1);
        assert!(receipt.doi.starts_with("10.26311/dlhub."));
        let (servable, metadata) = f.repo.resolve(None, "alice/noop").unwrap();
        assert_eq!(metadata.owner, "alice@uchicago.edu");
        assert_eq!(
            servable.run(&Value::Null).unwrap(),
            Value::Str("hello world".into())
        );
    }

    #[test]
    fn owner_is_precompleted_from_token() {
        let f = fixture();
        // Metadata claims a different owner; publication overrides it.
        let mut m = meta("m");
        m.owner = "mallory@evil.example".into();
        let receipt = f
            .repo
            .publish(
                &f.alice,
                m,
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(receipt.id, "alice/m");
    }

    #[test]
    fn republish_bumps_version_and_keeps_doi_fresh() {
        let f = fixture();
        let first = f
            .repo
            .publish(
                &f.alice,
                meta("m"),
                servable_fn(|_| Ok(Value::Int(1))),
                BTreeMap::from([("weights".into(), vec![1u8])]),
                PublishVisibility::Public,
            )
            .unwrap();
        let second = f
            .repo
            .publish(
                &f.alice,
                meta("m"),
                servable_fn(|_| Ok(Value::Int(2))),
                BTreeMap::from([("weights".into(), vec![2u8])]),
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(second.version, 2);
        assert_ne!(first.doi, second.doi);
        assert_ne!(first.image, second.image);
        let (servable, _) = f.repo.resolve(None, "alice/m").unwrap();
        assert_eq!(servable.run(&Value::Null).unwrap(), Value::Int(2));
        // Both images remain pullable (reproducibility).
        assert!(f.repo.registry().pull_digest(first.image).is_ok());
    }

    #[test]
    fn cannot_squat_anothers_model() {
        let f = fixture();
        f.repo
            .publish(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        // Bob can publish bob/m — ids are namespaced per owner.
        let ok = f.repo.publish(
            &f.bob,
            meta("m"),
            Arc::new(NoopServable),
            BTreeMap::new(),
            PublishVisibility::Public,
        );
        assert_eq!(ok.unwrap().id, "bob/m");
    }

    #[test]
    fn bad_names_rejected() {
        let f = fixture();
        for bad in ["", "a/b"] {
            let err = f
                .repo
                .publish(
                    &f.alice,
                    meta(bad),
                    Arc::new(NoopServable),
                    BTreeMap::new(),
                    PublishVisibility::Public,
                )
                .unwrap_err();
            assert!(matches!(err, DlhubError::Publication(_)));
        }
    }

    #[test]
    fn dependency_conflict_rejected() {
        let f = fixture();
        let mut m = meta("m");
        // Conflicts with the dlhub shim's pinned parsl version.
        m.dependencies = vec![("parsl".into(), "0.6".into())];
        let err = f
            .repo
            .publish(
                &f.alice,
                m,
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(err.to_string().contains("conflict"));
    }

    #[test]
    fn restricted_models_hidden_from_strangers() {
        let f = fixture();
        f.repo
            .publish(
                &f.alice,
                meta("secret"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Restricted {
                    users: vec![],
                    groups: vec![],
                },
            )
            .unwrap();
        // Bob and anonymous see NotFound, not a permission error.
        assert!(matches!(
            f.repo.resolve(Some(&f.bob), "alice/secret"),
            Err(DlhubError::NotFound(_))
        ));
        assert!(matches!(
            f.repo.resolve(None, "alice/secret"),
            Err(DlhubError::NotFound(_))
        ));
        // Owner resolves fine.
        assert!(f.repo.resolve(Some(&f.alice), "alice/secret").is_ok());
        // Search hides it too.
        assert!(f
            .repo
            .search(Some(&f.bob), &Query::free_text("secret"))
            .is_empty());
        assert_eq!(
            f.repo
                .search(Some(&f.alice), &Query::free_text("secret"))
                .len(),
            1
        );
    }

    #[test]
    fn share_with_grants_access_and_reindexes() {
        let f = fixture();
        f.repo
            .publish(
                &f.alice,
                meta("secret"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Restricted {
                    users: vec![],
                    groups: vec![],
                },
            )
            .unwrap();
        f.repo
            .share_with(&f.alice, "alice/secret", "bob@uchicago.edu")
            .unwrap();
        assert!(f.repo.resolve(Some(&f.bob), "alice/secret").is_ok());
        assert_eq!(
            f.repo
                .search(Some(&f.bob), &Query::free_text("secret"))
                .len(),
            1
        );
        // Bob still cannot administer it.
        assert!(f
            .repo
            .share_with(&f.bob, "alice/secret", "bob@uchicago.edu")
            .is_err());
    }

    #[test]
    fn make_public_releases_the_model() {
        let f = fixture();
        f.repo
            .publish(
                &f.alice,
                meta("candle"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Restricted {
                    users: vec![],
                    groups: vec![],
                },
            )
            .unwrap();
        assert!(f.repo.resolve(None, "alice/candle").is_err());
        f.repo.make_public(&f.alice, "alice/candle").unwrap();
        assert!(f.repo.resolve(None, "alice/candle").is_ok());
    }

    #[test]
    fn group_visibility() {
        let f = fixture();
        let auth = f.repo.auth().clone();
        let bob_id = auth.lookup("bob@uchicago.edu").unwrap();
        auth.add_to_group("candle-testers", bob_id).unwrap();
        f.repo
            .publish(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Restricted {
                    users: vec![],
                    groups: vec!["candle-testers".into()],
                },
            )
            .unwrap();
        assert!(f.repo.resolve(Some(&f.bob), "alice/m").is_ok());
    }

    #[test]
    fn update_metadata_reindexes() {
        let f = fixture();
        f.repo
            .publish(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        f.repo
            .update_metadata(
                &f.alice,
                "alice/m",
                Some("predicts formation enthalpy".into()),
                Some(vec!["materials".into()]),
            )
            .unwrap();
        let hits = f.repo.search(None, &Query::free_text("enthalpy"));
        assert_eq!(hits.len(), 1);
        assert!(f
            .repo
            .update_metadata(&f.bob, "alice/m", Some("vandalized".into()), None)
            .is_err());
    }

    #[test]
    fn unpublish_withdraws_serving_but_keeps_images() {
        let f = fixture();
        let receipt = f
            .repo
            .publish(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        // Non-owner cannot withdraw.
        assert!(matches!(
            f.repo.unpublish(&f.bob, "alice/m"),
            Err(DlhubError::Auth(_))
        ));
        f.repo.unpublish(&f.alice, "alice/m").unwrap();
        assert!(matches!(
            f.repo.resolve(None, "alice/m"),
            Err(DlhubError::NotFound(_))
        ));
        assert!(f.repo.search(None, &Query::All).is_empty());
        // The published container is still pullable for reproducing
        // prior results.
        assert!(f.repo.registry().pull_digest(receipt.image).is_ok());
        // Idempotence: second withdrawal is NotFound.
        assert!(matches!(
            f.repo.unpublish(&f.alice, "alice/m"),
            Err(DlhubError::NotFound(_))
        ));
        // The name can be re-published afterwards (fresh v1).
        let again = f
            .repo
            .publish(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(again.version, 1);
    }

    #[test]
    fn publish_requires_scope() {
        let f = fixture();
        let auth = f.repo.auth().clone();
        let carol = auth.register_identity("uchicago.edu", "carol").unwrap();
        let serve_only = auth
            .issue_token(carol, &[Scope::new(RESOURCE_SERVER, SERVE_SCOPE)])
            .unwrap();
        let err = f
            .repo
            .publish(
                &serve_only,
                meta("m"),
                Arc::new(NoopServable),
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(matches!(err, DlhubError::Auth(_)));
    }

    #[test]
    fn publish_from_endpoint_stages_components() {
        let f = fixture();
        let transfer = dlhub_transfer::TransferService::new();
        let source = transfer.create_endpoint("petrel#alice", 100.0);
        let staging = transfer.create_endpoint("dlhub#staging", 1000.0);
        source.put("/models/m/weights.h5", vec![42; 2048]);
        source.put("/models/m/config.json", b"{\"layers\": 3}".to_vec());
        source.put("/elsewhere/ignored.bin", vec![1]);
        // The endpoint is restricted to Alice; publication acts on her
        // behalf via her authenticated identity.
        let alice_id = f.repo.auth().lookup("alice@uchicago.edu").unwrap();
        source.restrict_to(alice_id);

        let receipt = f
            .repo
            .publish_from_endpoint(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                &transfer,
                &source,
                "/models/m/",
                &staging,
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(receipt.id, "alice/m");
        // Both files were staged and baked into the image.
        let image = f.repo.registry().pull_digest(receipt.image).unwrap();
        assert!(image.layers.iter().any(|l| l.step.contains("weights.h5")));
        assert!(image.layers.iter().any(|l| l.step.contains("config.json")));
        assert!(!image.layers.iter().any(|l| l.step.contains("ignored")));
        // Bob's token cannot stage from Alice's restricted endpoint.
        let err = f
            .repo
            .publish_from_endpoint(
                &f.bob,
                meta("m2"),
                Arc::new(NoopServable),
                &transfer,
                &source,
                "/models/m/",
                &staging,
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(err.to_string().contains("denied"), "{err}");
    }

    #[test]
    fn corrupted_staging_aborts_publication() {
        let f = fixture();
        let transfer = dlhub_transfer::TransferService::new();
        let source = transfer.create_endpoint("src", 100.0);
        let staging = transfer.create_endpoint("dst", 100.0);
        source.put("/m/weights", vec![1, 2, 3]);
        source.corrupt_for_test("/m/weights");
        let err = f
            .repo
            .publish_from_endpoint(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                &transfer,
                &source,
                "/m/",
                &staging,
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(err.to_string().contains("integrity"), "{err}");
        assert!(f.repo.resolve(None, "alice/m").is_err(), "must not publish");
    }

    #[test]
    fn empty_prefix_rejected() {
        let f = fixture();
        let transfer = dlhub_transfer::TransferService::new();
        let source = transfer.create_endpoint("src", 100.0);
        let staging = transfer.create_endpoint("dst", 100.0);
        let err = f
            .repo
            .publish_from_endpoint(
                &f.alice,
                meta("m"),
                Arc::new(NoopServable),
                &transfer,
                &source,
                "/nothing/",
                &staging,
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(err.to_string().contains("no components"), "{err}");
    }

    #[test]
    fn bundle_shares_one_image_across_servables() {
        let f = fixture();
        let receipts = f
            .repo
            .publish_bundle(
                &f.alice,
                "matminer",
                vec![
                    (
                        meta("bundle-util"),
                        servable_fn(|_| Ok(Value::Int(1))) as Arc<dyn Servable>,
                    ),
                    (
                        meta("bundle-model"),
                        servable_fn(|_| Ok(Value::Int(2))) as Arc<dyn Servable>,
                    ),
                ],
                BTreeMap::from([("shared-weights".into(), vec![1, 2, 3])]),
                PublishVisibility::Public,
            )
            .unwrap();
        assert_eq!(receipts.len(), 2);
        // One shared image, distinct DOIs.
        assert_eq!(receipts[0].image, receipts[1].image);
        assert_ne!(receipts[0].doi, receipts[1].doi);
        // Both servables resolve and run independently.
        let (s1, m1) = f.repo.resolve(None, "alice/bundle-util").unwrap();
        let (s2, _) = f.repo.resolve(None, "alice/bundle-model").unwrap();
        assert_eq!(s1.run(&Value::Null).unwrap(), Value::Int(1));
        assert_eq!(s2.run(&Value::Null).unwrap(), Value::Int(2));
        // Bundle membership is discoverable via the injected tag.
        assert!(m1.tags.contains(&"bundle:matminer".to_string()));
        let hits = f
            .repo
            .search(None, &Query::field_match("tags", "bundle matminer"));
        assert_eq!(hits.len(), 2);
        // The bundle image is pullable under its bundle reference.
        assert!(f
            .repo
            .registry()
            .resolve("dlhub/alice-matminer:bundle")
            .is_some());
    }

    #[test]
    fn empty_bundle_rejected() {
        let f = fixture();
        assert!(matches!(
            f.repo.publish_bundle(
                &f.alice,
                "empty",
                vec![],
                BTreeMap::new(),
                PublishVisibility::Public,
            ),
            Err(DlhubError::Publication(_))
        ));
    }

    #[test]
    fn bundle_dependency_conflicts_detected_across_members() {
        let f = fixture();
        let mut a = meta("a");
        a.dependencies = vec![("numpy".into(), "1.16".into())];
        let mut b = meta("b");
        b.dependencies = vec![("numpy".into(), "1.15".into())];
        let err = f
            .repo
            .publish_bundle(
                &f.alice,
                "clash",
                vec![
                    (a, servable_fn(|_| Ok(Value::Null)) as Arc<dyn Servable>),
                    (b, servable_fn(|_| Ok(Value::Null)) as Arc<dyn Servable>),
                ],
                BTreeMap::new(),
                PublishVisibility::Public,
            )
            .unwrap_err();
        assert!(err.to_string().contains("conflict"));
    }

    #[test]
    fn faceted_discovery_by_model_type() {
        let f = fixture();
        for (name, mt) in [
            ("a", ModelType::Keras),
            ("b", ModelType::Keras),
            ("c", ModelType::ScikitLearn),
        ] {
            f.repo
                .publish(
                    &f.alice,
                    ServableMetadata::new(name, "x@y", mt),
                    Arc::new(NoopServable),
                    BTreeMap::new(),
                    PublishVisibility::Public,
                )
                .unwrap();
        }
        let results = f.repo.search_faceted(None, &Query::All, &["model_type"]);
        assert_eq!(results.facets["model_type"]["keras"], 2);
        assert_eq!(results.facets["model_type"]["scikit-learn"], 1);
    }
}
