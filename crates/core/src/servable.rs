//! Servables: the common execution interface, their metadata schema,
//! and the paper's six built-in evaluation servables.
//!
//! "DLHub automatically converts each published model into a
//! 'servable' — an executable DLHub container that implements a
//! standard execution interface" (§IV). The standard interface here is
//! the [`Servable`] trait; metadata follows the publication schema of
//! §IV-A.

pub mod builtins;

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Supported model families (Table II: "DLHub … can store and serve
/// any Python 3-compatible model or processing function").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelType {
    /// TensorFlow servables (eligible for the TF-Serving executor).
    TensorFlow,
    /// Keras models.
    Keras,
    /// Scikit-learn estimators.
    ScikitLearn,
    /// Arbitrary processing functions (the "Python function" analogue).
    PythonFunction,
    /// A multi-servable pipeline definition.
    Pipeline,
}

impl fmt::Display for ModelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelType::TensorFlow => "tensorflow",
            ModelType::Keras => "keras",
            ModelType::ScikitLearn => "scikit-learn",
            ModelType::PythonFunction => "python-function",
            ModelType::Pipeline => "pipeline",
        };
        f.write_str(s)
    }
}

/// Declared input/output types, used to validate requests before
/// dispatch and to drive the MDF-style "applicable model" matching
/// (§VI-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypeDesc {
    /// No payload.
    Null,
    /// Text.
    String,
    /// Raw bytes.
    Bytes,
    /// A tensor; `Some(shape)` pins exact dimensions.
    Tensor(Option<Vec<usize>>),
    /// A float scalar (integers coerce).
    Float,
    /// A list of anything.
    List,
    /// Free-form JSON.
    Json,
    /// Anything.
    Any,
}

impl TypeDesc {
    /// Does `value` satisfy this descriptor?
    pub fn matches(&self, value: &Value) -> bool {
        match (self, value) {
            (TypeDesc::Any, _) => true,
            (TypeDesc::Null, Value::Null) => true,
            (TypeDesc::String, Value::Str(_)) => true,
            (TypeDesc::Bytes, Value::Bytes(_)) => true,
            (TypeDesc::Tensor(None), Value::Tensor { .. }) => true,
            (TypeDesc::Tensor(Some(want)), Value::Tensor { shape, .. }) => want == shape,
            (TypeDesc::Float, Value::Float(_) | Value::Int(_)) => true,
            (TypeDesc::List, Value::List(_)) => true,
            (TypeDesc::Json, Value::Json(_)) => true,
            _ => false,
        }
    }

    /// Short name used in metadata documents.
    pub fn descriptor(&self) -> String {
        match self {
            TypeDesc::Null => "null".into(),
            TypeDesc::String => "string".into(),
            TypeDesc::Bytes => "bytes".into(),
            TypeDesc::Tensor(None) => "tensor".into(),
            TypeDesc::Tensor(Some(shape)) => format!(
                "tensor[{}]",
                shape
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            ),
            TypeDesc::Float => "float".into(),
            TypeDesc::List => "list".into(),
            TypeDesc::Json => "json".into(),
            TypeDesc::Any => "any".into(),
        }
    }
}

/// Publication metadata, after the DLHub model schema (§IV-A):
/// standard publication fields plus ML-specific fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServableMetadata {
    /// Short model name (unique per owner).
    pub name: String,
    /// Owner as a qualified identity (`user@provider`).
    pub owner: String,
    /// Human description.
    pub description: String,
    /// Author list for citation.
    pub authors: Vec<String>,
    /// Science domain (e.g. `materials science`, `vision`).
    pub domain: String,
    /// Model family.
    pub model_type: ModelType,
    /// Declared input type.
    pub input_type: TypeDesc,
    /// Declared output type.
    pub output_type: TypeDesc,
    /// Pinned software dependencies `(package, version)`.
    pub dependencies: Vec<(String, String)>,
    /// Free-form discovery tags.
    pub tags: Vec<String>,
    /// Publication year.
    pub year: u32,
}

impl ServableMetadata {
    /// Minimal valid metadata for `name` owned by `owner`.
    pub fn new(name: impl Into<String>, owner: impl Into<String>, model_type: ModelType) -> Self {
        ServableMetadata {
            name: name.into(),
            owner: owner.into(),
            description: String::new(),
            authors: Vec::new(),
            domain: String::new(),
            model_type,
            input_type: TypeDesc::Any,
            output_type: TypeDesc::Any,
            dependencies: Vec::new(),
            tags: Vec::new(),
            year: 2019,
        }
    }

    /// The servable identifier: `owner-username/name`.
    pub fn id(&self) -> String {
        let user = self.owner.split('@').next().unwrap_or(&self.owner);
        format!("{user}/{}", self.name)
    }

    /// Render as the JSON document indexed by the search service.
    pub fn to_search_document(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "owner": self.owner,
            "description": self.description,
            "authors": self.authors,
            "domain": self.domain,
            "model_type": self.model_type.to_string(),
            "input_type": self.input_type.descriptor(),
            "output_type": self.output_type.descriptor(),
            "tags": self.tags,
            "year": self.year,
        })
    }
}

/// The standard execution interface every published model implements.
///
/// Implementations must be thread-safe: the Parsl executor runs one
/// instance from many replica workers concurrently (real DLHub runs n
/// container replicas; we share one immutable model).
pub trait Servable: Send + Sync {
    /// Execute the servable on one input.
    ///
    /// Errors are strings (a Python traceback analogue); the serving
    /// layer wraps them in [`crate::DlhubError::Execution`].
    fn run(&self, input: &Value) -> Result<Value, String>;
}

/// A servable wrapping a plain function — the "any Python
/// 3-compatible … processing function" case that distinguishes DLHub
/// from model-only systems (Table II).
pub struct FnServable<F>(pub F);

impl<F> Servable for FnServable<F>
where
    F: Fn(&Value) -> Result<Value, String> + Send + Sync,
{
    fn run(&self, input: &Value) -> Result<Value, String> {
        (self.0)(input)
    }
}

/// Convenience: box a closure as a shared servable.
pub fn servable_fn<F>(f: F) -> Arc<dyn Servable>
where
    F: Fn(&Value) -> Result<Value, String> + Send + Sync + 'static,
{
    Arc::new(FnServable(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_desc_matching() {
        assert!(TypeDesc::Any.matches(&Value::Null));
        assert!(TypeDesc::String.matches(&Value::Str("x".into())));
        assert!(!TypeDesc::String.matches(&Value::Int(1)));
        assert!(TypeDesc::Float.matches(&Value::Int(1)));
        let shaped = TypeDesc::Tensor(Some(vec![3, 32, 32]));
        assert!(shaped.matches(&Value::Tensor {
            shape: vec![3, 32, 32],
            data: vec![0.0; 3 * 32 * 32],
        }));
        assert!(!shaped.matches(&Value::Tensor {
            shape: vec![3, 16, 16],
            data: vec![0.0; 3 * 16 * 16],
        }));
        assert!(TypeDesc::Tensor(None).matches(&Value::Tensor {
            shape: vec![2],
            data: vec![0.0; 2],
        }));
    }

    #[test]
    fn descriptors_render() {
        assert_eq!(
            TypeDesc::Tensor(Some(vec![3, 2])).descriptor(),
            "tensor[3x2]"
        );
        assert_eq!(TypeDesc::Json.descriptor(), "json");
    }

    #[test]
    fn metadata_id_strips_provider() {
        let m = ServableMetadata::new("inception", "logan@uchicago.edu", ModelType::TensorFlow);
        assert_eq!(m.id(), "logan/inception");
    }

    #[test]
    fn search_document_contains_key_fields() {
        let mut m = ServableMetadata::new("m", "u@p", ModelType::Keras);
        m.domain = "vision".into();
        m.tags = vec!["cnn".into()];
        let doc = m.to_search_document();
        assert_eq!(doc["model_type"], "keras");
        assert_eq!(doc["domain"], "vision");
        assert_eq!(doc["tags"][0], "cnn");
    }

    #[test]
    fn fn_servable_runs() {
        let s = servable_fn(|v| Ok(Value::Str(format!("got {v}"))));
        assert_eq!(s.run(&Value::Int(3)).unwrap(), Value::Str("got 3".into()));
        let failing = servable_fn(|_| Err("nope".into()));
        assert_eq!(failing.run(&Value::Null).unwrap_err(), "nope");
    }

    #[test]
    fn metadata_serializes() {
        let m = ServableMetadata::new("m", "u@p", ModelType::ScikitLearn);
        let s = serde_json::to_string(&m).unwrap();
        let back: ServableMetadata = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
