//! The paper's six evaluation servables (§V-A): `noop`, Inception-v3,
//! CIFAR-10, and the three matminer stages.

use crate::servable::{ModelType, Servable, ServableMetadata, TypeDesc};
use crate::value::Value;
use dlhub_matsci::forest::{ForestConfig, RandomForest};
use dlhub_tensor::Network;
use std::sync::Arc;

/// The baseline "noop" servable: "returns 'hello world' when invoked".
pub struct NoopServable;

impl Servable for NoopServable {
    fn run(&self, _input: &Value) -> Result<Value, String> {
        Ok(Value::Str("hello world".into()))
    }
}

/// An image classifier wrapping a [`dlhub_tensor::Network`]; used for
/// both Inception-v3 and CIFAR-10.
pub struct ImageClassifier {
    network: Network,
    labels: Vec<String>,
    top_k: usize,
}

impl ImageClassifier {
    /// Inception-v3: 149×149 RGB in, top-5 of 1000 categories out.
    pub fn inception(seed: u64) -> Self {
        ImageClassifier {
            network: dlhub_tensor::models::inception(seed),
            labels: (0..dlhub_tensor::models::INCEPTION_CLASSES)
                .map(|i| format!("imagenet-{i:04}"))
                .collect(),
            top_k: 5,
        }
    }

    /// CIFAR-10: 32×32 RGB in, the 10 CIFAR categories out.
    pub fn cifar10(seed: u64) -> Self {
        let labels = [
            "airplane",
            "automobile",
            "bird",
            "cat",
            "deer",
            "dog",
            "frog",
            "horse",
            "ship",
            "truck",
        ];
        ImageClassifier {
            network: dlhub_tensor::models::cifar10(seed),
            labels: labels.iter().map(|s| s.to_string()).collect(),
            top_k: 1,
        }
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.network.input_shape
    }
}

impl Servable for ImageClassifier {
    fn run(&self, input: &Value) -> Result<Value, String> {
        let tensor = input
            .to_tensor()
            .ok_or_else(|| format!("{} expects a tensor input", self.network.name))?;
        if tensor.shape() != self.input_shape() {
            return Err(format!(
                "{} expects shape {:?}, got {:?}",
                self.network.name,
                self.input_shape(),
                tensor.shape()
            ));
        }
        let probs = self.network.forward(tensor);
        let top = probs.top_k(self.top_k);
        let classes: Vec<Value> = top
            .into_iter()
            .map(|idx| {
                Value::Json(serde_json::json!({
                    "label": self.labels[idx],
                    "probability": probs.data()[idx],
                }))
            })
            .collect();
        Ok(Value::List(classes))
    }
}

/// `matminer util`: "parsing a string with pymatgen to extract the
/// elemental composition".
pub struct MatminerUtil;

impl Servable for MatminerUtil {
    fn run(&self, input: &Value) -> Result<Value, String> {
        let formula = input
            .as_str()
            .ok_or_else(|| "matminer util expects a formula string".to_string())?;
        let composition = dlhub_matsci::parse_formula(formula).map_err(|e| e.to_string())?;
        let amounts: serde_json::Map<String, serde_json::Value> = composition
            .amounts
            .iter()
            .map(|(sym, amt)| (sym.to_string(), serde_json::json!(amt)))
            .collect();
        Ok(Value::Json(serde_json::json!({
            "formula": formula,
            "composition": amounts,
        })))
    }
}

/// `matminer featurize`: "computing features from the element
/// fractions by using Matminer".
pub struct MatminerFeaturize;

impl Servable for MatminerFeaturize {
    fn run(&self, input: &Value) -> Result<Value, String> {
        // Accepts either the util stage's JSON or a raw formula string,
        // so it composes in pipelines and works standalone.
        let formula = match input {
            Value::Json(doc) => doc
                .get("formula")
                .and_then(|f| f.as_str())
                .ok_or_else(|| "composition document lacks 'formula'".to_string())?
                .to_string(),
            Value::Str(s) => s.clone(),
            _ => return Err("matminer featurize expects json or string".into()),
        };
        let composition = dlhub_matsci::parse_formula(&formula).map_err(|e| e.to_string())?;
        let features = dlhub_matsci::featurize(&composition);
        Ok(Value::Tensor {
            shape: vec![features.len()],
            data: features.iter().map(|v| *v as f32).collect(),
        })
    }
}

/// `matminer model`: "executing a scikit-learn random forest model to
/// predict stability", trained on the synthetic OQMD-like dataset.
pub struct MatminerModel {
    forest: RandomForest,
}

impl MatminerModel {
    /// Train the stability model. Deterministic for a given seed.
    pub fn train(seed: u64) -> Self {
        let data = dlhub_matsci::dataset::generate(500, seed);
        let forest = RandomForest::fit(
            &data.features(),
            &data.targets(),
            &ForestConfig {
                n_trees: 25,
                max_features: Some(16),
                seed,
                ..ForestConfig::default()
            },
        );
        MatminerModel { forest }
    }
}

impl Servable for MatminerModel {
    fn run(&self, input: &Value) -> Result<Value, String> {
        let tensor = input
            .to_tensor()
            .ok_or_else(|| "matminer model expects a feature tensor".to_string())?;
        if tensor.len() != dlhub_matsci::FEATURE_COUNT {
            return Err(format!(
                "expected {} features, got {}",
                dlhub_matsci::FEATURE_COUNT,
                tensor.len()
            ));
        }
        let features: Vec<f64> = tensor.data().iter().map(|v| *v as f64).collect();
        Ok(Value::Float(self.forest.predict(&features)))
    }
}

/// Uncertainty-quantified variant of [`MatminerModel`]: scientific
/// workflows attach "uncertainty quantification methods" after
/// inference (§II); the forest's per-tree spread provides it.
pub struct MatminerModelUq {
    forest: RandomForest,
}

impl MatminerModelUq {
    /// Train the UQ stability model (same data/seed regime as
    /// [`MatminerModel::train`]).
    pub fn train(seed: u64) -> Self {
        let data = dlhub_matsci::dataset::generate(500, seed);
        let forest = RandomForest::fit(
            &data.features(),
            &data.targets(),
            &ForestConfig {
                n_trees: 25,
                max_features: Some(16),
                seed,
                ..ForestConfig::default()
            },
        );
        MatminerModelUq { forest }
    }
}

impl Servable for MatminerModelUq {
    fn run(&self, input: &Value) -> Result<Value, String> {
        let tensor = input
            .to_tensor()
            .ok_or_else(|| "matminer model expects a feature tensor".to_string())?;
        if tensor.len() != dlhub_matsci::FEATURE_COUNT {
            return Err(format!(
                "expected {} features, got {}",
                dlhub_matsci::FEATURE_COUNT,
                tensor.len()
            ));
        }
        let features: Vec<f64> = tensor.data().iter().map(|v| *v as f64).collect();
        let (prediction, uncertainty) = self.forest.predict_with_uncertainty(&features);
        Ok(Value::Json(serde_json::json!({
            "prediction": prediction,
            "uncertainty": uncertainty,
            "n_trees": self.forest.n_trees(),
        })))
    }
}

/// One built-in servable bundled with its metadata, ready to publish.
pub struct BuiltinServable {
    /// Publication metadata.
    pub metadata: ServableMetadata,
    /// Implementation.
    pub servable: Arc<dyn Servable>,
}

/// Construct the paper's six servables under `owner`, with
/// deterministic weights from `seed`.
pub fn evaluation_servables(owner: &str, seed: u64) -> Vec<BuiltinServable> {
    let inception = ImageClassifier::inception(seed);
    let cifar = ImageClassifier::cifar10(seed);
    let mut out = Vec::new();

    let mut m = ServableMetadata::new("noop", owner, ModelType::PythonFunction);
    m.description = "Baseline test function returning 'hello world'".into();
    m.domain = "benchmark".into();
    m.input_type = TypeDesc::Any;
    m.output_type = TypeDesc::String;
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(NoopServable),
    });

    let mut m = ServableMetadata::new("inception", owner, ModelType::TensorFlow);
    m.description = "Inception-v3 image recognition (1000 ImageNet categories, top-5)".into();
    m.domain = "vision".into();
    m.input_type = TypeDesc::Tensor(Some(inception.input_shape().to_vec()));
    m.output_type = TypeDesc::List;
    m.dependencies = vec![("tensorflow".into(), "1.12".into())];
    m.tags = vec!["cnn".into(), "imagenet".into()];
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(inception),
    });

    let mut m = ServableMetadata::new("cifar10", owner, ModelType::Keras);
    m.description = "Multi-layer CNN classifying 32x32 RGB images into 10 categories".into();
    m.domain = "vision".into();
    m.input_type = TypeDesc::Tensor(Some(cifar.input_shape().to_vec()));
    m.output_type = TypeDesc::List;
    m.dependencies = vec![("keras".into(), "2.2.4".into())];
    m.tags = vec!["cnn".into(), "cifar-10".into()];
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(cifar),
    });

    let mut m = ServableMetadata::new("matminer-util", owner, ModelType::PythonFunction);
    m.description = "Parse a composition string into elemental fractions (pymatgen)".into();
    m.domain = "materials science".into();
    m.input_type = TypeDesc::String;
    m.output_type = TypeDesc::Json;
    m.dependencies = vec![("pymatgen".into(), "2018.11".into())];
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(MatminerUtil),
    });

    let mut m = ServableMetadata::new("matminer-featurize", owner, ModelType::PythonFunction);
    m.description = "Compute Ward-2016 (Magpie) features from element fractions".into();
    m.domain = "materials science".into();
    m.input_type = TypeDesc::Json;
    m.output_type = TypeDesc::Tensor(Some(vec![dlhub_matsci::FEATURE_COUNT]));
    m.dependencies = vec![("matminer".into(), "0.4".into())];
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(MatminerFeaturize),
    });

    let mut m = ServableMetadata::new("matminer-model", owner, ModelType::ScikitLearn);
    m.description = "Random-forest stability prediction (Ward features, OQMD data)".into();
    m.domain = "materials science".into();
    m.input_type = TypeDesc::Tensor(Some(vec![dlhub_matsci::FEATURE_COUNT]));
    m.output_type = TypeDesc::Float;
    m.dependencies = vec![("scikit-learn".into(), "0.20".into())];
    out.push(BuiltinServable {
        metadata: m,
        servable: Arc::new(MatminerModel::train(seed)),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlhub_tensor::models::{synthetic_image, CIFAR10_INPUT, INCEPTION_INPUT};

    #[test]
    fn noop_returns_hello_world() {
        assert_eq!(
            NoopServable.run(&Value::Null).unwrap(),
            Value::Str("hello world".into())
        );
    }

    #[test]
    fn inception_returns_top5() {
        let s = ImageClassifier::inception(7);
        let input = Value::from_tensor(&synthetic_image(&INCEPTION_INPUT, 0));
        let out = s.run(&input).unwrap();
        let list = out.as_list().unwrap();
        assert_eq!(list.len(), 5);
        // Probabilities are descending.
        let probs: Vec<f64> = list
            .iter()
            .map(|v| match v {
                Value::Json(j) => j["probability"].as_f64().unwrap(),
                _ => panic!("expected json"),
            })
            .collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn cifar10_returns_a_category() {
        let s = ImageClassifier::cifar10(7);
        let input = Value::from_tensor(&synthetic_image(&CIFAR10_INPUT, 0));
        let out = s.run(&input).unwrap();
        let list = out.as_list().unwrap();
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn classifiers_reject_bad_inputs() {
        let s = ImageClassifier::cifar10(7);
        assert!(s.run(&Value::Str("not an image".into())).is_err());
        let wrong_shape = Value::Tensor {
            shape: vec![3, 16, 16],
            data: vec![0.0; 3 * 16 * 16],
        };
        let err = s.run(&wrong_shape).unwrap_err();
        assert!(err.contains("expects shape"));
    }

    #[test]
    fn matminer_pipeline_stages_compose() {
        let util = MatminerUtil;
        let featurize = MatminerFeaturize;
        let model = MatminerModel::train(3);
        let composition = util.run(&Value::Str("NaCl".into())).unwrap();
        match &composition {
            Value::Json(doc) => {
                assert_eq!(doc["composition"]["Na"], 1.0);
                assert_eq!(doc["composition"]["Cl"], 1.0);
            }
            other => panic!("expected json, got {other}"),
        }
        let features = featurize.run(&composition).unwrap();
        let prediction = model.run(&features).unwrap();
        match prediction {
            Value::Float(v) => assert!(v.is_finite()),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn matminer_prefers_ionic_stability() {
        // End-to-end sanity: NaCl should predict more stable (lower)
        // than a metallic pair, mirroring the synthetic ground truth.
        let featurize = MatminerFeaturize;
        let model = MatminerModel::train(3);
        let predict = |formula: &str| {
            let f = featurize.run(&Value::Str(formula.into())).unwrap();
            match model.run(&f).unwrap() {
                Value::Float(v) => v,
                _ => unreachable!(),
            }
        };
        assert!(predict("NaCl") < predict("CuNi"));
    }

    #[test]
    fn matminer_errors_propagate() {
        assert!(MatminerUtil.run(&Value::Str("Zz9".into())).is_err());
        assert!(MatminerFeaturize.run(&Value::Int(2)).is_err());
        let model = MatminerModel::train(3);
        let bad = Value::Tensor {
            shape: vec![3],
            data: vec![0.0; 3],
        };
        assert!(model.run(&bad).unwrap_err().contains("features"));
    }

    #[test]
    fn uq_model_reports_prediction_and_spread() {
        let featurize = MatminerFeaturize;
        let uq = MatminerModelUq::train(3);
        let plain = MatminerModel::train(3);
        let features = featurize.run(&Value::Str("NaCl".into())).unwrap();
        let out = uq.run(&features).unwrap();
        match &out {
            Value::Json(doc) => {
                let prediction = doc["prediction"].as_f64().unwrap();
                let uncertainty = doc["uncertainty"].as_f64().unwrap();
                assert!(prediction.is_finite());
                assert!(uncertainty >= 0.0);
                assert_eq!(doc["n_trees"], 25);
                // Same forest regime: the UQ mean equals the plain
                // model's prediction.
                match plain.run(&features).unwrap() {
                    Value::Float(p) => assert!((p - prediction).abs() < 1e-12),
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("expected json, got {other}"),
        }
        assert!(uq.run(&Value::Null).is_err());
    }

    #[test]
    fn evaluation_set_has_six_servables() {
        let set = evaluation_servables("logan@uchicago.edu", 7);
        assert_eq!(set.len(), 6);
        let ids: Vec<String> = set.iter().map(|b| b.metadata.id()).collect();
        assert!(ids.contains(&"logan/noop".to_string()));
        assert!(ids.contains(&"logan/inception".to_string()));
        assert!(ids.contains(&"logan/matminer-model".to_string()));
        // Every metadata declares input and output types.
        for b in &set {
            assert_ne!(b.metadata.input_type.descriptor(), "");
        }
    }
}
