//! The Management Service (§IV-A): the user-facing interface to DLHub.
//!
//! "It enables users to publish models, query available models,
//! execute tasks (e.g., inference), construct pipelines, and monitor
//! the status of tasks. The Management Service includes advanced
//! functionality to … optimize task performance, route workloads to
//! suitable executors, batch tasks, and cache results."

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionPermit};
use crate::autoscale::{ControlDecision, ControlPolicy, Reconciler, TelemetrySignals};
use crate::batch::Batcher;
use crate::error::DlhubError;
use crate::executor::ParslExecutor;
use crate::memo::{MemoCache, MemoKey, MemoStats};
use crate::metrics::Timings;
use crate::pipeline::{Pipeline, StepTiming};
use crate::profile::ProfileRegistry;
use crate::repository::{PublishReceipt, PublishVisibility, Repository, SERVE_SCOPE};
use crate::servable::{Servable, ServableMetadata};
use crate::task::{next_task_id, TaskHandle, TaskRequest, TaskResponse, TaskStatus, TaskTable};
use crate::task_manager::{TmRegistration, REGISTRATION_TOPIC};
use crate::value::Value;
use dlhub_auth::{IdentityId, Scope, Token};
use dlhub_fault::{site, FaultHandle};
use dlhub_obs::{
    Bundle, ContentionSnapshot, Gauge, MetricsSnapshot, Obs, ProfileReport, SloSpec, TraceAnalysis,
    TraceContext, TraceExport,
};
use dlhub_queue::{Broker, RpcClient};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Management Service configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Broker topic tasks are dispatched on.
    pub task_topic: String,
    /// How long each dispatch *attempt* waits for a Task Manager reply
    /// before the attempt is declared failed (and possibly retried).
    pub request_timeout: Duration,
    /// Total wall-clock budget for a request across all retry attempts
    /// and backoff pauses. Overridable per request via
    /// [`RunOptions::deadline`].
    pub request_deadline: Duration,
    /// Retries after the first failed attempt (total attempts is
    /// `max_retries + 1`). Only transient failures — timeouts and
    /// transport errors, plus execution errors when
    /// `retry_execution_errors` is set — consume the budget.
    pub max_retries: u32,
    /// Initial pause before the first retry; doubles per retry, capped
    /// by the remaining deadline.
    pub retry_backoff: Duration,
    /// Whether servable execution errors are retried. Off by default:
    /// a deterministic servable failure will fail again, but a chaos
    /// configuration injecting random replica faults wants retries.
    pub retry_execution_errors: bool,
    /// Fault-injection schedule consulted at the Management Service's
    /// sites (memo lookup/insert, batch flush). Disabled by default.
    pub faults: FaultHandle,
    /// Memo-cache budget in bytes.
    pub memo_capacity: usize,
    /// Whether memoization starts enabled.
    pub memo_enabled: bool,
    /// Auto-batcher: max items coalesced per dispatch.
    pub batch_max: usize,
    /// Auto-batcher: max time a request waits for peers.
    pub batch_delay: Duration,
    /// Auto-batcher: derive flush thresholds from live servable
    /// profiles instead of the fixed `batch_max` (the paper's proposed
    /// adaptive batching, §V-B3). `batch_max` remains the cap.
    pub adaptive_batching: bool,
    /// Threads in the service-owned worker pool that runs
    /// [`ManagementService::run_async`] dispatches. The pool bounds
    /// concurrent async work; 0 is treated as 1.
    pub async_workers: usize,
    /// Service-level objectives registered at construction. Each spec
    /// names a servable and a latency threshold; burn rates and alert
    /// state surface in [`MetricsSnapshot`] (`slos`), the Prometheus
    /// exposition, and `slo_alert` trace events.
    pub slos: Vec<SloSpec>,
    /// Continuous-profiler sampling rate in Hz. 0 (the default) leaves
    /// the profiler disabled: hot-path frame marks stay a single
    /// relaxed atomic load and no sampler thread is spawned.
    pub profile_hz: u32,
    /// Flight-recorder bundle capacity. 0 (the default) leaves the
    /// recorder disabled; otherwise an SLO firing transition or a
    /// terminal task failure freezes a diagnostic bundle (profile
    /// slice, contention table, recent traces, metrics delta) into a
    /// ring of this many bundles.
    pub recorder_capacity: usize,
    /// Telemetry-collector sampling interval. Zero (the default)
    /// leaves the time-series store disabled; otherwise a
    /// `dlhub-telemetry` thread samples every registered metric and
    /// SLO burn rate into ring-buffered multi-resolution history
    /// (`dlhub top`, `ControlSignals`, bench time axes).
    pub telemetry_interval: Duration,
    /// Closed-loop autoscaling policy. `None` (the default) leaves the
    /// reconciler off; `Some` arms it once
    /// [`ManagementService::attach_autoscaler`] wires the executor.
    pub autoscale: Option<ControlPolicy>,
    /// Background reconcile interval. Zero (the default) spawns no
    /// thread — the embedder drives passes manually through
    /// [`ManagementService::reconcile_at`] (the sim harness does this
    /// on its virtual clock for deterministic decision logs).
    pub autoscale_interval: Duration,
    /// Admission control. `None` (the default) admits everything;
    /// `Some` bounds inflight requests, sheds early with
    /// [`DlhubError::Overloaded`] under pressure, and schedules
    /// contended capacity by per-tenant weighted fair shares.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            task_topic: "dlhub.tasks".into(),
            request_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(120),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            retry_execution_errors: false,
            faults: FaultHandle::default(),
            memo_capacity: 64 * 1024 * 1024,
            memo_enabled: true,
            batch_max: 32,
            batch_delay: Duration::from_millis(5),
            adaptive_batching: false,
            async_workers: 4,
            slos: Vec::new(),
            profile_hz: 0,
            recorder_capacity: 0,
            telemetry_interval: Duration::ZERO,
            autoscale: None,
            autoscale_interval: Duration::ZERO,
            admission: None,
        }
    }
}

/// A fixed-size worker pool with an injector queue, replacing the
/// thread-per-request dispatch of async runs. Workers block on the
/// queue's condvar; shutdown drains every queued job before the
/// threads exit, so no accepted request is dropped.
struct AsyncPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    /// Jobs waiting in the injector queue.
    depth: Arc<Gauge>,
    /// Workers currently running a job (pool occupancy).
    active: Arc<Gauge>,
}

struct PoolQueue {
    jobs: VecDeque<Box<dyn FnOnce() + Send>>,
    shutdown: bool,
}

impl AsyncPool {
    fn new(workers: usize, depth: Arc<Gauge>, active: Arc<Gauge>) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            depth,
            active,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dlhub-async-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut queue = shared.queue.lock();
                            loop {
                                if let Some(job) = queue.jobs.pop_front() {
                                    break Some(job);
                                }
                                // Only exit once the queue is drained:
                                // shutdown is graceful.
                                if queue.shutdown {
                                    break None;
                                }
                                shared.available.wait(&mut queue);
                            }
                        };
                        match job {
                            Some(job) => {
                                shared.depth.add(-1);
                                shared.active.add(1);
                                job();
                                shared.active.add(-1);
                            }
                            None => break,
                        }
                    })
                    .expect("spawn async pool worker")
            })
            .collect();
        AsyncPool { shared, workers }
    }

    fn submit(&self, job: Box<dyn FnOnce() + Send>) {
        let mut queue = self.shared.queue.lock();
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.depth.add(1);
        self.shared.available.notify_one();
    }
}

impl Drop for AsyncPool {
    fn drop(&mut self) {
        self.shared.queue.lock().shutdown = true;
        self.shared.available.notify_all();
        // The last Arc<ManagementService> can be dropped from inside a
        // pool job, making a worker run this destructor: it must not
        // join itself.
        let current = std::thread::current().id();
        for worker in self.workers.drain(..) {
            if worker.thread().id() != current {
                let _ = worker.join();
            }
        }
    }
}

/// Result of a synchronous run: the output plus the paper's nested
/// timings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Servable output.
    pub value: Value,
    /// Measured timings.
    pub timings: Timings,
    /// Trace id of this request's span tree; feed it to
    /// [`ManagementService::trace_export`] to inspect the request's
    /// path through the tiers.
    pub trace: u64,
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Override the service-wide memoization switch for this request.
    pub memoize: Option<bool>,
    /// Override [`ServingConfig::request_deadline`] for this request:
    /// the total budget across every retry attempt and backoff pause.
    pub deadline: Option<Duration>,
}

/// The Management Service. Share via `Arc` (async and batched
/// execution spawn service-owned threads).
pub struct ManagementService {
    repo: Arc<Repository>,
    rpc: RpcClient,
    memo: MemoCache,
    memo_enabled: AtomicBool,
    task_table: Arc<TaskTable>,
    pipelines: RwLock<HashMap<String, Pipeline>>,
    // Read-mostly registries: steady-state requests only take the
    // shared side; the exclusive side is reserved for first-touch
    // creation and registration drains.
    batchers: RwLock<HashMap<String, Arc<Batcher>>>,
    registrations: RwLock<Vec<TmRegistration>>,
    async_pool: AsyncPool,
    profiles: ProfileRegistry,
    broker: Broker,
    config: ServingConfig,
    /// The front door ([`ServingConfig::admission`]); `None` admits
    /// everything.
    admission: Option<Arc<AdmissionController>>,
    /// The autoscaling actuator, armed by [`Self::attach_autoscaler`].
    reconciler: OnceLock<Arc<Reconciler>>,
    obs: Obs,
    /// Baseline for [`Self::metrics_delta`]: the snapshot taken at the
    /// previous delta call (or construction), so consecutive deltas
    /// exactly partition the metric history.
    delta_baseline: Mutex<MetricsSnapshot>,
}

impl ManagementService {
    /// Wire a Management Service to a repository and broker, with a
    /// fresh observability layer.
    pub fn new(repo: Arc<Repository>, broker: &Broker, config: ServingConfig) -> Arc<Self> {
        ManagementService::with_obs(repo, broker, config, Obs::new())
    }

    /// Wire a Management Service around an existing [`Obs`] handle, so
    /// the Task Managers and broker of the same deployment can share
    /// one tracer and one metrics registry (trace trees then span all
    /// tiers).
    pub fn with_obs(
        repo: Arc<Repository>,
        broker: &Broker,
        config: ServingConfig,
        obs: Obs,
    ) -> Arc<Self> {
        broker.ensure_topic(&config.task_topic);
        broker.ensure_topic(REGISTRATION_TOPIC);
        // Enable the observability extras before the SLO trackers and
        // RPC client are built, so the recorder sees every firing and
        // the client's contention site exists from the first dispatch.
        if config.profile_hz > 0 {
            obs.enable_profiler(config.profile_hz);
        }
        if config.recorder_capacity > 0 {
            obs.enable_recorder(config.recorder_capacity);
        }
        if !config.telemetry_interval.is_zero() {
            obs.enable_telemetry(config.telemetry_interval);
        }
        // Descriptions for counters whose increment sites are hot paths
        // (retry loop, Task Manager dispatch) — registered once here so
        // `# HELP` lines render without touching those paths.
        obs.metrics.describe(
            "request_retries_total",
            "Request attempts retried after a transient failure",
        );
        obs.metrics.describe(
            "request_exhausted_total",
            "Requests failed after exhausting the retry budget",
        );
        obs.metrics
            .describe("tm_tasks_total", "Tasks executed by Task Managers");
        obs.metrics.describe(
            "tm_crashes_injected_total",
            "Task Manager crashes injected by the fault schedule",
        );
        for spec in &config.slos {
            obs.register_slo(spec.clone());
        }
        let rpc = RpcClient::connect(broker, &config.task_topic);
        rpc.attach_obs(&obs);
        broker.attach_obs(&obs);
        let admission = config.admission.clone().map(|cfg| {
            Arc::new(AdmissionController::new(cfg).with_observability(
                obs.metrics.counter_with_help(
                    "requests_shed_total",
                    "Requests shed by the admission controller before dispatch",
                ),
                obs.metrics.counter_with_help(
                    "requests_admitted_total",
                    "Requests admitted past the admission controller",
                ),
                obs.recorder.clone(),
            ))
        });
        Arc::new(ManagementService {
            rpc,
            memo: MemoCache::new(config.memo_capacity)
                .attach_obs(&obs)
                .attach_faults(config.faults.clone()),
            memo_enabled: AtomicBool::new(config.memo_enabled),
            task_table: TaskTable::new(),
            pipelines: RwLock::new(HashMap::new()),
            batchers: RwLock::new(HashMap::new()),
            registrations: RwLock::new(Vec::new()),
            async_pool: AsyncPool::new(
                config.async_workers,
                obs.metrics.gauge_with_help(
                    "async_queue_depth",
                    "Async dispatches waiting in the worker-pool injector queue",
                ),
                obs.metrics.gauge_with_help(
                    "async_pool_active",
                    "Worker-pool threads currently running a dispatch",
                ),
            ),
            profiles: ProfileRegistry::new(),
            broker: broker.clone(),
            repo,
            config,
            admission,
            reconciler: OnceLock::new(),
            delta_baseline: Mutex::new(obs.snapshot()),
            obs,
        })
    }

    /// The service's observability handles (tracer + metrics registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Point-in-time snapshot of every metric the deployment recorded,
    /// including SLO burn rates and the tracer's dropped-span count.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Prometheus text exposition of the current metrics snapshot.
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Everything that changed since the previous call (or since
    /// construction, on the first call): counters, histogram mass, and
    /// contention waits as differences; gauges as signed deltas.
    /// Consecutive calls exactly partition the metric history, so an
    /// operator can watch `dlhub stats --delta` like `iostat`.
    pub fn metrics_delta(&self) -> MetricsSnapshot {
        let current = self.obs.snapshot();
        let mut baseline = self.delta_baseline.lock();
        let delta = current.delta_since(&baseline);
        *baseline = current;
        delta
    }

    /// The continuous profiler's collapsed-stack aggregates, or `None`
    /// while the profiler is disabled ([`ServingConfig::profile_hz`] 0
    /// and no manual [`Obs::enable_profiler`] call).
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.obs.profile.report()
    }

    /// Ranked lock/park contention sites (highest total wait first).
    pub fn contention_snapshot(&self) -> Vec<ContentionSnapshot> {
        self.obs.contention.snapshot()
    }

    /// Flight-recorder bundles frozen so far, oldest first. Empty while
    /// the recorder is disabled ([`ServingConfig::recorder_capacity`] 0).
    pub fn flight_bundles(&self) -> Vec<Arc<Bundle>> {
        self.obs.recorder.bundles()
    }

    /// One flight-recorder bundle by id.
    pub fn flight_bundle(&self, id: u64) -> Option<Arc<Bundle>> {
        self.obs.recorder.bundle(id)
    }

    /// The telemetry time-series store, or `None` while the collector
    /// is disabled ([`ServingConfig::telemetry_interval`] zero and no
    /// manual [`Obs::enable_telemetry`] call).
    pub fn telemetry_store(&self) -> Option<Arc<dlhub_obs::SeriesStore>> {
        self.obs.telemetry.store()
    }

    /// Windowed control-plane signals (arrival rate, queue wait, burn
    /// history, pool occupancy) over the telemetry store; `None` while
    /// the collector is disabled.
    pub fn control_signals(&self) -> Option<dlhub_obs::ControlSignals> {
        self.obs.telemetry.signals()
    }

    /// Arm the autoscaling reconciler over `executor`'s replica pools.
    /// Returns `false` (and does nothing) while
    /// [`ServingConfig::autoscale`] is unset; first attach wins. With a
    /// non-zero [`ServingConfig::autoscale_interval`] a
    /// `dlhub-reconciler` thread drives passes on the wall clock,
    /// holding only a `Weak` so it exits once the service drops; with a
    /// zero interval the embedder drives [`Self::reconcile_at`] on a
    /// clock of its choosing (the sim harness uses its virtual clock,
    /// which is what makes seeded decision logs byte-identical).
    pub fn attach_autoscaler(&self, executor: Arc<ParslExecutor>) -> bool {
        let Some(policy) = self.config.autoscale.clone() else {
            return false;
        };
        let mut created = false;
        let reconciler = self.reconciler.get_or_init(|| {
            created = true;
            Arc::new(
                Reconciler::new(self.profiles.clone(), executor, policy).with_counter(
                    self.obs.metrics.counter_with_help(
                        "autoscale_decisions_total",
                        "Scaling decisions applied by the control loop",
                    ),
                ),
            )
        });
        if created && !self.config.autoscale_interval.is_zero() {
            let weak = Arc::downgrade(reconciler);
            let telemetry = self.obs.telemetry.clone();
            let interval = self.config.autoscale_interval;
            std::thread::Builder::new()
                .name("dlhub-reconciler".into())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    match weak.upgrade() {
                        Some(reconciler) => {
                            if let Some(signals) = telemetry.signals() {
                                let signals = TelemetrySignals::new(signals);
                                reconciler.reconcile_at(dlhub_obs::now_ns(), &signals);
                            }
                        }
                        None => break,
                    }
                })
                .expect("spawn reconciler thread");
        }
        created
    }

    /// The attached reconciler (decision log, policy), or `None` before
    /// [`Self::attach_autoscaler`].
    pub fn reconciler(&self) -> Option<Arc<Reconciler>> {
        self.reconciler.get().cloned()
    }

    /// One manual reconcile pass at (virtual) time `now_ns`, reading
    /// the telemetry store's control signals. Returns the decisions
    /// applied; empty while the reconciler or telemetry is unarmed.
    pub fn reconcile_at(&self, now_ns: u64) -> Vec<ControlDecision> {
        let (Some(reconciler), Some(signals)) = (self.reconciler.get(), self.control_signals())
        else {
            return Vec::new();
        };
        reconciler.reconcile_at(now_ns, &TelemetrySignals::new(signals))
    }

    /// One reconcile pass on the wall clock, for embedders that want
    /// an immediate pass between background ticks (or without any).
    pub fn reconcile_now(&self) -> Vec<ControlDecision> {
        self.reconcile_at(dlhub_obs::now_ns())
    }

    /// The admission controller, or `None` while admission control is
    /// disabled ([`ServingConfig::admission`] unset).
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Collect and export spans, optionally restricted to one trace id
    /// (as returned in [`RunResult::trace`]).
    pub fn trace_export(&self, trace: Option<u64>) -> TraceExport {
        self.obs.tracer.export(trace)
    }

    /// Reconstruct one trace's span tree and decompose its wall time
    /// into named serving stages (management overhead, broker wait,
    /// dispatch, replica queue-wait, execute, …). `None` when the trace
    /// id is unknown or its spans were evicted.
    pub fn analyze_trace(&self, trace: u64) -> Option<TraceAnalysis> {
        dlhub_obs::analyze(&self.obs.tracer.export(Some(trace)), trace)
    }

    /// The backing repository.
    pub fn repository(&self) -> &Arc<Repository> {
        &self.repo
    }

    /// Publish a model (delegates to the repository; invalidates any
    /// stale memo entries for a republished servable).
    pub fn publish(
        &self,
        token: &Token,
        metadata: ServableMetadata,
        servable: Arc<dyn Servable>,
        components: BTreeMap<String, Vec<u8>>,
        visibility: PublishVisibility,
    ) -> Result<PublishReceipt, DlhubError> {
        let receipt = self
            .repo
            .publish(token, metadata, servable, components, visibility)?;
        if receipt.version > 1 {
            self.memo.invalidate_servable(&receipt.id);
        }
        Ok(receipt)
    }

    /// Search visible models.
    pub fn search(
        &self,
        token: Option<&Token>,
        query: &dlhub_search::Query,
    ) -> Vec<dlhub_search::SearchHit> {
        self.repo.search(token, query)
    }

    /// Describe a visible model.
    pub fn describe(
        &self,
        token: Option<&Token>,
        id: &str,
    ) -> Result<(ServableMetadata, u32, String), DlhubError> {
        self.repo.describe(token, id)
    }

    /// Globally enable/disable memoization (§V-B experiments toggle
    /// this).
    pub fn set_memoization(&self, enabled: bool) {
        self.memo_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Memo-cache counters.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Authorize the serve scope, returning the caller's tenant key
    /// (smallest linked identity — see [`dlhub_auth::TokenInfo::tenant`])
    /// for admission accounting.
    fn authorize_serve(&self, token: &Token) -> Result<IdentityId, DlhubError> {
        self.repo
            .auth()
            .authorize(
                token,
                &Scope::new(crate::repository::RESOURCE_SERVER, SERVE_SCOPE),
            )
            .map(|info| info.tenant())
            .map_err(DlhubError::from)
    }

    /// Validate the caller and input, returning the servable metadata
    /// plus the caller's tenant key.
    fn preflight(
        &self,
        token: &Token,
        id: &str,
        inputs: &[Value],
    ) -> Result<(ServableMetadata, IdentityId), DlhubError> {
        let tenant = self.authorize_serve(token)?;
        let (_, metadata) = self.repo.resolve(Some(token), id)?;
        for input in inputs {
            if !metadata.input_type.matches(input) {
                return Err(DlhubError::InvalidInput {
                    servable: id.to_string(),
                    expected: metadata.input_type.descriptor(),
                });
            }
        }
        Ok((metadata, tenant))
    }

    /// Pass `tenant`'s request through the admission controller (a
    /// no-op `Ok(None)` while admission is disabled). The permit holds
    /// the inflight slot and must live for the request's duration.
    /// Contention pressure is read from the telemetry signals: p99
    /// broker queue wait or the servable's fast burn rate over their
    /// configured maxima.
    fn admit(
        &self,
        servable: &str,
        tenant: IdentityId,
    ) -> Result<Option<AdmissionPermit>, DlhubError> {
        let Some(controller) = &self.admission else {
            return Ok(None);
        };
        let cfg = controller.config();
        let pressured = self.control_signals().is_some_and(|signals| {
            let window = cfg.signal_window;
            let queue_hot = signals
                .queue_wait(window)
                .and_then(|h| h.quantile(0.99))
                .is_some_and(|p99| {
                    p99 > cfg.queue_wait_p99_max.as_nanos().min(u64::MAX as u128) as u64
                });
            let burn_hot = signals
                .burn_rate(servable, window)
                .is_some_and(|b| b.avg > cfg.burn_rate_max);
            queue_hot || burn_hot
        });
        controller
            .admit(tenant, pressured, dlhub_obs::now_ns())
            .map(Some)
    }

    /// Dispatch `inputs` to a Task Manager and await the response,
    /// retrying transient failures with exponential backoff until the
    /// retry budget or the request deadline runs out. `trace` rides
    /// inside the task envelope so the Task Manager can parent its
    /// invocation span under the caller's request span; each attempt
    /// additionally gets its own `attempt` child span.
    ///
    /// Every attempt re-sends the *same* `task_id`: the broker is
    /// at-least-once, so a timed-out attempt may still execute, and a
    /// duplicated execution must be attributable to one logical task.
    fn execute_remote(
        &self,
        id: &str,
        inputs: Vec<Value>,
        trace: Option<TraceContext>,
        deadline: Option<Duration>,
    ) -> Result<(Vec<Value>, Vec<Duration>, Duration), DlhubError> {
        let _frame = self.obs.profile.frame("serving.execute_remote");
        let deadline = Instant::now() + deadline.unwrap_or(self.config.request_deadline);
        let request = TaskRequest {
            task_id: next_task_id(),
            servable: id.to_string(),
            inputs,
            trace,
        };
        let payload = request.to_bytes();
        let mut attempts = 0u32;
        let mut backoff = self.config.retry_backoff;
        loop {
            attempts += 1;
            let mut attempt_span = trace.map(|p| self.obs.tracer.start_child(p, "attempt"));
            if let Some(s) = attempt_span.as_mut() {
                s.attr("servable", id);
                s.attr("attempt", attempts.to_string());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let error = if remaining.is_zero() {
                // Out of budget before this attempt even dispatched.
                DlhubError::Timeout
            } else {
                let per_attempt = self.config.request_timeout.min(remaining);
                match self.attempt_remote(id, &payload, per_attempt) {
                    Ok(parts) => {
                        if let Some(s) = attempt_span {
                            self.obs.tracer.finish(s);
                        }
                        return Ok(parts);
                    }
                    Err(e) => e,
                }
            };
            if let Some(mut s) = attempt_span {
                s.attr("error", error.to_string());
                self.obs.tracer.finish(s);
            }
            let retryable = match &error {
                DlhubError::Timeout | DlhubError::Transport(_) => true,
                DlhubError::Execution { .. } => self.config.retry_execution_errors,
                _ => false,
            };
            if !retryable {
                return Err(error);
            }
            if attempts > self.config.max_retries || Instant::now() >= deadline {
                self.obs.metrics.counter("request_exhausted_total").inc();
                return Err(DlhubError::Exhausted {
                    servable: id.to_string(),
                    attempts,
                    last_error: error.to_string(),
                });
            }
            self.obs.metrics.counter("request_retries_total").inc();
            let pause = backoff.min(deadline.saturating_duration_since(Instant::now()));
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            backoff = backoff.saturating_mul(2);
        }
    }

    /// One dispatch attempt: post the serialized task, await one reply,
    /// decode it, and feed the servable's rolling profile (adaptive
    /// batching and the replica autoscaler consume those observations).
    fn attempt_remote(
        &self,
        id: &str,
        payload: &bytes::Bytes,
        timeout: Duration,
    ) -> Result<(Vec<Value>, Vec<Duration>, Duration), DlhubError> {
        let reply = self.rpc.call_wait(payload.clone(), timeout)?;
        let response = TaskResponse::from_bytes(&reply).map_err(DlhubError::Transport)?;
        let outputs = response.outcome.map_err(|message| DlhubError::Execution {
            servable: id.to_string(),
            message,
        })?;
        let inference: Vec<Duration> = response
            .inference_nanos
            .iter()
            .map(|n| Duration::from_nanos(*n))
            .collect();
        let invocation = Duration::from_nanos(response.invocation_nanos);
        self.profiles
            .record(id, inference.iter().sum(), invocation, outputs.len().max(1));
        Ok((outputs, inference, invocation))
    }

    /// Live per-servable execution profiles (observed inference and
    /// overhead costs). Drives [`crate::batch::BatchSizing::Adaptive`]
    /// and [`crate::autoscale::Autoscaler`].
    pub fn profiles(&self) -> &ProfileRegistry {
        &self.profiles
    }

    /// Synchronous inference with default options.
    pub fn run(&self, token: &Token, id: &str, input: Value) -> Result<RunResult, DlhubError> {
        self.run_with_options(token, id, input, &RunOptions::default())
    }

    /// Synchronous inference.
    pub fn run_with_options(
        &self,
        token: &Token,
        id: &str,
        input: Value,
        options: &RunOptions,
    ) -> Result<RunResult, DlhubError> {
        self.run_inner(token, id, input, options, None)
    }

    /// The traced request path: mints the `request` span (root, or a
    /// child of `parent` when the request is a pipeline step), records
    /// the per-servable series, and delegates to [`Self::run_measured`]
    /// for the actual work.
    fn run_inner(
        &self,
        token: &Token,
        id: &str,
        input: Value,
        options: &RunOptions,
        parent: Option<TraceContext>,
    ) -> Result<RunResult, DlhubError> {
        let _frame = self.obs.profile.frame("serving.run");
        let started = Instant::now();
        let mut span = match parent {
            Some(p) => self.obs.tracer.start_child(p, "request"),
            None => self.obs.tracer.start_root("request"),
        };
        span.attr("servable", id);
        let trace = span.trace();
        let series = self.obs.metrics.series(id);
        series.requests.inc();
        match self.run_measured(token, id, input, options, span.ctx(), started) {
            Ok((value, timings)) => {
                span.attr(
                    "cache_hit",
                    if timings.cache_hit { "true" } else { "false" },
                );
                series
                    .request_latency
                    .record_duration_with_exemplar(timings.request, trace);
                series
                    .invocation_latency
                    .record_duration(timings.invocation);
                if timings.cache_hit {
                    series.cache_hits.inc();
                } else {
                    series.inference_latency.record_duration(timings.inference);
                }
                self.obs.observe_slo(id, timings.request, true);
                self.obs.tracer.finish(span);
                Ok(RunResult {
                    value,
                    timings,
                    trace,
                })
            }
            Err(e) => {
                series.errors.inc();
                span.attr("error", e.to_string());
                self.obs.observe_slo(id, started.elapsed(), false);
                self.obs.tracer.finish(span);
                Err(e)
            }
        }
    }

    /// Validate, consult the memo cache, and dispatch to a Task
    /// Manager. `ctx` is the enclosing request span's context.
    fn run_measured(
        &self,
        token: &Token,
        id: &str,
        input: Value,
        options: &RunOptions,
        ctx: TraceContext,
        started: Instant,
    ) -> Result<(Value, Timings), DlhubError> {
        let (_, tenant) = self.preflight(token, id, std::slice::from_ref(&input))?;
        // Shed *before* any queueing or dispatch: a rejected request
        // costs the caller one typed error and a back-off, not a
        // deadline spent deep in the stack. The permit's drop at the
        // end of this call releases the inflight slot.
        let _permit = self.admit(id, tenant)?;
        let memoize = options
            .memoize
            .unwrap_or_else(|| self.memo_enabled.load(Ordering::Relaxed));
        let key = MemoKey::new(id, &input);
        if memoize {
            let _frame = self.obs.profile.frame("serving.memo_lookup");
            let lookup_started = Instant::now();
            let mut lookup_span = self.obs.tracer.start_child(ctx, "memo_lookup");
            lookup_span.attr("servable", id);
            let cached = self.memo.get(&key);
            lookup_span.attr("hit", if cached.is_some() { "true" } else { "false" });
            self.obs.tracer.finish(lookup_span);
            if let Some(cached) = cached {
                // A hit never reaches the Task Manager: invocation
                // collapses to the cache lookup (§V-B5).
                return Ok((
                    cached,
                    Timings {
                        inference: Duration::ZERO,
                        invocation: lookup_started.elapsed(),
                        request: started.elapsed(),
                        cache_hit: true,
                    },
                ));
            }
        }
        let (mut outputs, inference, invocation) =
            self.execute_remote(id, vec![input], Some(ctx), options.deadline)?;
        let value = outputs
            .pop()
            .ok_or_else(|| DlhubError::Transport("task manager returned no output".into()))?;
        if memoize {
            self.memo.put(key, value.clone());
        }
        Ok((
            value,
            Timings {
                inference: inference.first().copied().unwrap_or_default(),
                invocation,
                request: started.elapsed(),
                cache_hit: false,
            },
        ))
    }

    /// Explicit batch execution: all inputs travel in one task,
    /// amortizing dispatch overheads (§V-B3). Returns outputs in input
    /// order plus the batch timings (inference = sum over items).
    pub fn run_batch(
        &self,
        token: &Token,
        id: &str,
        inputs: Vec<Value>,
    ) -> Result<(Vec<Value>, Timings), DlhubError> {
        let started = Instant::now();
        if inputs.is_empty() {
            return Ok((Vec::new(), Timings::default()));
        }
        let (_, tenant) = self.preflight(token, id, &inputs)?;
        // One permit per batch: the batch travels as one task.
        let _permit = self.admit(id, tenant)?;
        let mut span = self.obs.tracer.start_root("request");
        span.attr("servable", id);
        span.attr("batch_size", inputs.len().to_string());
        let trace = span.trace();
        let series = self.obs.metrics.series(id);
        series.requests.add(inputs.len() as u64);
        series.batch_sizes.record(inputs.len() as u64);
        let outcome = self.execute_remote(id, inputs, Some(span.ctx()), None);
        let (outputs, inference, invocation) = match outcome {
            Ok(parts) => parts,
            Err(e) => {
                series.errors.inc();
                span.attr("error", e.to_string());
                self.obs.observe_slo(id, started.elapsed(), false);
                self.obs.tracer.finish(span);
                return Err(e);
            }
        };
        let timings = Timings {
            inference: inference.iter().sum(),
            invocation,
            request: started.elapsed(),
            cache_hit: false,
        };
        series
            .request_latency
            .record_duration_with_exemplar(timings.request, trace);
        series
            .invocation_latency
            .record_duration(timings.invocation);
        series.inference_latency.record_duration(timings.inference);
        self.obs.observe_slo(id, timings.request, true);
        self.obs.tracer.finish(span);
        Ok((outputs, timings))
    }

    /// Submit through the auto-batcher: the request is coalesced with
    /// concurrent requests for the same servable into one dispatch.
    pub fn run_batched(
        self: &Arc<Self>,
        token: &Token,
        id: &str,
        input: Value,
    ) -> Result<Value, DlhubError> {
        let (_, tenant) = self.preflight(token, id, std::slice::from_ref(&input))?;
        // The permit covers the coalescing wait and the flush this
        // caller blocks on: submit() returns only once its batch ran.
        let _permit = self.admit(id, tenant)?;
        // Fast path: the batcher already exists, so a read lock keeps
        // concurrent submitters for different servables contention-free.
        if let Some(batcher) = self.batchers.read().get(id).map(Arc::clone) {
            return batcher.submit(input);
        }
        let batcher = {
            let mut batchers = self.batchers.write();
            // Double-check: another caller may have created it between
            // the read unlock and the write lock.
            match batchers.get(id) {
                Some(b) => Arc::clone(b),
                None => {
                    let service = Arc::clone(self);
                    let servable = id.to_string();
                    let sizing = if self.config.adaptive_batching {
                        crate::batch::BatchSizing::Adaptive {
                            registry: self.profiles.clone(),
                            servable: id.to_string(),
                            target_overhead_fraction: 0.1,
                            cap: self.config.batch_max,
                        }
                    } else {
                        crate::batch::BatchSizing::Fixed(self.config.batch_max)
                    };
                    // The flusher stores the oldest item's wait into
                    // the sink right before calling dispatch, so the
                    // flush span can attribute coalescing delay.
                    let wait_sink = Arc::new(AtomicU64::new(0));
                    let wait_source = Arc::clone(&wait_sink);
                    let batcher = Arc::new(Batcher::with_wait_sink(
                        sizing,
                        self.config.batch_delay,
                        Arc::new(move |inputs: Vec<Value>| {
                            let _frame = service.obs.profile.frame("serving.batch_flush");
                            // One flush = one task: trace it as its own
                            // root and record the coalesced size.
                            let mut span = service.obs.tracer.start_root("batch_flush");
                            span.attr("servable", servable.clone());
                            span.attr("batch_size", inputs.len().to_string());
                            span.attr(
                                "batch_wait_ns",
                                wait_source.load(Ordering::Relaxed).to_string(),
                            );
                            let series = service.obs.metrics.series(&servable);
                            series.requests.add(inputs.len() as u64);
                            series.batch_sizes.record(inputs.len() as u64);
                            let result = match service.config.faults.decide(site::BATCH_FLUSH) {
                                Some(fault) => Err(DlhubError::Execution {
                                    servable: servable.clone(),
                                    message: format!(
                                        "injected batch-flush fault ({:?})",
                                        fault.kind
                                    ),
                                }),
                                None => service
                                    .execute_remote(&servable, inputs, Some(span.ctx()), None)
                                    .map(|(outputs, _, _)| outputs),
                            };
                            if let Err(e) = &result {
                                series.errors.inc();
                                span.attr("error", e.to_string());
                            }
                            service.obs.tracer.finish(span);
                            result
                        }),
                        wait_sink,
                    ));
                    batchers.insert(id.to_string(), Arc::clone(&batcher));
                    batcher
                }
            }
        };
        batcher.submit(input)
    }

    /// Asynchronous inference: returns a handle carrying the task UUID
    /// (§IV-A). Authorization and input validation happen before the
    /// handle is returned.
    pub fn run_async(
        self: &Arc<Self>,
        token: &Token,
        id: &str,
        input: Value,
    ) -> Result<TaskHandle, DlhubError> {
        let (_, tenant) = self.preflight(token, id, std::slice::from_ref(&input))?;
        // Admission happens at submission — an accepted handle is a
        // promise of capacity — and the permit rides into the pool job
        // so the slot stays held until the dispatch finishes.
        let permit = self.admit(id, tenant)?;
        let task_id = next_task_id();
        self.task_table.register(&task_id);
        let handle = TaskHandle::new(task_id.clone(), Arc::clone(&self.task_table));
        let service = Arc::clone(self);
        let servable = id.to_string();
        // The request span opens at submission: queueing time inside
        // the async pool is part of the user-visible request.
        let started = Instant::now();
        let mut span = self.obs.tracer.start_root("request");
        span.attr("servable", id);
        span.attr("mode", "async");
        span.attr("task_id", task_id.clone());
        // No thread is spawned per request: the job joins the injector
        // queue and one of the `async_workers` pool threads runs it.
        self.async_pool.submit(Box::new(move || {
            let _frame = service.obs.profile.frame("serving.async_worker");
            let _permit = permit;
            let mut span = span;
            let series = service.obs.metrics.series(&servable);
            series.requests.inc();
            let status =
                match service.execute_remote(&servable, vec![input], Some(span.ctx()), None) {
                    Ok((mut outputs, inference, invocation)) => {
                        series.invocation_latency.record_duration(invocation);
                        series
                            .inference_latency
                            .record_duration(inference.first().copied().unwrap_or_default());
                        match outputs.pop() {
                            Some(v) => TaskStatus::Completed(v),
                            None => TaskStatus::failed("no output"),
                        }
                    }
                    Err(e) => {
                        series.errors.inc();
                        span.attr("error", e.to_string());
                        // A terminal failure is exactly the moment an
                        // operator wants the recent past preserved:
                        // freeze a flight-recorder bundle (no-op while
                        // the recorder is disabled).
                        service.obs.recorder.task_failed(
                            &task_id,
                            &servable,
                            e.attempts(),
                            &e.to_string(),
                        );
                        TaskStatus::Failed {
                            attempts: e.attempts(),
                            last_error: e.to_string(),
                        }
                    }
                };
            let latency = started.elapsed();
            series
                .request_latency
                .record_duration_with_exemplar(latency, span.trace());
            service.obs.observe_slo(
                &servable,
                latency,
                matches!(status, TaskStatus::Completed(_)),
            );
            service.obs.tracer.finish(span);
            service.task_table.resolve(&task_id, status);
        }));
        Ok(handle)
    }

    /// Poll an async task by UUID. Ids whose record was dropped by
    /// [`Self::forget_task`] report [`DlhubError::ExpiredTask`], so a
    /// client can tell "poll again later is pointless" apart from a
    /// typo'd id ([`DlhubError::UnknownTask`]).
    pub fn task_status(&self, task_id: &str) -> Result<TaskStatus, DlhubError> {
        match self.task_table.status(task_id) {
            Some(status) => Ok(status),
            None if self.task_table.was_forgotten(task_id) => {
                Err(DlhubError::ExpiredTask(task_id.to_string()))
            }
            None => Err(DlhubError::UnknownTask(task_id.to_string())),
        }
    }

    /// Drop a finished task's record (housekeeping after the client
    /// retrieved the result). A bounded tombstone keeps later polls
    /// answering "expired" rather than "never existed".
    pub fn forget_task(&self, task_id: &str) {
        self.task_table.forget(task_id);
    }

    /// Register a pipeline. Every step must be visible to the
    /// registrant.
    pub fn register_pipeline(&self, token: &Token, pipeline: Pipeline) -> Result<(), DlhubError> {
        self.authorize_serve(token)?;
        pipeline.validate().map_err(DlhubError::Pipeline)?;
        for step in &pipeline.steps {
            self.repo.resolve(Some(token), step)?;
        }
        self.pipelines
            .write()
            .insert(pipeline.name.clone(), pipeline);
        Ok(())
    }

    /// Run a registered pipeline: steps execute server-side, output of
    /// step *k* feeding step *k + 1* without returning to the client
    /// (§VI-D). Returns the final value and per-step timings.
    pub fn run_pipeline(
        &self,
        token: &Token,
        name: &str,
        input: Value,
    ) -> Result<(Value, Vec<StepTiming>), DlhubError> {
        self.run_pipeline_traced(token, name, input)
            .map(|(value, steps, _)| (value, steps))
    }

    /// [`Self::run_pipeline`], additionally returning the trace id of
    /// the pipeline's span tree: one `pipeline` root with one `request`
    /// child per step, each carrying its `invocation`/`inference`
    /// descendants from the deeper tiers.
    pub fn run_pipeline_traced(
        &self,
        token: &Token,
        name: &str,
        input: Value,
    ) -> Result<(Value, Vec<StepTiming>, u64), DlhubError> {
        self.authorize_serve(token)?;
        let pipeline = self
            .pipelines
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DlhubError::Pipeline(format!("no such pipeline: {name}")))?;
        let mut span = self.obs.tracer.start_root("pipeline");
        span.attr("pipeline", name);
        span.attr("steps", pipeline.steps.len().to_string());
        let trace = span.trace();
        let ctx = span.ctx();
        let mut current = input;
        let mut steps = Vec::with_capacity(pipeline.steps.len());
        for step in &pipeline.steps {
            let result =
                match self.run_inner(token, step, current, &RunOptions::default(), Some(ctx)) {
                    Ok(result) => result,
                    Err(e) => {
                        span.attr("error", e.to_string());
                        self.obs.tracer.finish(span);
                        return Err(e);
                    }
                };
            steps.push(StepTiming {
                servable: step.clone(),
                timings: result.timings,
            });
            current = result.value;
        }
        self.obs.tracer.finish(span);
        Ok((current, steps, trace))
    }

    /// Registered pipelines.
    pub fn pipelines(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pipelines.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Task Managers that have registered so far (§IV-B). Drains the
    /// registration topic on each call.
    pub fn task_managers(&self) -> Vec<TmRegistration> {
        // Drain outside any lock; only extend under the write lock
        // when something actually arrived, so concurrent callers that
        // find the topic empty share the read side.
        let mut fresh = Vec::new();
        while let Ok(Some(delivery)) = self.broker.try_recv(REGISTRATION_TOPIC) {
            if let Ok(reg) = serde_json::from_slice::<TmRegistration>(&delivery.message.payload) {
                fresh.push(reg);
            }
            delivery.ack();
        }
        if !fresh.is_empty() {
            self.registrations.write().extend(fresh);
        }
        self.registrations.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TestHub;
    use crate::servable::servable_fn;
    use crate::servable::ModelType;
    use dlhub_search::Query;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_noop_returns_hello_world_with_timings() {
        let hub = TestHub::builder().build();
        let result = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        assert_eq!(result.value, Value::Str("hello world".into()));
        assert!(result.timings.request >= result.timings.invocation);
        assert!(result.timings.invocation >= result.timings.inference);
        assert!(!result.timings.cache_hit);
    }

    #[test]
    fn memoization_hits_on_repeat_input() {
        let hub = TestHub::builder().memo(true).build();
        let input = Value::Str("NaCl".into());
        let first = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input.clone())
            .unwrap();
        let second = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input)
            .unwrap();
        assert!(!first.timings.cache_hit);
        assert!(second.timings.cache_hit);
        assert_eq!(first.value, second.value);
        assert_eq!(second.timings.inference, Duration::ZERO);
        assert!(second.timings.invocation < first.timings.invocation);
        let stats = hub.service.memo_stats();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn memoization_respects_disable() {
        let hub = TestHub::builder().memo(false).build();
        let input = Value::Str("NaCl".into());
        for _ in 0..3 {
            let r = hub
                .service
                .run(&hub.token, "dlhub/matminer-util", input.clone())
                .unwrap();
            assert!(!r.timings.cache_hit);
        }
        assert_eq!(hub.service.memo_stats().hits, 0);
        // Per-request override wins over the global switch.
        let opts = RunOptions {
            memoize: Some(true),
            ..RunOptions::default()
        };
        hub.service
            .run_with_options(&hub.token, "dlhub/matminer-util", input.clone(), &opts)
            .unwrap();
        let hit = hub
            .service
            .run_with_options(&hub.token, "dlhub/matminer-util", input, &opts)
            .unwrap();
        assert!(hit.timings.cache_hit);
    }

    #[test]
    fn input_validation_rejects_type_mismatches() {
        let hub = TestHub::builder().build();
        let err = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", Value::Int(3))
            .unwrap_err();
        assert!(matches!(err, DlhubError::InvalidInput { .. }));
    }

    #[test]
    fn run_batch_preserves_order_and_amortizes() {
        let hub = TestHub::builder().build();
        let inputs: Vec<Value> = ["NaCl", "SiO2", "Fe2O3"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let (outputs, timings) = hub
            .service
            .run_batch(&hub.token, "dlhub/matminer-util", inputs)
            .unwrap();
        assert_eq!(outputs.len(), 3);
        match &outputs[1] {
            Value::Json(doc) => assert_eq!(doc["formula"], "SiO2"),
            other => panic!("unexpected {other}"),
        }
        assert!(timings.request >= timings.invocation);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let hub = TestHub::builder().build();
        let (outputs, timings) = hub
            .service
            .run_batch(&hub.token, "dlhub/noop", vec![])
            .unwrap();
        assert!(outputs.is_empty());
        assert_eq!(timings.request, Duration::ZERO);
    }

    #[test]
    fn auto_batcher_coalesces_concurrent_callers() {
        static DISPATCHES: AtomicUsize = AtomicUsize::new(0);
        let hub = TestHub::builder().build();
        // A servable that counts distinct executor dispatches by
        // observing batch boundaries is hard from outside; instead we
        // count executions and verify outputs are all correct while
        // the batcher window coalesces them into few tasks.
        let counted = servable_fn(|v| {
            DISPATCHES.fetch_add(1, Ordering::Relaxed);
            Ok(v.clone())
        });
        hub.publish_simple("echo", ModelType::PythonFunction, counted);
        let service = Arc::clone(&hub.service);
        let token = hub.token.clone();
        let handles: Vec<_> = (0..10)
            .map(|i| {
                let service = Arc::clone(&service);
                let token = token.clone();
                std::thread::spawn(move || {
                    service
                        .run_batched(&token, "dlhub/echo", Value::Int(i))
                        .unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            // Order of thread starts is not the order of values; just
            // check each result is an Int we sent.
            match h.join().unwrap() {
                Value::Int(v) => assert!((0..10).contains(&v), "bad echo at {i}"),
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(DISPATCHES.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn async_run_resolves_via_task_table() {
        let hub = TestHub::builder().build();
        let handle = hub
            .service
            .run_async(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        let status = handle.wait(Duration::from_secs(5));
        assert_eq!(
            status,
            TaskStatus::Completed(Value::Str("hello world".into()))
        );
        // The service can be polled by UUID too.
        assert_eq!(
            hub.service.task_status(&handle.id).unwrap(),
            TaskStatus::Completed(Value::Str("hello world".into()))
        );
        assert!(matches!(
            hub.service.task_status("task-bogus"),
            Err(DlhubError::UnknownTask(_))
        ));
    }

    #[test]
    fn async_failure_is_captured() {
        let hub = TestHub::builder().build();
        hub.publish_simple(
            "boom",
            ModelType::PythonFunction,
            servable_fn(|_| Err("exploded".into())),
        );
        let handle = hub
            .service
            .run_async(&hub.token, "dlhub/boom", Value::Null)
            .unwrap();
        match handle.wait(Duration::from_secs(5)) {
            TaskStatus::Failed {
                attempts,
                last_error,
            } => {
                assert!(last_error.contains("exploded"));
                // Execution errors are not retried by default.
                assert_eq!(attempts, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_runs_server_side() {
        let hub = TestHub::builder().build();
        let pipeline = Pipeline::new(
            "formation-enthalpy",
            vec![
                "dlhub/matminer-util".into(),
                "dlhub/matminer-featurize".into(),
                "dlhub/matminer-model".into(),
            ],
        );
        hub.service.register_pipeline(&hub.token, pipeline).unwrap();
        let (value, steps) = hub
            .service
            .run_pipeline(&hub.token, "formation-enthalpy", Value::Str("SiO2".into()))
            .unwrap();
        match value {
            Value::Float(v) => assert!(v.is_finite()),
            other => panic!("expected float, got {other}"),
        }
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].servable, "dlhub/matminer-util");
        assert_eq!(hub.service.pipelines(), vec!["formation-enthalpy"]);
    }

    #[test]
    fn pipeline_registration_validates_steps() {
        let hub = TestHub::builder().build();
        let err = hub
            .service
            .register_pipeline(&hub.token, Pipeline::new("bad", vec!["dlhub/ghost".into()]))
            .unwrap_err();
        assert!(matches!(err, DlhubError::NotFound(_)));
        let err = hub
            .service
            .run_pipeline(&hub.token, "unregistered", Value::Null)
            .unwrap_err();
        assert!(matches!(err, DlhubError::Pipeline(_)));
    }

    #[test]
    fn search_through_service() {
        let hub = TestHub::builder().build();
        let hits = hub
            .service
            .search(Some(&hub.token), &Query::free_text("inception"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "dlhub/inception");
    }

    #[test]
    fn task_managers_are_visible() {
        let hub = TestHub::builder().build();
        let tms = hub.service.task_managers();
        assert_eq!(tms.len(), 1);
        assert!(tms[0].executors.contains(&"parsl".to_string()));
        // Idempotent: calling again keeps the cached registration.
        assert_eq!(hub.service.task_managers().len(), 1);
    }

    #[test]
    fn profiles_accumulate_from_real_traffic() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .memo(false)
            .build();
        hub.publish_simple(
            "sleepy",
            ModelType::PythonFunction,
            servable_fn(|v| {
                std::thread::sleep(Duration::from_millis(8));
                Ok(v.clone())
            }),
        );
        for i in 0..6 {
            hub.service
                .run(&hub.token, "dlhub/sleepy", Value::Int(i))
                .unwrap();
        }
        let profile = hub.service.profiles().get("dlhub/sleepy").unwrap();
        assert_eq!(profile.samples, 6);
        assert!(
            profile.inference >= Duration::from_millis(7),
            "inference {:?}",
            profile.inference
        );
        // Overhead (invocation − inference) is small in-process.
        assert!(profile.overhead < profile.inference);
    }

    #[test]
    fn autoscaler_closes_the_loop_over_live_profiles() {
        use crate::autoscale::{AutoscalePolicy, Autoscaler};
        let hub = TestHub::builder()
            .without_eval_servables()
            .memo(false)
            .build();
        hub.publish_simple(
            "heavy",
            ModelType::PythonFunction,
            servable_fn(|v| {
                std::thread::sleep(Duration::from_millis(10));
                Ok(v.clone())
            }),
        );
        for i in 0..8 {
            hub.service
                .run(&hub.token, "dlhub/heavy", Value::Int(i))
                .unwrap();
        }
        let scaler = Autoscaler::new(
            hub.service.profiles().clone(),
            Arc::clone(&hub.parsl),
            AutoscalePolicy::default(),
        );
        let before = hub.parsl.replicas("dlhub/heavy");
        let decisions = scaler.reconcile();
        // A 10ms servable behind µs-scale in-process overhead wants
        // the cap; the decision must reflect the observed profile.
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].desired >= before);
        assert_eq!(hub.parsl.replicas("dlhub/heavy"), decisions[0].desired);
    }

    #[test]
    fn adaptive_batching_config_is_honored() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .memo(false)
            .config(ServingConfig {
                adaptive_batching: true,
                batch_delay: Duration::from_millis(10),
                ..ServingConfig::default()
            })
            .build();
        hub.publish_simple(
            "echo",
            ModelType::PythonFunction,
            servable_fn(|v| Ok(v.clone())),
        );
        // Seed the profile, then a burst must still return correct
        // per-caller results under adaptive sizing.
        let service = Arc::clone(&hub.service);
        service
            .run_batched(&hub.token, "dlhub/echo", Value::Int(-1))
            .unwrap();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let service = Arc::clone(&service);
                let token = hub.token.clone();
                std::thread::spawn(move || {
                    service
                        .run_batched(&token, "dlhub/echo", Value::Int(i))
                        .unwrap()
                })
            })
            .collect();
        let mut got: Vec<i64> = handles
            .into_iter()
            .map(|h| match h.join().unwrap() {
                Value::Int(i) => i,
                other => panic!("unexpected {other}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn async_burst_is_bounded_by_the_worker_pool() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let workers = 2;
        let hub = TestHub::builder()
            .without_eval_servables()
            .memo(false)
            .replicas(8)
            .consumers(8)
            .config(ServingConfig {
                async_workers: workers,
                ..ServingConfig::default()
            })
            .build();
        hub.publish_simple(
            "gauge",
            ModelType::PythonFunction,
            servable_fn(|v| {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                LIVE.fetch_sub(1, Ordering::SeqCst);
                Ok(v.clone())
            }),
        );
        let handles: Vec<_> = (0..12)
            .map(|i| {
                hub.service
                    .run_async(&hub.token, "dlhub/gauge", Value::Int(i))
                    .unwrap()
            })
            .collect();
        for h in handles {
            match h.wait(Duration::from_secs(10)) {
                TaskStatus::Completed(Value::Int(_)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // Executors and consumers have spare capacity (8 each), so the
        // only thing limiting concurrency is the async worker pool.
        let peak = PEAK.load(Ordering::SeqCst);
        assert!(
            peak <= workers,
            "pool leaked concurrency: peak {peak} > {workers} workers"
        );
        assert!(peak >= 1);
    }

    #[test]
    fn memo_stats_stay_readable_during_a_run_storm() {
        let hub = TestHub::builder().memo(true).build();
        let service = Arc::clone(&hub.service);
        let token = hub.token.clone();
        let per_writer = 100i64;
        let writers: Vec<_> = (0..3)
            .map(|t| {
                let service = Arc::clone(&service);
                let token = token.clone();
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        // Distinct inputs: every request is a miss
                        // followed by a put, hammering the cache's
                        // write side.
                        let input = Value::Str(format!("Na{}Cl{}", t + 1, i + 1));
                        service.run(&token, "dlhub/matminer-util", input).unwrap();
                    }
                })
            })
            .collect();
        // Metric reads must make progress (lock-free counters) while
        // the put storm runs; totals can only grow.
        let mut last = 0u64;
        while last < 3 * per_writer as u64 {
            let s = service.memo_stats();
            let total = s.hits + s.misses;
            assert!(total >= last, "memo counters went backwards");
            last = total;
        }
        for w in writers {
            w.join().unwrap();
        }
        assert!(service.memo_stats().misses >= 3 * per_writer as u64);
    }

    #[test]
    fn forgotten_tasks_report_expired_not_unknown() {
        let hub = TestHub::builder().build();
        let handle = hub
            .service
            .run_async(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        handle.wait(Duration::from_secs(5));
        hub.service.forget_task(&handle.id);
        assert!(matches!(
            hub.service.task_status(&handle.id),
            Err(DlhubError::ExpiredTask(_))
        ));
        assert!(matches!(
            hub.service.task_status("task-bogus"),
            Err(DlhubError::UnknownTask(_))
        ));
    }

    #[test]
    fn run_produces_a_trace_spanning_all_three_tiers() {
        let hub = TestHub::builder().memo(false).build();
        let result = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        assert!(result.trace > 0);
        let export = hub.service.trace_export(Some(result.trace));
        let request = export.named("request");
        assert_eq!(request.len(), 1);
        assert_eq!(request[0].parent, 0);
        assert_eq!(request[0].attr("servable"), Some("dlhub/noop"));
        assert_eq!(request[0].attr("cache_hit"), Some("false"));
        let invocation = export.named("invocation");
        assert_eq!(invocation.len(), 1);
        assert_eq!(invocation[0].parent, request[0].span);
        let inference = export.named("inference");
        assert_eq!(inference.len(), 1);
        assert_eq!(inference[0].parent, invocation[0].span);
        // The tiers nest: each inner span is no longer than its parent.
        assert!(inference[0].duration() <= invocation[0].duration());
        assert!(invocation[0].duration() <= request[0].duration());
    }

    #[test]
    fn cache_hits_are_traced_and_counted() {
        let hub = TestHub::builder().memo(true).build();
        let input = Value::Str("NaCl".into());
        hub.service
            .run(&hub.token, "dlhub/matminer-util", input.clone())
            .unwrap();
        let hit = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input)
            .unwrap();
        let export = hub.service.trace_export(Some(hit.trace));
        let request = export.named("request");
        assert_eq!(request.len(), 1);
        assert_eq!(request[0].attr("cache_hit"), Some("true"));
        // A hit never reaches the Task Manager: no deeper spans.
        assert!(export.named("invocation").is_empty());
        let snap = hub.service.metrics_snapshot();
        let (_, series) = snap
            .servables
            .iter()
            .find(|(s, _)| s == "dlhub/matminer-util")
            .expect("series recorded");
        assert_eq!(series.requests, 2);
        assert_eq!(series.cache_hits, 1);
        // Registry counters from the attached memo cache agree with
        // the cache's own stats.
        let stats = hub.service.memo_stats();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("memo_hits_total"), stats.hits);
        assert_eq!(counter("memo_misses_total"), stats.misses);
    }

    #[test]
    fn snapshot_renders_prometheus_with_servable_series() {
        let hub = TestHub::builder().memo(false).build();
        hub.service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        let prom = hub.service.render_prometheus();
        assert!(prom.contains("dlhub_servable_requests_total{servable=\"dlhub/noop\"} 1"));
        assert!(prom.contains("dlhub_servable_request_latency_seconds{servable=\"dlhub/noop\""));
        assert!(prom.contains("dlhub_broker_send_total"));
        assert!(prom.contains("dlhub_tm_tasks_total 1"));
    }

    #[test]
    fn failed_requests_are_counted_and_annotated() {
        let hub = TestHub::builder().without_eval_servables().build();
        hub.publish_simple(
            "boom",
            ModelType::PythonFunction,
            servable_fn(|_| Err("exploded".into())),
        );
        let err = hub
            .service
            .run(&hub.token, "dlhub/boom", Value::Null)
            .unwrap_err();
        assert!(matches!(err, DlhubError::Execution { .. }));
        let snap = hub.service.metrics_snapshot();
        let (_, series) = snap
            .servables
            .iter()
            .find(|(s, _)| s == "dlhub/boom")
            .expect("series recorded");
        assert_eq!(series.errors, 1);
        let export = hub.service.trace_export(None);
        let request = export.named("request");
        assert_eq!(request.len(), 1);
        assert!(request[0].attr("error").is_some());
    }

    #[test]
    fn traced_pipeline_nests_steps_under_one_root() {
        let hub = TestHub::builder().memo(false).build();
        let pipeline = Pipeline::new(
            "formation-enthalpy",
            vec![
                "dlhub/matminer-util".into(),
                "dlhub/matminer-featurize".into(),
                "dlhub/matminer-model".into(),
            ],
        );
        hub.service.register_pipeline(&hub.token, pipeline).unwrap();
        let (_, steps, trace) = hub
            .service
            .run_pipeline_traced(&hub.token, "formation-enthalpy", Value::Str("SiO2".into()))
            .unwrap();
        assert_eq!(steps.len(), 3);
        let export = hub.service.trace_export(Some(trace));
        let roots = export.named("pipeline");
        assert_eq!(roots.len(), 1);
        let requests = export.named("request");
        assert_eq!(requests.len(), 3);
        assert!(requests.iter().all(|r| r.parent == roots[0].span));
    }

    #[test]
    fn memo_lookups_are_traced_as_their_own_stage() {
        let hub = TestHub::builder().memo(true).build();
        let input = Value::Str("NaCl".into());
        let miss = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input.clone())
            .unwrap();
        let hit = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input)
            .unwrap();
        let lookups = hub.service.trace_export(Some(miss.trace));
        let lookups = lookups.named("memo_lookup");
        assert_eq!(lookups.len(), 1);
        assert_eq!(lookups[0].attr("hit"), Some("false"));
        let export = hub.service.trace_export(Some(hit.trace));
        let lookups = export.named("memo_lookup");
        assert_eq!(lookups.len(), 1);
        assert_eq!(lookups[0].attr("hit"), Some("true"));
    }

    #[test]
    fn configured_slos_surface_in_snapshot_and_prometheus() {
        let hub = TestHub::builder()
            .memo(false)
            .slo(dlhub_obs::SloSpec::new(
                "dlhub/noop",
                Duration::from_secs(5),
            ))
            .build();
        hub.service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        let snap = hub.service.metrics_snapshot();
        assert_eq!(snap.slos.len(), 1);
        let slo = &snap.slos[0];
        assert_eq!(slo.servable, "dlhub/noop");
        assert_eq!(slo.observed, 1);
        assert!(!slo.firing);
        let prom = hub.service.render_prometheus();
        assert!(prom.contains("dlhub_slo_firing{servable=\"dlhub/noop\"} 0"));
        assert!(prom.contains("dlhub_slo_burn_rate{servable=\"dlhub/noop\""));
    }

    #[test]
    fn analyze_trace_partitions_a_real_request_exactly() {
        let hub = TestHub::builder().memo(false).build();
        let result = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        let analysis = hub.service.analyze_trace(result.trace).expect("analysis");
        assert!(analysis.complete);
        assert_eq!(analysis.kind, "request");
        assert_eq!(analysis.stage_sum(), analysis.total_ns);
        assert!(hub.service.analyze_trace(0xdead_beef).is_none());
    }

    #[test]
    fn metrics_delta_partitions_the_counter_history() {
        let hub = TestHub::builder().memo(false).build();
        hub.service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        let counter = |snap: &MetricsSnapshot, name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let first = hub.service.metrics_delta();
        assert_eq!(counter(&first, "tm_tasks_total"), 1);
        // Nothing happened since: the next window is empty.
        let quiet = hub.service.metrics_delta();
        assert_eq!(counter(&quiet, "tm_tasks_total"), 0);
        hub.service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        hub.service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        // The delta reports only the new window, not the running total.
        let next = hub.service.metrics_delta();
        assert_eq!(counter(&next, "tm_tasks_total"), 2);
    }

    #[test]
    fn profiler_knob_samples_the_serving_path() {
        let hub = TestHub::builder()
            .memo(false)
            .config(ServingConfig {
                profile_hz: 199,
                ..ServingConfig::default()
            })
            .build();
        for i in 0..20 {
            hub.service
                .run(&hub.token, "dlhub/noop", Value::Int(i))
                .unwrap();
        }
        // The sampler collects on its own clock; give it a few periods.
        std::thread::sleep(Duration::from_millis(60));
        let report = hub.service.profile_report().expect("profiler enabled");
        assert!(report.total_samples > 0, "sampler never ticked");
        // Per-thread counts must sum to the sampler's own total.
        let per_thread: u64 = report.threads.iter().map(|t| t.samples).sum();
        assert_eq!(per_thread, report.total_samples);
        // Default config never enables the profiler.
        let plain = TestHub::builder().memo(false).build();
        assert!(plain.service.profile_report().is_none());
    }

    #[test]
    fn terminal_task_failure_freezes_a_flight_bundle() {
        let hub = TestHub::builder()
            .without_eval_servables()
            .memo(false)
            .config(ServingConfig {
                recorder_capacity: 4,
                ..ServingConfig::default()
            })
            .build();
        hub.publish_simple(
            "boom",
            ModelType::PythonFunction,
            servable_fn(|_| Err("exploded".into())),
        );
        let handle = hub
            .service
            .run_async(&hub.token, "dlhub/boom", Value::Null)
            .unwrap();
        assert!(matches!(
            handle.wait(Duration::from_secs(5)),
            TaskStatus::Failed { .. }
        ));
        let bundles = hub.service.flight_bundles();
        assert_eq!(bundles.len(), 1);
        let bundle = &bundles[0];
        assert_eq!(bundle.trigger.kind(), "task_failed");
        assert!(bundle.trigger.summary().contains("dlhub/boom"));
        assert!(hub.service.flight_bundle(bundle.id).is_some());
        // A successful async run does not freeze anything further.
        hub.publish_simple(
            "fine",
            ModelType::PythonFunction,
            servable_fn(|v| Ok(v.clone())),
        );
        let ok = hub
            .service
            .run_async(&hub.token, "dlhub/fine", Value::Null)
            .unwrap();
        assert!(matches!(
            ok.wait(Duration::from_secs(5)),
            TaskStatus::Completed(_)
        ));
        assert_eq!(hub.service.flight_bundles().len(), 1);
    }

    #[test]
    fn republish_invalidates_memo() {
        let hub = TestHub::builder().memo(true).build();
        hub.publish_simple(
            "v",
            ModelType::PythonFunction,
            servable_fn(|_| Ok(Value::Int(1))),
        );
        let r1 = hub.service.run(&hub.token, "dlhub/v", Value::Null).unwrap();
        assert_eq!(r1.value, Value::Int(1));
        hub.publish_simple(
            "v",
            ModelType::PythonFunction,
            servable_fn(|_| Ok(Value::Int(2))),
        );
        let r2 = hub.service.run(&hub.token, "dlhub/v", Value::Null).unwrap();
        assert_eq!(r2.value, Value::Int(2), "stale memo entry served");
    }
}
