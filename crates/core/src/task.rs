//! Task wire protocol and the async task table.
//!
//! The Management Service "packages up the request and posts it to a
//! ZeroMQ queue"; in asynchronous mode it "returns a unique task UUID
//! that can be used subsequently to monitor the status of the task and
//! retrieve its result" (§IV-A).

use crate::value::{self, Value};
use bytes::Bytes;
use dlhub_obs::TraceContext;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A task sent from the Management Service to a Task Manager. Batched
/// requests carry several inputs for one servable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// Unique task id (the paper's task UUID).
    pub task_id: String,
    /// Target servable id (`owner/name`).
    pub servable: String,
    /// One or more inputs (|inputs| > 1 means a coalesced batch).
    pub inputs: Vec<Value>,
    /// Trace context propagated from the Management Service so the
    /// Task Manager can parent its invocation span. Absent on the wire
    /// for untraced requests and for envelopes from older senders
    /// (a missing field deserializes to `None`).
    pub trace: Option<TraceContext>,
}

/// The Task Manager's reply, carrying outputs plus the timings it
/// measured locally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResponse {
    /// Echoed task id.
    pub task_id: String,
    /// Outputs (one per input) or the execution error.
    pub outcome: Result<Vec<Value>, String>,
    /// Per-input inference times in nanoseconds, measured at the
    /// servable.
    pub inference_nanos: Vec<u64>,
    /// Executor round-trip time in nanoseconds, measured at the TM.
    pub invocation_nanos: u64,
}

/// First byte of the binary wire format. Distinct from `{` (0x7B), the
/// first byte of every JSON envelope, so [`TaskRequest::from_bytes`]
/// can sniff the format and keep accepting JSON from older senders.
const WIRE_MAGIC: u8 = 0xD1;
/// Wire format version.
const WIRE_VERSION: u8 = 2;
/// Message-type tags following the magic/version header.
const WIRE_REQUEST: u8 = 1;
const WIRE_RESPONSE: u8 = 2;

fn encode_str(out: &mut Vec<u8>, s: &str) {
    value::encode_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(cur: &mut &[u8]) -> Result<String, String> {
    let len = value::decode_len(cur)?;
    std::str::from_utf8(value::take(cur, len)?)
        .map(str::to_string)
        .map_err(|e| format!("invalid utf-8: {e}"))
}

/// Check the 3-byte header and return the remaining body, or `None`
/// when the payload is not binary wire format (JSON fallback).
fn strip_header(bytes: &[u8], msg_type: u8) -> Result<Option<&[u8]>, String> {
    match bytes {
        [WIRE_MAGIC, version, tag, body @ ..] => {
            if *version != WIRE_VERSION {
                return Err(format!("unsupported wire version {version}"));
            }
            if *tag != msg_type {
                return Err(format!("unexpected message type {tag}"));
            }
            Ok(Some(body))
        }
        _ => Ok(None),
    }
}

impl TaskRequest {
    /// Serialize for the broker: compact binary format, written once
    /// into a refcounted [`Bytes`] slab that every later hop (broker
    /// queue, lease record, RPC retry) shares by reference.
    pub fn to_bytes(&self) -> Bytes {
        let mut out =
            Vec::with_capacity(64 + self.inputs.iter().map(Value::approx_size).sum::<usize>());
        out.extend_from_slice(&[WIRE_MAGIC, WIRE_VERSION, WIRE_REQUEST]);
        encode_str(&mut out, &self.task_id);
        encode_str(&mut out, &self.servable);
        match &self.trace {
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&t.trace.to_le_bytes());
                out.extend_from_slice(&t.span.to_le_bytes());
            }
            None => out.push(0),
        }
        value::encode_len(&mut out, self.inputs.len());
        for input in &self.inputs {
            input.encode_into(&mut out);
        }
        Bytes::from(out)
    }

    /// Deserialize from the broker. Accepts the binary format and, for
    /// compatibility with older senders, JSON envelopes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let err = |e| format!("malformed task request: {e}");
        let Some(mut body) = strip_header(bytes, WIRE_REQUEST).map_err(err)? else {
            return serde_json::from_slice(bytes).map_err(|e| err(e.to_string()));
        };
        let cur = &mut body;
        let task_id = decode_str(cur).map_err(err)?;
        let servable = decode_str(cur).map_err(err)?;
        let trace = match value::take(cur, 1).map_err(err)?[0] {
            0 => None,
            _ => Some(TraceContext {
                trace: u64::from_le_bytes(value::take_array(cur).map_err(err)?),
                span: u64::from_le_bytes(value::take_array(cur).map_err(err)?),
            }),
        };
        let count = value::decode_len(cur).map_err(err)?;
        let mut inputs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            inputs.push(Value::decode_from(cur).map_err(err)?);
        }
        Ok(TaskRequest {
            task_id,
            servable,
            inputs,
            trace,
        })
    }
}

impl TaskResponse {
    /// Serialize for the broker (binary wire format, see
    /// [`TaskRequest::to_bytes`]).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&[WIRE_MAGIC, WIRE_VERSION, WIRE_RESPONSE]);
        encode_str(&mut out, &self.task_id);
        match &self.outcome {
            Ok(values) => {
                out.push(0);
                value::encode_len(&mut out, values.len());
                for v in values {
                    v.encode_into(&mut out);
                }
            }
            Err(e) => {
                out.push(1);
                encode_str(&mut out, e);
            }
        }
        value::encode_len(&mut out, self.inference_nanos.len());
        for n in &self.inference_nanos {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out.extend_from_slice(&self.invocation_nanos.to_le_bytes());
        Bytes::from(out)
    }

    /// Deserialize from the broker. Accepts the binary format and, for
    /// compatibility with older senders, JSON envelopes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let err = |e| format!("malformed task response: {e}");
        let Some(mut body) = strip_header(bytes, WIRE_RESPONSE).map_err(err)? else {
            return serde_json::from_slice(bytes).map_err(|e| err(e.to_string()));
        };
        let cur = &mut body;
        let task_id = decode_str(cur).map_err(err)?;
        let outcome = match value::take(cur, 1).map_err(err)?[0] {
            0 => {
                let count = value::decode_len(cur).map_err(err)?;
                let mut values = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    values.push(Value::decode_from(cur).map_err(err)?);
                }
                Ok(values)
            }
            _ => Err(decode_str(cur).map_err(err)?),
        };
        let count = value::decode_len(cur).map_err(err)?;
        let mut inference_nanos = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            inference_nanos.push(u64::from_le_bytes(value::take_array(cur).map_err(err)?));
        }
        let invocation_nanos = u64::from_le_bytes(value::take_array(cur).map_err(err)?);
        Ok(TaskResponse {
            task_id,
            outcome,
            inference_nanos,
            invocation_nanos,
        })
    }
}

/// Allocate a fresh task id.
pub fn next_task_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    format!("task-{:08x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Lifecycle of an asynchronous task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskStatus {
    /// Accepted, not yet finished.
    Pending,
    /// Finished successfully.
    Completed(Value),
    /// Terminal failure: every dispatch attempt failed. `attempts`
    /// counts them (1 for a non-retryable error) so a client can tell
    /// "failed fast" from "retried to exhaustion".
    Failed {
        /// Dispatch attempts made before the task was declared failed.
        attempts: u32,
        /// The final attempt's error.
        last_error: String,
    },
}

impl TaskStatus {
    /// Shorthand for a single-attempt failure.
    pub fn failed(last_error: impl Into<String>) -> Self {
        TaskStatus::Failed {
            attempts: 1,
            last_error: last_error.into(),
        }
    }
}

/// Tombstones kept for forgotten tasks, so `was_forgotten` can
/// distinguish "expired" from "never existed".
const TOMBSTONE_CAPACITY: usize = 1024;

struct TableState {
    tasks: HashMap<String, TaskStatus>,
    /// Recently forgotten ids, oldest first, bounded by
    /// `TOMBSTONE_CAPACITY`.
    expired: VecDeque<String>,
}

/// Shared task-status table backing async handles.
pub struct TaskTable {
    state: Mutex<TableState>,
    cv: Condvar,
}

impl TaskTable {
    /// Empty table.
    pub fn new() -> Arc<Self> {
        Arc::new(TaskTable {
            state: Mutex::new(TableState {
                tasks: HashMap::new(),
                expired: VecDeque::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Register a pending task.
    pub fn register(&self, id: &str) {
        self.state
            .lock()
            .tasks
            .insert(id.to_string(), TaskStatus::Pending);
    }

    /// Resolve a task and wake waiters.
    pub fn resolve(&self, id: &str, status: TaskStatus) {
        self.state.lock().tasks.insert(id.to_string(), status);
        self.cv.notify_all();
    }

    /// Poll current status.
    pub fn status(&self, id: &str) -> Option<TaskStatus> {
        self.state.lock().tasks.get(id).cloned()
    }

    /// Block until the task leaves `Pending` or the timeout elapses.
    pub fn wait(&self, id: &str, timeout: Duration) -> Option<TaskStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            match st.tasks.get(id) {
                Some(TaskStatus::Pending) => {}
                Some(done) => return Some(done.clone()),
                None => return None,
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return st.tasks.get(id).cloned();
            }
        }
    }

    /// Remove a finished task's record (housekeeping), leaving a
    /// bounded tombstone so later status queries can report "expired"
    /// rather than "never existed".
    pub fn forget(&self, id: &str) {
        let mut st = self.state.lock();
        if st.tasks.remove(id).is_some() && !st.expired.iter().any(|e| e == id) {
            if st.expired.len() == TOMBSTONE_CAPACITY {
                st.expired.pop_front();
            }
            st.expired.push_back(id.to_string());
        }
    }

    /// Whether the id belonged to a task that was since forgotten.
    /// Best-effort: tombstones are bounded, so very old ids may fall
    /// back to "never existed".
    pub fn was_forgotten(&self, id: &str) -> bool {
        self.state.lock().expired.iter().any(|e| e == id)
    }
}

/// Handle to an asynchronous task ("a unique task UUID that can be
/// used subsequently to monitor the status of the task and retrieve
/// its result", §IV-A).
#[derive(Clone)]
pub struct TaskHandle {
    /// The task UUID.
    pub id: String,
    table: Arc<TaskTable>,
}

impl TaskHandle {
    /// Construct over a shared table.
    pub fn new(id: String, table: Arc<TaskTable>) -> Self {
        TaskHandle { id, table }
    }

    /// Current status.
    pub fn status(&self) -> TaskStatus {
        self.table
            .status(&self.id)
            .unwrap_or_else(|| TaskStatus::failed(format!("unknown task {}", self.id)))
    }

    /// Block until the task finishes or the timeout elapses.
    pub fn wait(&self, timeout: Duration) -> TaskStatus {
        self.table
            .wait(&self.id, timeout)
            .unwrap_or_else(|| TaskStatus::failed(format!("unknown task {}", self.id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn request_round_trips() {
        let req = TaskRequest {
            task_id: next_task_id(),
            servable: "logan/noop".into(),
            inputs: vec![Value::Null, Value::Int(2)],
            trace: Some(TraceContext {
                trace: 11,
                span: 12,
            }),
        };
        let back = TaskRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(back, req);
        assert!(TaskRequest::from_bytes(b"not json").is_err());
    }

    #[test]
    fn request_without_trace_field_deserializes_to_none() {
        // Envelope from a sender predating trace propagation.
        let wire = br#"{"task_id":"t1","servable":"a/b","inputs":[]}"#;
        let req = TaskRequest::from_bytes(wire).unwrap();
        assert_eq!(req.trace, None);
        assert_eq!(req.servable, "a/b");
    }

    #[test]
    fn wire_format_is_binary_with_json_fallback() {
        let req = TaskRequest {
            task_id: "t-wire".into(),
            servable: "a/b".into(),
            inputs: vec![Value::Tensor {
                shape: vec![3],
                data: vec![1.0, 2.0, 3.0],
            }],
            trace: None,
        };
        let wire = req.to_bytes();
        assert_eq!(
            wire[0],
            super::WIRE_MAGIC,
            "binary envelopes lead with the magic byte"
        );
        assert_eq!(TaskRequest::from_bytes(&wire).unwrap(), req);
        // A JSON envelope of the same request still decodes.
        let json = serde_json::to_vec(&req).unwrap();
        assert_eq!(json[0], b'{');
        assert_eq!(TaskRequest::from_bytes(&json).unwrap(), req);
        // Truncated binary payloads fail with the typed prefix.
        let err = TaskRequest::from_bytes(&wire[..wire.len() - 3]).unwrap_err();
        assert!(err.starts_with("malformed task request"), "{err}");
    }

    #[test]
    fn response_round_trips_including_errors() {
        let ok = TaskResponse {
            task_id: "t".into(),
            outcome: Ok(vec![Value::Str("hi".into())]),
            inference_nanos: vec![123],
            invocation_nanos: 456,
        };
        assert_eq!(TaskResponse::from_bytes(&ok.to_bytes()).unwrap(), ok);
        let err = TaskResponse {
            task_id: "t".into(),
            outcome: Err("boom".into()),
            inference_nanos: vec![],
            invocation_nanos: 1,
        };
        assert_eq!(TaskResponse::from_bytes(&err.to_bytes()).unwrap(), err);
    }

    #[test]
    fn task_ids_are_unique() {
        assert_ne!(next_task_id(), next_task_id());
    }

    #[test]
    fn table_register_resolve_poll() {
        let table = TaskTable::new();
        table.register("t1");
        assert_eq!(table.status("t1"), Some(TaskStatus::Pending));
        table.resolve("t1", TaskStatus::Completed(Value::Int(1)));
        assert_eq!(
            table.status("t1"),
            Some(TaskStatus::Completed(Value::Int(1)))
        );
        table.forget("t1");
        assert_eq!(table.status("t1"), None);
    }

    #[test]
    fn forget_leaves_a_tombstone_but_unknown_ids_have_none() {
        let table = TaskTable::new();
        table.register("t1");
        table.resolve("t1", TaskStatus::Completed(Value::Int(1)));
        table.forget("t1");
        assert!(table.was_forgotten("t1"));
        assert!(!table.was_forgotten("never-registered"));
        // Forgetting an id that was never registered leaves no trace.
        table.forget("ghost");
        assert!(!table.was_forgotten("ghost"));
    }

    #[test]
    fn tombstones_are_bounded() {
        let table = TaskTable::new();
        for i in 0..(TOMBSTONE_CAPACITY + 10) {
            let id = format!("t{i}");
            table.register(&id);
            table.forget(&id);
        }
        assert!(!table.was_forgotten("t0"));
        assert!(table.was_forgotten(&format!("t{}", TOMBSTONE_CAPACITY + 9)));
    }

    #[test]
    fn handle_wait_blocks_until_resolution() {
        let table = TaskTable::new();
        table.register("t");
        let handle = TaskHandle::new("t".into(), Arc::clone(&table));
        let t2 = Arc::clone(&table);
        let waiter = thread::spawn(move || handle.wait(Duration::from_secs(2)));
        thread::sleep(Duration::from_millis(20));
        t2.resolve("t", TaskStatus::Completed(Value::Bool(true)));
        assert_eq!(
            waiter.join().unwrap(),
            TaskStatus::Completed(Value::Bool(true))
        );
    }

    #[test]
    fn wait_times_out_to_pending() {
        let table = TaskTable::new();
        table.register("t");
        let handle = TaskHandle::new("t".into(), Arc::clone(&table));
        assert_eq!(handle.wait(Duration::from_millis(20)), TaskStatus::Pending);
    }

    #[test]
    fn unknown_task_reports_failure() {
        let table = TaskTable::new();
        let handle = TaskHandle::new("ghost".into(), table);
        assert!(matches!(handle.status(), TaskStatus::Failed { .. }));
    }
}
