//! The Task Manager (§IV-B).
//!
//! "Any compute resource on which DLHub is to execute tasks must be
//! preconfigured with DLHub Task Manager software. The Task Manager is
//! responsible for monitoring the DLHub task queue(s) and then
//! executing waiting tasks … routing tasks to appropriate servables.
//! When a Task Manager is first deployed it registers itself with the
//! Management Service and specifies which executors … it can launch."

use crate::executor::Executor;
use crate::repository::Repository;
use crate::task::{TaskRequest, TaskResponse};
use dlhub_fault::{site, FaultHandle, FaultKind};
use dlhub_obs::Obs;
use dlhub_queue::{Broker, RpcServer, ServeOutcome};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Topic on which Task Managers announce themselves.
pub const REGISTRATION_TOPIC: &str = "dlhub.tm.registration";

/// A Task Manager's self-description, sent at startup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TmRegistration {
    /// Task Manager name (e.g. `cooley-tm-0`).
    pub name: String,
    /// Executor names it can launch.
    pub executors: Vec<String>,
}

/// A running Task Manager: a pool of consumer threads pulling tasks
/// from the broker and routing them to executors.
pub struct TaskManager {
    name: String,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

impl TaskManager {
    /// Start a Task Manager consuming `task_topic`.
    ///
    /// `executors` are tried in order; the first whose
    /// [`Executor::supports`] accepts the servable's model type gets
    /// the task (inference tasks to serving executors, everything else
    /// to the general Parsl executor, §IV-C). `consumers` is the
    /// number of concurrent queue-consumer threads (the TM is
    /// multi-threaded, §V-B).
    pub fn start(
        name: &str,
        broker: &Broker,
        task_topic: &str,
        repository: Arc<Repository>,
        executors: Vec<Arc<dyn Executor>>,
        consumers: usize,
    ) -> Self {
        Self::start_with_obs(
            name,
            broker,
            task_topic,
            repository,
            executors,
            consumers,
            Obs::new(),
        )
    }

    /// [`TaskManager::start_with_obs`] with a fault-injection schedule:
    /// when the [`dlhub_fault::site::TM_CRASH`] site fires, the consumer
    /// abandons the leased task mid-flight without acking or replying —
    /// exactly what a Task Manager process crash looks like to the rest
    /// of the system. The broker's lease expiry then redelivers the
    /// task to a surviving consumer.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_faults(
        name: &str,
        broker: &Broker,
        task_topic: &str,
        repository: Arc<Repository>,
        executors: Vec<Arc<dyn Executor>>,
        consumers: usize,
        obs: Obs,
        faults: FaultHandle,
    ) -> Self {
        Self::start_inner(
            name, broker, task_topic, repository, executors, consumers, obs, faults,
        )
    }

    /// [`TaskManager::start`] recording into a shared observability
    /// handle: the TM's consumer threads record `invocation` spans
    /// (parented under the requester's propagated context), executors
    /// record `inference` spans, and `tm_tasks_total` counts handled
    /// tasks. Deployments pass the same handle to the Management
    /// Service so one trace spans all tiers.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_obs(
        name: &str,
        broker: &Broker,
        task_topic: &str,
        repository: Arc<Repository>,
        executors: Vec<Arc<dyn Executor>>,
        consumers: usize,
        obs: Obs,
    ) -> Self {
        Self::start_inner(
            name,
            broker,
            task_topic,
            repository,
            executors,
            consumers,
            obs,
            FaultHandle::default(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn start_inner(
        name: &str,
        broker: &Broker,
        task_topic: &str,
        repository: Arc<Repository>,
        executors: Vec<Arc<dyn Executor>>,
        consumers: usize,
        obs: Obs,
        faults: FaultHandle,
    ) -> Self {
        assert!(!executors.is_empty(), "task manager needs an executor");
        // Register with the Management Service (§IV-B).
        broker.ensure_topic(REGISTRATION_TOPIC);
        let registration = TmRegistration {
            name: name.to_string(),
            executors: executors.iter().map(|e| e.name().to_string()).collect(),
        };
        let _ = broker.send(
            REGISTRATION_TOPIC,
            bytes::Bytes::from(serde_json::to_vec(&registration).expect("registration json")),
        );

        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let threads = (0..consumers.max(1))
            .map(|i| {
                let server = RpcServer::bind(broker, task_topic);
                let repository = Arc::clone(&repository);
                let executors = executors.clone();
                let shutdown = Arc::clone(&shutdown);
                let served = Arc::clone(&served);
                let obs = obs.clone();
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("tm-{name}-{i}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Relaxed) {
                            let handled = server.serve_one_with_meta(
                                Duration::from_millis(50),
                                |req, info| {
                                    // A simulated process crash: the leased
                                    // task is dropped unsettled — no ack, no
                                    // reply — and comes back via lease
                                    // expiry on a surviving consumer.
                                    if let Some(fault) = faults.decide(site::TM_CRASH) {
                                        // Slow/Hang crashes die mid-task,
                                        // holding the lease for a while.
                                        if matches!(fault.kind, FaultKind::Slow | FaultKind::Hang) {
                                            std::thread::sleep(fault.delay);
                                        }
                                        obs.metrics.counter("tm_crashes_injected_total").inc();
                                        return ServeOutcome::Abandon;
                                    }
                                    ServeOutcome::Reply(
                                        handle(&repository, &executors, req, &obs, Some(info))
                                            .to_bytes(),
                                    )
                                },
                            );
                            match handled {
                                Ok(true) => {
                                    served.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(false) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn tm consumer")
            })
            .collect();
        TaskManager {
            name: name.to_string(),
            shutdown,
            threads,
            served,
        }
    }

    /// The Task Manager's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tasks served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop consumer threads and wait for them.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TaskManager {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Handle one task: resolve the servable, route to an executor,
/// measure the invocation, and build the response. Never panics — all
/// failures become error responses so the requester is always
/// answered. Traced requests (those carrying a `TraceContext`) get an
/// `invocation` span parented under the requester's span, with the
/// executor recording `inference` spans beneath it.
fn handle(
    repository: &Repository,
    executors: &[Arc<dyn Executor>],
    raw: &bytes::Bytes,
    obs: &Obs,
    info: Option<&dlhub_queue::RequestInfo>,
) -> TaskResponse {
    let _frame = obs.profile.frame("tm.handle");
    let request = match TaskRequest::from_bytes(raw) {
        Ok(r) => r,
        Err(e) => {
            return TaskResponse {
                task_id: "unknown".into(),
                outcome: Err(e),
                inference_nanos: vec![],
                invocation_nanos: 0,
            }
        }
    };
    let mut span = request
        .trace
        .map(|p| obs.tracer.start_child(p, "invocation"));
    if let Some(s) = span.as_mut() {
        s.attr("servable", request.servable.clone());
        s.attr("batch", request.inputs.len().to_string());
        // Broker-side queue accounting, so critical-path analysis can
        // report how long the task sat in the queue before this hop.
        if let Some(info) = info {
            s.attr("queue_wait_ns", info.queue_wait.as_nanos().to_string());
            s.attr("delivery_attempts", info.attempts.to_string());
            // Redelivered tasks had `enqueued_at` re-stamped by the
            // broker, so `queue_wait_ns` covers only the latest
            // residency; flag them so attribution tooling knows the
            // earlier residencies live on the prior delivery's span.
            s.attr("redelivered", (info.attempts > 1).to_string());
        }
    }
    let ctx = span.as_ref().map(|s| s.ctx());
    let response = handle_request(repository, executors, request, obs, ctx);
    obs.metrics.counter("tm_tasks_total").inc();
    if let Some(mut s) = span {
        if let Err(e) = &response.outcome {
            s.attr("error", e.clone());
        }
        obs.tracer.finish(s);
    }
    response
}

fn handle_request(
    repository: &Repository,
    executors: &[Arc<dyn Executor>],
    request: TaskRequest,
    obs: &Obs,
    ctx: Option<dlhub_obs::TraceContext>,
) -> TaskResponse {
    let started = Instant::now();
    let (servable, metadata) = match repository.resolve_internal(&request.servable) {
        Ok(pair) => pair,
        Err(e) => {
            return TaskResponse {
                task_id: request.task_id,
                outcome: Err(e.to_string()),
                inference_nanos: vec![],
                invocation_nanos: started.elapsed().as_nanos() as u64,
            }
        }
    };
    let Some(executor) = executors.iter().find(|e| e.supports(metadata.model_type)) else {
        return TaskResponse {
            task_id: request.task_id,
            outcome: Err(format!(
                "no executor supports model type {}",
                metadata.model_type
            )),
            inference_nanos: vec![],
            invocation_nanos: started.elapsed().as_nanos() as u64,
        };
    };
    // Hand the decoded batch to the executor by shared ownership: the
    // inputs were materialized once by `TaskRequest::from_bytes` and
    // replica pools fan them out by refcount, never by deep clone.
    let outcome = executor.execute_shared(
        &request.servable,
        &servable,
        Arc::new(request.inputs),
        Some(obs),
        ctx,
    );
    let invocation_nanos = started.elapsed().as_nanos() as u64;
    match outcome {
        Ok((outputs, times)) => TaskResponse {
            task_id: request.task_id,
            outcome: Ok(outputs),
            inference_nanos: times.iter().map(|t| t.as_nanos() as u64).collect(),
            invocation_nanos,
        },
        Err(message) => TaskResponse {
            task_id: request.task_id,
            outcome: Err(message),
            inference_nanos: vec![],
            invocation_nanos,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ParslExecutor, TfServingExecutor};
    use crate::repository::{PublishVisibility, Repository, PUBLISH_SCOPE, SERVE_SCOPE};
    use crate::servable::builtins::NoopServable;
    use crate::servable::{servable_fn, ModelType, ServableMetadata};
    use crate::task::{next_task_id, TaskRequest};
    use crate::value::Value;
    use dlhub_auth::{AuthService, Scope};
    use dlhub_container::{Cluster, NodeSpec};
    use dlhub_queue::{Broker, BrokerConfig, RpcClient};
    use std::collections::BTreeMap;

    struct Fixture {
        broker: Broker,
        repo: Arc<Repository>,
        _tm: TaskManager,
        client: RpcClient,
    }

    fn fixture(executors: Vec<Arc<dyn Executor>>) -> Fixture {
        let auth = AuthService::new();
        auth.register_provider("p");
        let repo = Arc::new(Repository::new(auth.clone()));
        let user = auth.register_identity("p", "u").unwrap();
        let token = auth
            .issue_token(
                user,
                &[
                    Scope::new("dlhub", PUBLISH_SCOPE),
                    Scope::new("dlhub", SERVE_SCOPE),
                ],
            )
            .unwrap();
        repo.publish(
            &token,
            ServableMetadata::new("noop", "u@p", ModelType::PythonFunction),
            Arc::new(NoopServable),
            BTreeMap::new(),
            PublishVisibility::Public,
        )
        .unwrap();
        let mut m = ServableMetadata::new("fail", "u@p", ModelType::PythonFunction);
        m.description = "always fails".into();
        repo.publish(
            &token,
            m,
            servable_fn(|_| Err("synthetic failure".into())),
            BTreeMap::new(),
            PublishVisibility::Public,
        )
        .unwrap();
        let broker = Broker::new(BrokerConfig::default());
        let tm = TaskManager::start("test-tm", &broker, "tasks", Arc::clone(&repo), executors, 2);
        let client = RpcClient::connect(&broker, "tasks");
        Fixture {
            broker,
            repo,
            _tm: tm,
            client,
        }
    }

    fn parsl() -> Arc<dyn Executor> {
        Arc::new(ParslExecutor::new(
            Cluster::new(vec![NodeSpec::new("n0", 64_000, 65_536)]),
            2,
        ))
    }

    fn roundtrip(f: &Fixture, request: &TaskRequest) -> TaskResponse {
        let reply = f
            .client
            .call_wait(request.to_bytes(), Duration::from_secs(5))
            .unwrap();
        TaskResponse::from_bytes(&reply).unwrap()
    }

    #[test]
    fn serves_a_task_end_to_end() {
        let f = fixture(vec![parsl()]);
        let request = TaskRequest {
            task_id: next_task_id(),
            servable: "u/noop".into(),
            inputs: vec![Value::Null],
            trace: None,
        };
        let response = roundtrip(&f, &request);
        assert_eq!(response.task_id, request.task_id);
        assert_eq!(
            response.outcome.unwrap(),
            vec![Value::Str("hello world".into())]
        );
        assert_eq!(response.inference_nanos.len(), 1);
        assert!(response.invocation_nanos >= response.inference_nanos[0]);
    }

    #[test]
    fn unknown_servable_yields_error_response() {
        let f = fixture(vec![parsl()]);
        let request = TaskRequest {
            task_id: next_task_id(),
            servable: "ghost/model".into(),
            inputs: vec![Value::Null],
            trace: None,
        };
        let response = roundtrip(&f, &request);
        assert!(response.outcome.unwrap_err().contains("ghost/model"));
    }

    #[test]
    fn servable_failure_is_reported_not_fatal() {
        let f = fixture(vec![parsl()]);
        let request = TaskRequest {
            task_id: next_task_id(),
            servable: "u/fail".into(),
            inputs: vec![Value::Null],
            trace: None,
        };
        let response = roundtrip(&f, &request);
        assert_eq!(response.outcome.unwrap_err(), "synthetic failure");
        // The TM is still alive and serves the next task.
        let ok = roundtrip(
            &f,
            &TaskRequest {
                task_id: next_task_id(),
                servable: "u/noop".into(),
                inputs: vec![Value::Null],
                trace: None,
            },
        );
        assert!(ok.outcome.is_ok());
    }

    #[test]
    fn malformed_request_is_answered() {
        let f = fixture(vec![parsl()]);
        let reply = f
            .client
            .call_wait(
                bytes::Bytes::from_static(b"garbage"),
                Duration::from_secs(5),
            )
            .unwrap();
        let response = TaskResponse::from_bytes(&reply).unwrap();
        assert!(response.outcome.unwrap_err().contains("malformed"));
    }

    #[test]
    fn executor_routing_respects_model_type() {
        // Only a TF Serving executor: python functions have no home.
        let tfs: Arc<dyn Executor> = Arc::new(TfServingExecutor::new());
        let f = fixture(vec![tfs]);
        let response = roundtrip(
            &f,
            &TaskRequest {
                task_id: next_task_id(),
                servable: "u/noop".into(),
                inputs: vec![Value::Null],
                trace: None,
            },
        );
        assert!(response
            .outcome
            .unwrap_err()
            .contains("no executor supports"));
    }

    #[test]
    fn batch_requests_return_per_input_times() {
        let f = fixture(vec![parsl()]);
        let request = TaskRequest {
            task_id: next_task_id(),
            servable: "u/noop".into(),
            inputs: vec![Value::Null; 5],
            trace: None,
        };
        let response = roundtrip(&f, &request);
        assert_eq!(response.outcome.unwrap().len(), 5);
        assert_eq!(response.inference_nanos.len(), 5);
    }

    #[test]
    fn registration_is_announced() {
        let f = fixture(vec![parsl()]);
        let delivery = f
            .broker
            .recv_timeout(REGISTRATION_TOPIC, Duration::from_secs(1))
            .unwrap();
        let reg: TmRegistration = serde_json::from_slice(&delivery.message.payload).unwrap();
        delivery.ack();
        assert_eq!(reg.name, "test-tm");
        assert_eq!(reg.executors, vec!["parsl".to_string()]);
        // Keep repo alive for the fixture's lifetime.
        assert!(f.repo.all_ids().len() >= 2);
    }
}
