//! Typed payloads exchanged with servables.
//!
//! DLHub supports "structured [inputs and] files" (Table II) across
//! very different model types; [`Value`] is the common currency: it
//! serializes to JSON for the wire (the broker between Management
//! Service and Task Managers) and hashes canonically for memoization.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A self-describing value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absence of input/output.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Text (e.g. a composition string for `matminer util`).
    Str(String),
    /// Raw bytes (e.g. an image file).
    Bytes(Vec<u8>),
    /// A dense tensor: shape plus row-major data (image inputs,
    /// feature vectors, class probabilities).
    Tensor {
        /// Dimensions.
        shape: Vec<usize>,
        /// Row-major elements.
        data: Vec<f32>,
    },
    /// Ordered list of values (e.g. a batch, or top-5 categories).
    List(Vec<Value>),
    /// Free-form JSON (metadata-style payloads).
    Json(serde_json::Value),
}

impl Value {
    /// Wrap a [`dlhub_tensor::Tensor`].
    pub fn from_tensor(t: &dlhub_tensor::Tensor) -> Self {
        Value::Tensor {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }

    /// View as a [`dlhub_tensor::Tensor`], if this is a tensor value.
    pub fn to_tensor(&self) -> Option<dlhub_tensor::Tensor> {
        match self {
            Value::Tensor { shape, data } => {
                dlhub_tensor::Tensor::new(shape.clone(), data.clone()).ok()
            }
            _ => None,
        }
    }

    /// Borrow as a string, if text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow as a list, if a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (drives transfer-cost
    /// accounting and cache budgets).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 2,
            Value::Bytes(b) => b.len(),
            Value::Tensor { shape, data } => shape.len() * 8 + data.len() * 4,
            Value::List(items) => 2 + items.iter().map(Value::approx_size).sum::<usize>(),
            Value::Json(j) => j.to_string().len(),
        }
    }

    /// Append this value to `out` in the compact binary wire format
    /// (tag byte, then little-endian fixed-width scalars and
    /// length-prefixed variable data). Used by the task wire codec so
    /// tensors and byte blobs cross the broker without the base64 and
    /// digit-formatting cost of JSON.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                encode_len(out, s.len());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(5);
                encode_len(out, b.len());
                out.extend_from_slice(b);
            }
            Value::Tensor { shape, data } => {
                out.push(6);
                encode_len(out, shape.len());
                for d in shape {
                    out.extend_from_slice(&(*d as u64).to_le_bytes());
                }
                encode_len(out, data.len());
                for v in data {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Value::List(items) => {
                out.push(7);
                encode_len(out, items.len());
                for item in items {
                    item.encode_into(out);
                }
            }
            Value::Json(j) => {
                out.push(8);
                let s = j.to_string();
                encode_len(out, s.len());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Decode one value from the front of `cur`, advancing it past the
    /// consumed bytes. Inverse of [`Value::encode_into`].
    pub(crate) fn decode_from(cur: &mut &[u8]) -> Result<Value, String> {
        let tag = take(cur, 1)?[0];
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Bool(take(cur, 1)?[0] != 0),
            2 => Value::Int(i64::from_le_bytes(take_array(cur)?)),
            3 => Value::Float(f64::from_bits(u64::from_le_bytes(take_array(cur)?))),
            4 => {
                let len = decode_len(cur)?;
                let bytes = take(cur, len)?;
                Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|e| format!("invalid utf-8 in string value: {e}"))?
                        .to_string(),
                )
            }
            5 => {
                let len = decode_len(cur)?;
                Value::Bytes(take(cur, len)?.to_vec())
            }
            6 => {
                let dims = decode_len(cur)?;
                let mut shape = Vec::with_capacity(dims.min(64));
                for _ in 0..dims {
                    shape.push(u64::from_le_bytes(take_array(cur)?) as usize);
                }
                let count = decode_len(cur)?;
                let raw = take(cur, count.checked_mul(4).ok_or("tensor length overflow")?)?;
                let data = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
                Value::Tensor { shape, data }
            }
            7 => {
                let count = decode_len(cur)?;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(Value::decode_from(cur)?);
                }
                Value::List(items)
            }
            8 => {
                let len = decode_len(cur)?;
                let bytes = take(cur, len)?;
                let j = serde_json::from_slice(bytes)
                    .map_err(|e| format!("invalid embedded json value: {e}"))?;
                Value::Json(j)
            }
            other => return Err(format!("unknown value tag {other}")),
        })
    }

    /// Canonical 128-bit content hash, used as the memoization key
    /// (§V-B2: "caching the inputs and outputs for each request").
    pub fn content_hash(&self) -> (u64, u64) {
        let mut h = Hasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut Hasher) {
        match self {
            Value::Null => h.write(&[0]),
            Value::Bool(b) => {
                h.write(&[1, *b as u8]);
            }
            Value::Int(i) => {
                h.write(&[2]);
                h.write(&i.to_le_bytes());
            }
            Value::Float(f) => {
                h.write(&[3]);
                h.write(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                h.write(&[4]);
                h.write(s.as_bytes());
            }
            Value::Bytes(b) => {
                h.write(&[5]);
                h.write(b);
            }
            Value::Tensor { shape, data } => {
                h.write(&[6]);
                for d in shape {
                    h.write(&(*d as u64).to_le_bytes());
                }
                h.write(&[0xFF]);
                for v in data {
                    h.write(&v.to_bits().to_le_bytes());
                }
            }
            Value::List(items) => {
                h.write(&[7]);
                h.write(&(items.len() as u64).to_le_bytes());
                for item in items {
                    item.hash_into(h);
                }
            }
            Value::Json(j) => {
                h.write(&[8]);
                h.write(canonical_json(j).as_bytes());
            }
        }
    }
}

/// Length prefix: u32 little-endian, which bounds any single field at
/// 4 GiB — far beyond DLHub payloads.
pub(crate) fn encode_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

/// Read a u32 length prefix.
pub(crate) fn decode_len(cur: &mut &[u8]) -> Result<usize, String> {
    Ok(u32::from_le_bytes(take_array(cur)?) as usize)
}

/// Split `n` bytes off the front of the cursor.
pub(crate) fn take<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
    if cur.len() < n {
        return Err(format!(
            "truncated payload: needed {n} bytes, had {}",
            cur.len()
        ));
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

/// Split a fixed-size array off the front of the cursor.
pub(crate) fn take_array<const N: usize>(cur: &mut &[u8]) -> Result<[u8; N], String> {
    let mut buf = [0u8; N];
    buf.copy_from_slice(take(cur, N)?);
    Ok(buf)
}

/// Render JSON with sorted object keys so semantically equal documents
/// hash identically regardless of construction order.
fn canonical_json(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::Object(map) => {
            let mut keys: Vec<&String> = map.keys().collect();
            keys.sort();
            let inner: Vec<String> = keys
                .into_iter()
                .map(|k| {
                    format!(
                        "{}:{}",
                        serde_json::Value::from(k.clone()),
                        canonical_json(&map[k])
                    )
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        serde_json::Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(canonical_json).collect();
            format!("[{}]", inner.join(","))
        }
        leaf => leaf.to_string(),
    }
}

/// FNV-1a 128-ish (two independent 64-bit lanes).
struct Hasher {
    a: u64,
    b: u64,
}

impl Hasher {
    fn new() -> Self {
        Hasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a ^= byte as u64;
            self.a = self.a.wrapping_mul(0x0000_0100_0000_01B3);
            self.b = self.b.rotate_left(5) ^ (byte as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        }
    }
    fn finish(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Tensor { shape, .. } => write!(f, "<tensor {shape:?}>"),
            Value::List(items) => write!(f, "<list of {}>", items.len()),
            Value::Json(j) => write!(f, "{j}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde_json::json;

    #[test]
    fn tensor_round_trip() {
        let t = dlhub_tensor::Tensor::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let v = Value::from_tensor(&t);
        assert_eq!(v.to_tensor().unwrap(), t);
        assert!(Value::Null.to_tensor().is_none());
    }

    #[test]
    fn json_wire_round_trip() {
        let v = Value::List(vec![
            Value::Str("a".into()),
            Value::Int(3),
            Value::Tensor {
                shape: vec![2],
                data: vec![0.5, -0.5],
            },
        ]);
        let encoded = serde_json::to_string(&v).unwrap();
        let decoded: Value = serde_json::from_str(&encoded).unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn content_hash_distinguishes_types() {
        // Same bit patterns, different types, must not collide.
        assert_ne!(
            Value::Str("1".into()).content_hash(),
            Value::Int(1).content_hash()
        );
        assert_ne!(
            Value::Null.content_hash(),
            Value::Bool(false).content_hash()
        );
        assert_ne!(
            Value::Bytes(vec![65]).content_hash(),
            Value::Str("A".into()).content_hash()
        );
    }

    #[test]
    fn content_hash_sensitive_to_tensor_shape() {
        let a = Value::Tensor {
            shape: vec![2, 3],
            data: vec![0.0; 6],
        };
        let b = Value::Tensor {
            shape: vec![3, 2],
            data: vec![0.0; 6],
        };
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn json_hash_is_key_order_independent() {
        let a = Value::Json(json!({"x": 1, "y": [1, 2]}));
        let b = Value::Json(json!({"y": [1, 2], "x": 1}));
        assert_eq!(a.content_hash(), b.content_hash());
        let c = Value::Json(json!({"x": 2, "y": [1, 2]}));
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn approx_size_tracks_payload() {
        let small = Value::Str("hi".into());
        let big = Value::Tensor {
            shape: vec![100],
            data: vec![0.0; 100],
        };
        assert!(big.approx_size() > small.approx_size());
        assert_eq!(big.approx_size(), 8 + 400);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(
            Value::List(vec![Value::Null]).as_list().map(|l| l.len()),
            Some(1)
        );
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn binary_codec_round_trips_every_variant() {
        let v = Value::List(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(0.1 + 0.2), // not representable in short decimal
            Value::Str("composition: Fe2O3".into()),
            Value::Bytes(vec![0, 255, 128]),
            Value::Tensor {
                shape: vec![2, 2],
                data: vec![1.5, -2.5, 0.0, f32::MIN_POSITIVE],
            },
            Value::List(vec![Value::Int(1), Value::Str("nested".into())]),
            Value::Json(json!({"k": [1, 2], "s": "v"})),
        ]);
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        let mut cur = &buf[..];
        let back = Value::decode_from(&mut cur).unwrap();
        assert_eq!(back, v);
        assert!(
            cur.is_empty(),
            "decoder must consume exactly what was encoded"
        );
    }

    #[test]
    fn binary_codec_rejects_garbage() {
        let mut cur: &[u8] = &[250, 1, 2];
        assert!(Value::decode_from(&mut cur).is_err());
        let mut truncated: &[u8] = &[4, 10, 0, 0, 0, b'a'];
        assert!(Value::decode_from(&mut truncated).is_err());
    }

    proptest! {
        #[test]
        fn binary_codec_round_trips_floats_exactly(f in any::<f64>()) {
            // Bit-exact including NaN payloads and infinities — the
            // binary format carries raw f64 bits, unlike JSON.
            let mut buf = Vec::new();
            Value::Float(f).encode_into(&mut buf);
            let mut cur = &buf[..];
            match Value::decode_from(&mut cur).unwrap() {
                Value::Float(back) => prop_assert_eq!(back.to_bits(), f.to_bits()),
                other => prop_assert!(false, "wrong variant: {other}"),
            }
        }

        #[test]
        fn equal_values_hash_equal(s in "\\PC{0,32}", i in any::<i64>()) {
            let v1 = Value::List(vec![Value::Str(s.clone()), Value::Int(i)]);
            let v2 = Value::List(vec![Value::Str(s), Value::Int(i)]);
            prop_assert_eq!(v1.content_hash(), v2.content_hash());
        }

        #[test]
        fn distinct_ints_rarely_collide(a in any::<i64>(), b in any::<i64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(Value::Int(a).content_hash(), Value::Int(b).content_hash());
        }

        #[test]
        fn serde_round_trip_any_scalar(f in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
            // Exact f64 round-tripping relies on serde_json's
            // `float_roundtrip` feature (enabled in the workspace).
            let v = Value::Float(f);
            let s = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&s).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
