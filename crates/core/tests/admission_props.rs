//! Property tests for weighted fair admission.
//!
//! The weighted round-robin credit rule
//! (`accepted_i × Σw < (total + 1) × w_i`) promises two things for
//! *any* weight assignment, not just the hand-picked ones in the unit
//! tests:
//!
//! * under sustained contention with every tenant saturating the
//!   door, accepted shares converge to `w_i / Σw` within an epsilon
//!   that shrinks with the number of rounds;
//! * a zero-weight (hostile) tenant is always over its empty share —
//!   it is shed whenever the service is contended, never touches the
//!   ledger, and therefore cannot perturb anyone else's share no
//!   matter how hard or how often it bursts.

use dlhub_auth::IdentityId;
use dlhub_core::admission::{AdmissionConfig, AdmissionController};
use dlhub_core::DlhubError;
use proptest::prelude::*;

/// A controller that is always contended (fairness always engages)
/// and never hits the hard cap (permits are dropped immediately).
fn contended_controller(weights: &[u32]) -> AdmissionController {
    let mut config = AdmissionConfig {
        max_inflight: usize::MAX,
        fair_share_at: 0.0,
        ..AdmissionConfig::default()
    };
    for (i, w) in weights.iter().enumerate() {
        config.weights.insert(IdentityId(i as u64 + 1), *w);
    }
    AdmissionController::new(config)
}

/// Round-robin `rounds` saturated offers per tenant; returns accepted
/// counts by tenant index.
fn saturate(ctl: &AdmissionController, tenants: usize, rounds: u64) -> Vec<u64> {
    let mut accepted = vec![0u64; tenants];
    for round in 0..rounds {
        for (i, slot) in accepted.iter_mut().enumerate() {
            match ctl.admit(IdentityId(i as u64 + 1), false, round) {
                Ok(permit) => {
                    *slot += 1;
                    drop(permit);
                }
                Err(DlhubError::Overloaded { .. }) => {}
                Err(other) => panic!("untyped shed: {other:?}"),
            }
        }
    }
    accepted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With 2–5 tenants all saturating the door, each accepted share
    /// converges to its weight fraction.
    #[test]
    fn accepted_shares_converge_to_weight_fractions(
        weights in proptest::collection::vec(1u32..=5, 2..=5),
        rounds in 300u64..600,
    ) {
        let ctl = contended_controller(&weights);
        let accepted = saturate(&ctl, weights.len(), rounds);
        let total: u64 = accepted.iter().sum();
        prop_assert!(total > 0);
        let weight_sum: u32 = weights.iter().sum();
        for (i, w) in weights.iter().enumerate() {
            let share = accepted[i] as f64 / total as f64;
            let ideal = *w as f64 / weight_sum as f64;
            prop_assert!(
                (share - ideal).abs() < 0.05,
                "tenant {i}: share {share:.3} vs ideal {ideal:.3} \
                 (weights {weights:?}, accepted {accepted:?})"
            );
        }
    }

    /// Interleaving arbitrarily bursty zero-weight traffic changes
    /// nothing for the weighted tenants: the hostile tenant is shed on
    /// every contended attempt and the others' accepted counts are
    /// exactly what they would have been without it.
    #[test]
    fn zero_weight_bursts_never_starve_weighted_tenants(
        weights in proptest::collection::vec(1u32..=5, 2..=4),
        bursts in proptest::collection::vec(1u64..=25, 50..=150),
    ) {
        let tenants = weights.len();
        let hostile = IdentityId(99);

        // Baseline: the weighted tenants alone.
        let baseline_ctl = contended_controller(&weights);
        let baseline = saturate(&baseline_ctl, tenants, bursts.len() as u64);

        // Same offered sequence with hostile bursts injected before
        // every round.
        let mut config = AdmissionConfig {
            max_inflight: usize::MAX,
            fair_share_at: 0.0,
            ..AdmissionConfig::default()
        };
        for (i, w) in weights.iter().enumerate() {
            config.weights.insert(IdentityId(i as u64 + 1), *w);
        }
        config.weights.insert(hostile, 0);
        let ctl = AdmissionController::new(config);
        let mut accepted = vec![0u64; tenants];
        for (round, burst) in bursts.iter().enumerate() {
            for _ in 0..*burst {
                match ctl.admit(hostile, false, round as u64) {
                    Err(DlhubError::Overloaded { .. }) => {}
                    Err(other) => panic!("untyped shed: {other:?}"),
                    Ok(_) => panic!("zero weight admitted under contention"),
                }
            }
            for (i, slot) in accepted.iter_mut().enumerate() {
                if let Ok(permit) = ctl.admit(IdentityId(i as u64 + 1), false, round as u64) {
                    *slot += 1;
                    drop(permit);
                }
            }
        }
        prop_assert_eq!(
            accepted,
            baseline,
            "hostile bursts perturbed the weighted tenants"
        );
    }

    /// The inflight bound holds under any interleaving of admits and
    /// releases, and every slot is returned once its permit drops.
    #[test]
    fn inflight_never_exceeds_the_cap_and_drains(
        cap in 1usize..=16,
        attempts in 1usize..=200,
        release_every in 1usize..=8,
    ) {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: cap,
            fair_share_at: 1.0,
            ..AdmissionConfig::default()
        });
        let mut held = Vec::new();
        for i in 0..attempts {
            match ctl.admit(IdentityId(1), false, i as u64) {
                Ok(permit) => held.push(permit),
                Err(DlhubError::Overloaded { .. }) => {
                    prop_assert_eq!(ctl.inflight(), cap, "shed below the cap");
                }
                Err(other) => panic!("untyped shed: {other:?}"),
            }
            prop_assert!(ctl.inflight() <= cap);
            if i % release_every == 0 && !held.is_empty() {
                held.remove(0);
            }
        }
        drop(held);
        prop_assert_eq!(ctl.inflight(), 0, "permits leaked slots");
    }
}
