#![warn(missing_docs)]

//! # dlhub-fault
//!
//! Deterministic, seeded fault injection for the DLHub serving path.
//!
//! Production serving systems treat failure containment as a
//! first-class design axis (TensorFlow-Serving isolates model crashes;
//! DLHub's broker redelivers tasks leased by dead Task Managers). To
//! *test* that machinery, this crate provides a [`FaultPlan`]: a seeded
//! schedule of faults bound to **named sites** threaded through the
//! serving stack (replica execution, Task Manager intake, broker
//! send/recv, memo cache, batcher flush).
//!
//! The two properties the chaos suite depends on:
//!
//! * **Determinism** — whether the *n*-th arrival at a site faults is a
//!   pure function of `(seed, site, n, rule)`. The per-site arrival
//!   counter is atomic, so under a sequential workload the schedule is
//!   byte-identical across runs regardless of which thread reaches the
//!   site.
//! * **Zero cost when disabled** — a default [`FaultHandle`] is a
//!   `None`; every site check is one branch on an `Option`, with no
//!   allocation, hashing, or atomics.
//!
//! ```
//! use dlhub_fault::{site, FaultKind, FaultPlan, FaultSpec};
//!
//! let faults = FaultPlan::seeded(7)
//!     .inject(site::REPLICA, FaultSpec::new(FaultKind::Panic).probability(0.5))
//!     .build();
//! // Same seed, same site, same arrival index => same decision.
//! let a: Vec<bool> = (0..16).map(|_| faults.decide(site::REPLICA).is_some()).collect();
//! let again = FaultPlan::seeded(7)
//!     .inject(site::REPLICA, FaultSpec::new(FaultKind::Panic).probability(0.5))
//!     .build();
//! let b: Vec<bool> = (0..16).map(|_| again.decide(site::REPLICA).is_some()).collect();
//! assert_eq!(a, b);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Named injection sites threaded through the serving stack. Using
/// constants (rather than free strings) keeps the site catalog greppable
/// and the chaos tests honest about where faults can land.
pub mod site {
    /// A Parsl replica about to run a servable (`executor.rs`).
    pub const REPLICA: &str = "executor.replica";
    /// A Task Manager consumer about to handle a leased task
    /// (`task_manager.rs`). A `Crash` here abandons the delivery
    /// unsettled, modelling a TM killed mid-task.
    pub const TM_CRASH: &str = "task_manager.crash";
    /// Broker enqueue (`queue/broker.rs`). A `Drop` silently discards
    /// the message, modelling a lost publish.
    pub const BROKER_SEND: &str = "broker.send";
    /// Broker lease (`queue/broker.rs`). A `Drop` leases the message
    /// and abandons it, so the lease must expire before redelivery.
    pub const BROKER_RECV: &str = "broker.recv";
    /// Memo-cache lookup (`memo.rs` via `serving.rs`). `Slow` delays
    /// the lookup; `Error` forces a miss.
    pub const MEMO_GET: &str = "memo.get";
    /// Memo-cache insert. A `Drop` skips the insert.
    pub const MEMO_PUT: &str = "memo.put";
    /// Auto-batcher flush (`serving.rs`). An `Error` fails the whole
    /// coalesced dispatch.
    pub const BATCH_FLUSH: &str = "batch.flush";
}

/// What happens when a fault fires. Sites interpret the kinds they
/// understand and treat the rest as [`FaultKind::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Fail the operation with an injected error.
    Error,
    /// Panic inside the faulted component (replicas catch unwinds).
    Panic,
    /// Stall for the spec's delay — long enough to blow a deadline.
    Hang,
    /// Stall for the spec's delay, then proceed normally.
    Slow,
    /// Silently discard the operation's effect (a lost message, a
    /// skipped cache insert).
    Drop,
    /// Die mid-operation without acknowledging (Task Manager crash:
    /// the broker lease must expire before the task is redelivered).
    Crash,
}

/// One injection rule: a kind, a firing probability, and bounds on when
/// and how often it fires.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that an eligible arrival faults.
    pub probability: f64,
    /// Stall duration for `Hang`/`Slow` faults.
    pub delay: Duration,
    /// Fire at most this many times (`None` = unbounded).
    pub max: Option<u64>,
    /// Skip the first `after` arrivals at the site before becoming
    /// eligible (lets a workload warm up fault-free).
    pub after: u64,
}

impl FaultSpec {
    /// A rule firing on every eligible arrival (probability 1).
    pub fn new(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            probability: 1.0,
            delay: Duration::from_millis(50),
            max: None,
            after: 0,
        }
    }

    /// Set the firing probability (clamped to `[0, 1]`).
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Set the stall duration for `Hang`/`Slow`.
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Cap total firings.
    pub fn max(mut self, n: u64) -> Self {
        self.max = Some(n);
        self
    }

    /// Skip the first `n` arrivals.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }
}

/// A fired fault: what to do, and for how long (for stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The injected behavior.
    pub kind: FaultKind,
    /// Stall duration for `Hang`/`Slow`; zero otherwise meaningful.
    pub delay: Duration,
}

/// A record of one fired fault, kept for post-hoc assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The site that faulted.
    pub site: &'static str,
    /// Zero-based arrival index at the site when the fault fired.
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

struct SiteState {
    /// Arrivals at this site so far. The counter — not the calling
    /// thread — indexes the decision, which is what makes schedules
    /// reproducible under a sequential workload.
    seq: AtomicU64,
    rules: Vec<(FaultSpec, AtomicU64)>, // (rule, times fired)
}

struct Inner {
    seed: u64,
    sites: HashMap<&'static str, SiteState>,
    log: Mutex<Vec<Injection>>,
}

/// Builder for a seeded fault schedule.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(&'static str, FaultSpec)>,
}

impl FaultPlan {
    /// Start a plan; every probabilistic decision derives from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a rule at a named site (see [`site`]). Multiple rules per
    /// site are checked in insertion order; the first that fires wins.
    pub fn inject(mut self, site: &'static str, spec: FaultSpec) -> Self {
        self.rules.push((site, spec));
        self
    }

    /// Freeze the plan into a shareable handle.
    pub fn build(self) -> FaultHandle {
        let mut sites: HashMap<&'static str, SiteState> = HashMap::new();
        for (site, spec) in self.rules {
            sites
                .entry(site)
                .or_insert_with(|| SiteState {
                    seq: AtomicU64::new(0),
                    rules: Vec::new(),
                })
                .rules
                .push((spec, AtomicU64::new(0)));
        }
        FaultHandle(Some(Arc::new(Inner {
            seed: self.seed,
            sites,
            log: Mutex::new(Vec::new()),
        })))
    }
}

/// A shareable handle to a frozen fault schedule. The default handle is
/// *disabled*: every [`FaultHandle::decide`] is a single branch on a
/// `None`, so production configurations pay nothing.
#[derive(Clone, Default)]
pub struct FaultHandle(Option<Arc<Inner>>);

impl FaultHandle {
    /// The disabled handle (same as `FaultHandle::default()`).
    pub fn disabled() -> Self {
        FaultHandle(None)
    }

    /// Whether any schedule is attached.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Consult the schedule at a site. Returns `Some(fault)` when the
    /// site's next arrival should fault. Sites with no rules only pay
    /// one map lookup; a disabled handle pays one branch.
    #[inline]
    pub fn decide(&self, site: &'static str) -> Option<Fault> {
        let inner = self.0.as_ref()?;
        inner.decide(site)
    }

    /// Every fault fired so far, in firing order.
    pub fn injections(&self) -> Vec<Injection> {
        match &self.0 {
            Some(inner) => inner.log.lock().expect("fault log poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Number of faults fired at `site` so far.
    pub fn injected(&self, site: &str) -> u64 {
        self.injections().iter().filter(|i| i.site == site).count() as u64
    }

    /// Total arrivals observed at `site` (faulted or not).
    pub fn arrivals(&self, site: &str) -> u64 {
        match &self.0 {
            Some(inner) => inner
                .sites
                .get(site)
                .map_or(0, |s| s.seq.load(Ordering::Relaxed)),
            None => 0,
        }
    }
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => f
                .debug_struct("FaultHandle")
                .field("seed", &inner.seed)
                .field("sites", &inner.sites.keys().collect::<Vec<_>>())
                .finish(),
            None => f.write_str("FaultHandle(disabled)"),
        }
    }
}

impl Inner {
    fn decide(&self, site: &'static str) -> Option<Fault> {
        let state = self.sites.get(site)?;
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        for (index, (spec, fired)) in state.rules.iter().enumerate() {
            if seq < spec.after {
                continue;
            }
            if let Some(max) = spec.max {
                if fired.load(Ordering::Relaxed) >= max {
                    continue;
                }
            }
            let roll = unit_interval(mix(
                self.seed,
                fnv1a(site.as_bytes()) ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                seq,
            ));
            if roll < spec.probability {
                if let Some(max) = spec.max {
                    // A racing firing may overshoot `max` by the number
                    // of concurrent arrivals; sequential workloads (the
                    // determinism contract) never do.
                    if fired.fetch_add(1, Ordering::Relaxed) >= max {
                        continue;
                    }
                } else {
                    fired.fetch_add(1, Ordering::Relaxed);
                }
                self.log
                    .lock()
                    .expect("fault log poisoned")
                    .push(Injection {
                        site,
                        seq,
                        kind: spec.kind,
                    });
                return Some(Fault {
                    kind: spec.kind,
                    delay: spec.delay,
                });
            }
        }
        None
    }
}

/// FNV-1a over the site name: stable across runs and platforms (unlike
/// `DefaultHasher`, which is seeded per-process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64-style finalizer over (seed, site/rule, arrival index).
fn mix(seed: u64, salt: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt)
        .wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` using the top 53 bits.
fn unit_interval(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, p: f64) -> FaultHandle {
        FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Error).probability(p),
            )
            .build()
    }

    #[test]
    fn disabled_handle_never_faults() {
        let h = FaultHandle::default();
        assert!(!h.enabled());
        for _ in 0..100 {
            assert_eq!(h.decide(site::REPLICA), None);
        }
        assert!(h.injections().is_empty());
        assert_eq!(h.arrivals(site::REPLICA), 0);
    }

    #[test]
    fn unconfigured_site_never_faults_but_rules_fire() {
        let h = plan(1, 1.0);
        assert_eq!(h.decide(site::BROKER_SEND), None);
        let fault = h.decide(site::REPLICA).expect("p=1 must fire");
        assert_eq!(fault.kind, FaultKind::Error);
        assert_eq!(h.injected(site::REPLICA), 1);
        assert_eq!(h.arrivals(site::REPLICA), 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        for seed in [0u64, 7, 1848, 3141, u64::MAX] {
            let a: Vec<bool> = {
                let h = plan(seed, 0.3);
                (0..200)
                    .map(|_| h.decide(site::REPLICA).is_some())
                    .collect()
            };
            let b: Vec<bool> = {
                let h = plan(seed, 0.3);
                (0..200)
                    .map(|_| h.decide(site::REPLICA).is_some())
                    .collect()
            };
            assert_eq!(a, b, "seed {seed} schedule diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<bool> = {
            let h = plan(7, 0.5);
            (0..64).map(|_| h.decide(site::REPLICA).is_some()).collect()
        };
        let b: Vec<bool> = {
            let h = plan(8, 0.5);
            (0..64).map(|_| h.decide(site::REPLICA).is_some()).collect()
        };
        assert_ne!(
            a, b,
            "seeds 7 and 8 produced identical 64-arrival schedules"
        );
    }

    #[test]
    fn probability_is_roughly_honored() {
        let h = plan(42, 0.25);
        let fired = (0..4000)
            .filter(|_| h.decide(site::REPLICA).is_some())
            .count();
        assert!((700..1300).contains(&fired), "0.25 over 4000 fired {fired}");
    }

    #[test]
    fn after_skips_warmup_and_max_caps_firings() {
        let h = FaultPlan::seeded(3)
            .inject(
                site::TM_CRASH,
                FaultSpec::new(FaultKind::Crash).after(5).max(2),
            )
            .build();
        let fired: Vec<usize> = (0..20)
            .filter(|_| h.decide(site::TM_CRASH).is_some())
            .collect();
        assert_eq!(h.injected(site::TM_CRASH), 2);
        let log = h.injections();
        assert!(
            log.iter().all(|i| i.seq >= 5),
            "fired during warmup: {log:?}"
        );
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn first_matching_rule_wins_and_log_orders_firings() {
        let h = FaultPlan::seeded(9)
            .inject(site::MEMO_GET, FaultSpec::new(FaultKind::Slow).max(1))
            .inject(site::MEMO_GET, FaultSpec::new(FaultKind::Error))
            .build();
        let first = h.decide(site::MEMO_GET).unwrap();
        let second = h.decide(site::MEMO_GET).unwrap();
        assert_eq!(first.kind, FaultKind::Slow);
        assert_eq!(second.kind, FaultKind::Error);
        let log = h.injections();
        assert_eq!(log[0].seq, 0);
        assert_eq!(log[1].seq, 1);
    }

    #[test]
    fn decisions_are_arrival_indexed_not_thread_indexed() {
        // Collect the multiset of decisions from a threaded run; it
        // must equal the sequential schedule's multiset (each arrival
        // index gets the same verdict no matter which thread lands it).
        let sequential: Vec<bool> = {
            let h = plan(11, 0.4);
            (0..400)
                .map(|_| h.decide(site::REPLICA).is_some())
                .collect()
        };
        let h = plan(11, 0.4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .filter(|_| h.decide(site::REPLICA).is_some())
                    .count()
            }));
        }
        let threaded: usize = handles.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(threaded, sequential.iter().filter(|b| **b).count());
    }

    #[test]
    fn clones_share_state() {
        let h = plan(5, 1.0);
        let clone = h.clone();
        clone.decide(site::REPLICA);
        assert_eq!(h.injected(site::REPLICA), 1);
        assert_eq!(h.arrivals(site::REPLICA), 1);
    }
}
