//! Synthetic OQMD-like training data.
//!
//! The paper's stability model "was trained with the features of Ward
//! et al. and data from the Open Quantum Materials Database" (§V-A).
//! OQMD itself is not redistributable here, so we generate synthetic
//! compositions and label them with a smooth, physically flavoured
//! ground-truth function of the Magpie features (electronegativity
//! spread stabilizes; large size mismatch destabilizes) plus seeded
//! noise. The learning task is therefore non-trivial but learnable —
//! which is all the serving experiments need (the *model* is the
//! workload, not the chemistry).

use crate::featurize::featurize;
use crate::formula::{parse_formula, Composition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled example.
#[derive(Debug, Clone)]
pub struct Example {
    /// The formula string, e.g. `Fe2O3`.
    pub formula: String,
    /// Magpie feature vector.
    pub features: Vec<f64>,
    /// Synthetic formation energy (eV/atom); negative = stable.
    pub target: f64,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Labelled examples.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Row-major feature matrix.
    pub fn features(&self) -> Vec<Vec<f64>> {
        self.examples.iter().map(|e| e.features.clone()).collect()
    }

    /// Target vector.
    pub fn targets(&self) -> Vec<f64> {
        self.examples.iter().map(|e| e.target).collect()
    }

    /// Split into `(train, test)` at `train_fraction`.
    pub fn split(mut self, train_fraction: f64) -> (Dataset, Dataset) {
        let cut = (self.examples.len() as f64 * train_fraction) as usize;
        let test = self.examples.split_off(cut);
        (
            Dataset {
                examples: self.examples,
            },
            Dataset { examples: test },
        )
    }
}

/// The synthetic ground truth: a smooth function of composition.
pub fn ground_truth(composition: &Composition) -> f64 {
    let fractions = composition.fractions();
    let mean_en: f64 = fractions.iter().map(|(e, f)| e.electronegativity * f).sum();
    let en_spread: f64 = fractions
        .iter()
        .map(|(e, f)| (e.electronegativity - mean_en).abs() * f)
        .sum();
    let mean_radius: f64 = fractions.iter().map(|(e, f)| e.radius * f).sum();
    let radius_spread: f64 = fractions
        .iter()
        .map(|(e, f)| (e.radius - mean_radius).abs() * f)
        .sum();
    let mean_valence: f64 = fractions.iter().map(|(e, f)| e.valence as f64 * f).sum();
    // Ionic-like bonding (electronegativity contrast) stabilizes,
    // size mismatch destabilizes, mid-band valence filling helps.
    -1.8 * en_spread + 0.012 * radius_spread + 0.08 * (mean_valence - 4.0).abs() - 0.2
}

/// Generate `n` random binary/ternary compositions with labels.
/// Deterministic for a given `seed`.
pub fn generate(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw from the first 83 elements (H..Bi) to avoid exotic actinides
    // dominating the distribution.
    let pool = &crate::elements::ELEMENTS[..83];
    let mut examples = Vec::with_capacity(n);
    while examples.len() < n {
        let arity = if rng.gen_bool(0.5) { 2 } else { 3 };
        let mut symbols: Vec<&str> = Vec::with_capacity(arity);
        while symbols.len() < arity {
            let e = &pool[rng.gen_range(0..pool.len())];
            if !symbols.contains(&e.symbol) {
                symbols.push(e.symbol);
            }
        }
        let formula: String = symbols
            .iter()
            .map(|s| format!("{s}{}", rng.gen_range(1..=4)))
            .collect();
        let Ok(composition) = parse_formula(&formula) else {
            continue;
        };
        let noise: f64 = rng.gen_range(-0.05..0.05);
        examples.push(Example {
            features: featurize(&composition),
            target: ground_truth(&composition) + noise,
            formula,
        });
    }
    Dataset { examples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestConfig, RandomForest};

    #[test]
    fn generate_is_deterministic() {
        let a = generate(50, 7);
        let b = generate(50, 7);
        assert_eq!(a.examples.len(), 50);
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.formula, y.formula);
            assert_eq!(x.target, y.target);
        }
        let c = generate(50, 8);
        assert_ne!(a.examples[0].formula, c.examples[0].formula);
    }

    #[test]
    fn ground_truth_prefers_ionic_compounds() {
        // NaCl (large electronegativity contrast) should be more
        // stable (more negative) than Cu-Ni (metallic, similar EN).
        let nacl = ground_truth(&parse_formula("NaCl").unwrap());
        let cuni = ground_truth(&parse_formula("CuNi").unwrap());
        assert!(nacl < cuni, "NaCl {nacl} should be below CuNi {cuni}");
    }

    #[test]
    fn split_partitions_examples() {
        let d = generate(100, 1);
        let (train, test) = d.split(0.8);
        assert_eq!(train.examples.len(), 80);
        assert_eq!(test.examples.len(), 20);
    }

    #[test]
    fn forest_learns_the_synthetic_chemistry() {
        let (train, test) = generate(800, 11).split(0.8);
        let forest = RandomForest::fit(
            &train.features(),
            &train.targets(),
            &ForestConfig {
                n_trees: 40,
                max_features: Some(16),
                ..ForestConfig::default()
            },
        );
        let mae = forest.mae(&test.features(), &test.targets());
        // The mean predictor's MAE on the same test targets is the
        // skill-free baseline; learning must at least halve it.
        let targets = test.targets();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let baseline = targets.iter().map(|t| (t - mean).abs()).sum::<f64>() / targets.len() as f64;
        assert!(
            mae < baseline / 2.0,
            "MAE {mae} did not halve the mean-predictor baseline {baseline}"
        );
    }
}
