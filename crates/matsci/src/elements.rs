//! Elemental property table (Z = 1..=94).
//!
//! Values are rounded literature numbers: atomic weight (u), period,
//! group (1–18; lanthanides/actinides reported as group 3),
//! Pauling electronegativity (0.0 where undefined, e.g. noble gases),
//! covalent radius (pm), valence electrons (electrons outside the
//! noble-gas core, capped at 12 for transition rows as Magpie does),
//! and melting point (K). Small inaccuracies do not matter for the
//! serving experiments — the featurizer only needs physically
//! structured, distinguishable values.

/// Properties of one element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Element {
    /// Atomic number.
    pub z: u8,
    /// IUPAC symbol.
    pub symbol: &'static str,
    /// Atomic weight in unified atomic mass units.
    pub weight: f64,
    /// Periodic-table row.
    pub row: u8,
    /// Periodic-table group (1–18).
    pub group: u8,
    /// Pauling electronegativity (0.0 = undefined).
    pub electronegativity: f64,
    /// Covalent radius in picometres.
    pub radius: f64,
    /// Valence electron count.
    pub valence: u8,
    /// Melting point in kelvin.
    pub melting: f64,
}

/// Number of properties exposed per element by
/// [`Element::properties`].
pub const PROPERTY_COUNT: usize = 8;

impl Element {
    /// The property vector used by the Magpie featurizer, in a fixed
    /// order: Z, weight, row, group, electronegativity, radius,
    /// valence, melting point.
    pub fn properties(&self) -> [f64; PROPERTY_COUNT] {
        [
            self.z as f64,
            self.weight,
            self.row as f64,
            self.group as f64,
            self.electronegativity,
            self.radius,
            self.valence as f64,
            self.melting,
        ]
    }
}

/// Property names matching [`Element::properties`] order.
pub const PROPERTY_NAMES: [&str; PROPERTY_COUNT] = [
    "Number",
    "AtomicWeight",
    "Row",
    "Column",
    "Electronegativity",
    "CovalentRadius",
    "NValence",
    "MeltingT",
];

macro_rules! table {
    ($(($z:expr, $sym:expr, $w:expr, $row:expr, $grp:expr, $en:expr, $rad:expr, $val:expr, $melt:expr)),+ $(,)?) => {
        &[ $( Element { z: $z, symbol: $sym, weight: $w, row: $row, group: $grp,
                        electronegativity: $en, radius: $rad, valence: $val, melting: $melt } ),+ ]
    };
}

/// The table, ordered by atomic number.
pub static ELEMENTS: &[Element] = table![
    (1, "H", 1.008, 1, 1, 2.20, 31.0, 1, 14.0),
    (2, "He", 4.003, 1, 18, 0.0, 28.0, 2, 1.0),
    (3, "Li", 6.94, 2, 1, 0.98, 128.0, 1, 454.0),
    (4, "Be", 9.012, 2, 2, 1.57, 96.0, 2, 1560.0),
    (5, "B", 10.81, 2, 13, 2.04, 84.0, 3, 2349.0),
    (6, "C", 12.011, 2, 14, 2.55, 76.0, 4, 3823.0),
    (7, "N", 14.007, 2, 15, 3.04, 71.0, 5, 63.0),
    (8, "O", 15.999, 2, 16, 3.44, 66.0, 6, 54.0),
    (9, "F", 18.998, 2, 17, 3.98, 57.0, 7, 53.0),
    (10, "Ne", 20.180, 2, 18, 0.0, 58.0, 8, 25.0),
    (11, "Na", 22.990, 3, 1, 0.93, 166.0, 1, 371.0),
    (12, "Mg", 24.305, 3, 2, 1.31, 141.0, 2, 923.0),
    (13, "Al", 26.982, 3, 13, 1.61, 121.0, 3, 933.0),
    (14, "Si", 28.085, 3, 14, 1.90, 111.0, 4, 1687.0),
    (15, "P", 30.974, 3, 15, 2.19, 107.0, 5, 317.0),
    (16, "S", 32.06, 3, 16, 2.58, 105.0, 6, 388.0),
    (17, "Cl", 35.45, 3, 17, 3.16, 102.0, 7, 172.0),
    (18, "Ar", 39.948, 3, 18, 0.0, 106.0, 8, 84.0),
    (19, "K", 39.098, 4, 1, 0.82, 203.0, 1, 337.0),
    (20, "Ca", 40.078, 4, 2, 1.00, 176.0, 2, 1115.0),
    (21, "Sc", 44.956, 4, 3, 1.36, 170.0, 3, 1814.0),
    (22, "Ti", 47.867, 4, 4, 1.54, 160.0, 4, 1941.0),
    (23, "V", 50.942, 4, 5, 1.63, 153.0, 5, 2183.0),
    (24, "Cr", 51.996, 4, 6, 1.66, 139.0, 6, 2180.0),
    (25, "Mn", 54.938, 4, 7, 1.55, 139.0, 7, 1519.0),
    (26, "Fe", 55.845, 4, 8, 1.83, 132.0, 8, 1811.0),
    (27, "Co", 58.933, 4, 9, 1.88, 126.0, 9, 1768.0),
    (28, "Ni", 58.693, 4, 10, 1.91, 124.0, 10, 1728.0),
    (29, "Cu", 63.546, 4, 11, 1.90, 132.0, 11, 1358.0),
    (30, "Zn", 65.38, 4, 12, 1.65, 122.0, 12, 693.0),
    (31, "Ga", 69.723, 4, 13, 1.81, 122.0, 3, 303.0),
    (32, "Ge", 72.630, 4, 14, 2.01, 120.0, 4, 1211.0),
    (33, "As", 74.922, 4, 15, 2.18, 119.0, 5, 1090.0),
    (34, "Se", 78.971, 4, 16, 2.55, 120.0, 6, 494.0),
    (35, "Br", 79.904, 4, 17, 2.96, 120.0, 7, 266.0),
    (36, "Kr", 83.798, 4, 18, 3.00, 116.0, 8, 116.0),
    (37, "Rb", 85.468, 5, 1, 0.82, 220.0, 1, 312.0),
    (38, "Sr", 87.62, 5, 2, 0.95, 195.0, 2, 1050.0),
    (39, "Y", 88.906, 5, 3, 1.22, 190.0, 3, 1799.0),
    (40, "Zr", 91.224, 5, 4, 1.33, 175.0, 4, 2128.0),
    (41, "Nb", 92.906, 5, 5, 1.60, 164.0, 5, 2750.0),
    (42, "Mo", 95.95, 5, 6, 2.16, 154.0, 6, 2896.0),
    (43, "Tc", 98.0, 5, 7, 1.90, 147.0, 7, 2430.0),
    (44, "Ru", 101.07, 5, 8, 2.20, 146.0, 8, 2607.0),
    (45, "Rh", 102.906, 5, 9, 2.28, 142.0, 9, 2237.0),
    (46, "Pd", 106.42, 5, 10, 2.20, 139.0, 10, 1828.0),
    (47, "Ag", 107.868, 5, 11, 1.93, 145.0, 11, 1235.0),
    (48, "Cd", 112.414, 5, 12, 1.69, 144.0, 12, 594.0),
    (49, "In", 114.818, 5, 13, 1.78, 142.0, 3, 430.0),
    (50, "Sn", 118.710, 5, 14, 1.96, 139.0, 4, 505.0),
    (51, "Sb", 121.760, 5, 15, 2.05, 139.0, 5, 904.0),
    (52, "Te", 127.60, 5, 16, 2.10, 138.0, 6, 723.0),
    (53, "I", 126.904, 5, 17, 2.66, 139.0, 7, 387.0),
    (54, "Xe", 131.293, 5, 18, 2.60, 140.0, 8, 161.0),
    (55, "Cs", 132.905, 6, 1, 0.79, 244.0, 1, 302.0),
    (56, "Ba", 137.327, 6, 2, 0.89, 215.0, 2, 1000.0),
    (57, "La", 138.905, 6, 3, 1.10, 207.0, 3, 1193.0),
    (58, "Ce", 140.116, 6, 3, 1.12, 204.0, 4, 1068.0),
    (59, "Pr", 140.908, 6, 3, 1.13, 203.0, 5, 1208.0),
    (60, "Nd", 144.242, 6, 3, 1.14, 201.0, 6, 1297.0),
    (61, "Pm", 145.0, 6, 3, 1.13, 199.0, 7, 1315.0),
    (62, "Sm", 150.36, 6, 3, 1.17, 198.0, 8, 1345.0),
    (63, "Eu", 151.964, 6, 3, 1.20, 198.0, 9, 1099.0),
    (64, "Gd", 157.25, 6, 3, 1.20, 196.0, 10, 1585.0),
    (65, "Tb", 158.925, 6, 3, 1.22, 194.0, 11, 1629.0),
    (66, "Dy", 162.500, 6, 3, 1.22, 192.0, 12, 1680.0),
    (67, "Ho", 164.930, 6, 3, 1.23, 192.0, 12, 1734.0),
    (68, "Er", 167.259, 6, 3, 1.24, 189.0, 12, 1802.0),
    (69, "Tm", 168.934, 6, 3, 1.25, 190.0, 12, 1818.0),
    (70, "Yb", 173.045, 6, 3, 1.10, 187.0, 12, 1097.0),
    (71, "Lu", 174.967, 6, 3, 1.27, 187.0, 3, 1925.0),
    (72, "Hf", 178.49, 6, 4, 1.30, 175.0, 4, 2506.0),
    (73, "Ta", 180.948, 6, 5, 1.50, 170.0, 5, 3290.0),
    (74, "W", 183.84, 6, 6, 2.36, 162.0, 6, 3695.0),
    (75, "Re", 186.207, 6, 7, 1.90, 151.0, 7, 3459.0),
    (76, "Os", 190.23, 6, 8, 2.20, 144.0, 8, 3306.0),
    (77, "Ir", 192.217, 6, 9, 2.20, 141.0, 9, 2719.0),
    (78, "Pt", 195.084, 6, 10, 2.28, 136.0, 10, 2041.0),
    (79, "Au", 196.967, 6, 11, 2.54, 136.0, 11, 1337.0),
    (80, "Hg", 200.592, 6, 12, 2.00, 132.0, 12, 234.0),
    (81, "Tl", 204.38, 6, 13, 1.62, 145.0, 3, 577.0),
    (82, "Pb", 207.2, 6, 14, 2.33, 146.0, 4, 601.0),
    (83, "Bi", 208.980, 6, 15, 2.02, 148.0, 5, 544.0),
    (84, "Po", 209.0, 6, 16, 2.00, 140.0, 6, 527.0),
    (85, "At", 210.0, 6, 17, 2.20, 150.0, 7, 575.0),
    (86, "Rn", 222.0, 6, 18, 0.0, 150.0, 8, 202.0),
    (87, "Fr", 223.0, 7, 1, 0.70, 260.0, 1, 300.0),
    (88, "Ra", 226.0, 7, 2, 0.90, 221.0, 2, 973.0),
    (89, "Ac", 227.0, 7, 3, 1.10, 215.0, 3, 1323.0),
    (90, "Th", 232.038, 7, 3, 1.30, 206.0, 4, 2023.0),
    (91, "Pa", 231.036, 7, 3, 1.50, 200.0, 5, 1841.0),
    (92, "U", 238.029, 7, 3, 1.38, 196.0, 6, 1405.0),
    (93, "Np", 237.0, 7, 3, 1.36, 190.0, 7, 917.0),
    (94, "Pu", 244.0, 7, 3, 1.28, 187.0, 8, 913.0),
];

/// Look up an element by symbol.
pub fn by_symbol(symbol: &str) -> Option<&'static Element> {
    ELEMENTS.iter().find(|e| e.symbol == symbol)
}

/// Look up an element by atomic number.
pub fn by_z(z: u8) -> Option<&'static Element> {
    ELEMENTS.get(z as usize - 1).filter(|e| e.z == z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_ordered_and_contiguous() {
        for (i, e) in ELEMENTS.iter().enumerate() {
            assert_eq!(e.z as usize, i + 1, "gap at {}", e.symbol);
        }
    }

    #[test]
    fn lookup_by_symbol_and_z() {
        assert_eq!(by_symbol("Fe").unwrap().z, 26);
        assert_eq!(by_z(26).unwrap().symbol, "Fe");
        assert!(by_symbol("Xx").is_none());
        assert!(by_z(120).is_none());
    }

    #[test]
    fn weights_increase_roughly_with_z() {
        // Monotone except for the famous Ar/K and Co/Ni, Te/I swaps.
        let violations = ELEMENTS
            .windows(2)
            .filter(|w| w[1].weight < w[0].weight)
            .count();
        assert!(violations <= 5, "too many weight inversions: {violations}");
    }

    #[test]
    fn property_vector_matches_names() {
        let fe = by_symbol("Fe").unwrap();
        let props = fe.properties();
        assert_eq!(props.len(), PROPERTY_NAMES.len());
        assert_eq!(props[0], 26.0); // Number
        assert_eq!(props[2], 4.0); // Row
        assert!((props[4] - 1.83).abs() < 1e-9); // Electronegativity
    }

    #[test]
    fn noble_gases_have_zero_electronegativity() {
        for sym in ["He", "Ne", "Ar"] {
            assert_eq!(by_symbol(sym).unwrap().electronegativity, 0.0);
        }
    }
}
