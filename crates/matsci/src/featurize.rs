//! Ward-2016 (Magpie) statistical featurization — the matminer step.
//!
//! For each elemental property, the featurizer computes six
//! fraction-weighted statistics over the composition (mean, average
//! deviation, range, mode, minimum, maximum), then appends
//! stoichiometric attributes (element count and the p-norms of the
//! fraction vector), following Ward et al., *npj Computational
//! Materials* 2 (2016) — reference \[39\] of the paper.

use crate::elements::PROPERTY_COUNT;
use crate::formula::Composition;

/// Statistics computed per property.
pub const STATS_PER_PROPERTY: usize = 6;

/// Stoichiometric attributes appended after the property statistics:
/// number of elements, L2 norm, L3 norm of the fraction vector.
pub const STOICHIOMETRY_FEATURES: usize = 3;

/// Total feature vector length.
pub const FEATURE_COUNT: usize = PROPERTY_COUNT * STATS_PER_PROPERTY + STOICHIOMETRY_FEATURES;

/// Compute the Magpie feature vector of a composition.
pub fn featurize(composition: &Composition) -> Vec<f64> {
    let fractions = composition.fractions();
    let mut features = Vec::with_capacity(FEATURE_COUNT);
    for p in 0..PROPERTY_COUNT {
        let values: Vec<(f64, f64)> = fractions
            .iter()
            .map(|(e, f)| (e.properties()[p], *f))
            .collect();
        let mean: f64 = values.iter().map(|(v, f)| v * f).sum();
        let avg_dev: f64 = values.iter().map(|(v, f)| (v - mean).abs() * f).sum();
        let min = values.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min);
        let max = values
            .iter()
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        // Mode: property of the most abundant element (ties: first in
        // alphabetical order, which is the BTreeMap iteration order).
        let mode = values
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(v, _)| *v)
            .unwrap_or(0.0);
        features.push(mean);
        features.push(avg_dev);
        features.push(max - min);
        features.push(mode);
        features.push(min);
        features.push(max);
    }
    // Stoichiometric attributes.
    features.push(fractions.len() as f64);
    let l2: f64 = fractions.iter().map(|(_, f)| f * f).sum::<f64>().sqrt();
    let l3: f64 = fractions.iter().map(|(_, f)| f.powi(3)).sum::<f64>().cbrt();
    features.push(l2);
    features.push(l3);
    debug_assert_eq!(features.len(), FEATURE_COUNT);
    features
}

/// Human-readable names for every feature, aligned with
/// [`featurize`]'s output order.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURE_COUNT);
    for prop in crate::elements::PROPERTY_NAMES {
        for stat in ["mean", "avg_dev", "range", "mode", "min", "max"] {
            names.push(format!("{stat}_{prop}"));
        }
    }
    names.push("NComp".to_string());
    names.push("Comp_L2Norm".to_string());
    names.push("Comp_L3Norm".to_string());
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::parse_formula;
    use proptest::prelude::*;

    #[test]
    fn feature_vector_has_documented_length() {
        let c = parse_formula("NaCl").unwrap();
        let f = featurize(&c);
        assert_eq!(f.len(), FEATURE_COUNT);
        assert_eq!(feature_names().len(), FEATURE_COUNT);
    }

    #[test]
    fn single_element_has_zero_deviation_and_range() {
        let c = parse_formula("Fe").unwrap();
        let f = featurize(&c);
        // For every property: avg_dev (idx 1) and range (idx 2) are 0,
        // and mean == mode == min == max.
        for p in 0..PROPERTY_COUNT {
            let base = p * STATS_PER_PROPERTY;
            assert_eq!(f[base + 1], 0.0, "avg_dev of property {p}");
            assert_eq!(f[base + 2], 0.0, "range of property {p}");
            assert_eq!(f[base], f[base + 3]);
            assert_eq!(f[base + 4], f[base + 5]);
        }
        // NComp = 1, norms = 1.
        assert_eq!(f[FEATURE_COUNT - 3], 1.0);
        assert!((f[FEATURE_COUNT - 2] - 1.0).abs() < 1e-12);
        assert!((f[FEATURE_COUNT - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nacl_mean_z_is_weighted() {
        let c = parse_formula("NaCl").unwrap();
        let f = featurize(&c);
        // Property 0 is atomic number: (11 + 17)/2 = 14.
        assert!((f[0] - 14.0).abs() < 1e-12);
        // Range = 6, min = 11, max = 17.
        assert_eq!(f[2], 6.0);
        assert_eq!(f[4], 11.0);
        assert_eq!(f[5], 17.0);
    }

    #[test]
    fn mode_tracks_most_abundant_element() {
        // SiO2: O is most abundant; mode of atomic number = 8.
        let c = parse_formula("SiO2").unwrap();
        let f = featurize(&c);
        assert_eq!(f[3], 8.0);
    }

    #[test]
    fn stoichiometric_norms_for_sio2() {
        let c = parse_formula("SiO2").unwrap();
        let f = featurize(&c);
        assert_eq!(f[FEATURE_COUNT - 3], 2.0);
        let expected_l2 = ((1.0f64 / 3.0).powi(2) + (2.0f64 / 3.0).powi(2)).sqrt();
        assert!((f[FEATURE_COUNT - 2] - expected_l2).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn features_are_finite_and_ordered(
            a in 0usize..94, b in 0usize..94, na in 1u32..9, nb in 1u32..9
        ) {
            prop_assume!(a != b);
            let ea = crate::elements::ELEMENTS[a];
            let eb = crate::elements::ELEMENTS[b];
            let c = parse_formula(&format!("{}{}{}{}", ea.symbol, na, eb.symbol, nb)).unwrap();
            let f = featurize(&c);
            for v in &f {
                prop_assert!(v.is_finite());
            }
            for p in 0..PROPERTY_COUNT {
                let base = p * STATS_PER_PROPERTY;
                let (mean, min, max) = (f[base], f[base + 4], f[base + 5]);
                prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9);
                prop_assert!(f[base + 2] >= 0.0); // range
                prop_assert!(f[base + 1] >= 0.0); // avg_dev
            }
        }

        #[test]
        fn featurize_is_scale_invariant(n in 1u32..9) {
            // Features depend on fractions only: SiO2 == Si2O4 == SinO2n.
            let base = featurize(&parse_formula("SiO2").unwrap());
            let scaled = featurize(
                &parse_formula(&format!("Si{}O{}", n, 2 * n)).unwrap(),
            );
            for (x, y) in base.iter().zip(&scaled) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
