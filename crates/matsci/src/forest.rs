//! From-scratch random-forest regression — the scikit-learn step.
//!
//! CART regression trees (variance-reduction splits) bagged over
//! bootstrap samples with per-split feature subsampling, trained in
//! parallel with Rayon. This is the "scikit-learn random forest model
//! to predict stability" of §V-A, rebuilt natively.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A binary regression-tree node, stored flat in a vector.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Children are stored at explicit indices (not `left + 1`)
        /// because subtree sizes differ.
        left: usize,
        right: usize,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = sqrt(n_features)).
    pub max_features: Option<usize>,
    /// RNG seed for bootstrap and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            max_depth: 12,
            min_samples_split: 4,
            max_features: None,
            seed: 0,
        }
    }
}

impl DecisionTree {
    /// Fit a tree on `(x, y)` where `x` is row-major
    /// `n_samples × n_features`, restricted to `indices`.
    fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> Self {
        let n_features = x.first().map_or(0, Vec::len);
        let max_features = config
            .max_features
            .unwrap_or_else(|| (n_features as f64).sqrt().ceil() as usize)
            .clamp(1, n_features.max(1));
        let mut nodes = Vec::new();
        let mut work = indices.to_vec();
        Self::grow(x, y, &mut work, 0, config, max_features, rng, &mut nodes);
        DecisionTree { nodes }
    }

    /// Recursively grow the tree over `indices`, appending nodes and
    /// returning the new node's index.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        config: &ForestConfig,
        max_features: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || indices.iter().all(|&i| (y[i] - mean).abs() < 1e-12)
        {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        }
        let n_features = x[0].len();
        let mut feature_pool: Vec<usize> = (0..n_features).collect();
        feature_pool.shuffle(rng);
        feature_pool.truncate(max_features);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &feature in &feature_pool {
            if let Some((threshold, score)) = best_split(x, y, indices, feature) {
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((feature, threshold, score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        };
        // Partition indices in place.
        let split_at = partition(indices, |&i| x[i][feature] <= threshold);
        if split_at == 0 || split_at == indices.len() {
            nodes.push(Node::Leaf { value: mean });
            return nodes.len() - 1;
        }
        // Reserve our slot before recursing so children land after us.
        let node_index = nodes.len();
        nodes.push(Node::Leaf { value: mean }); // placeholder
        let (left_idx, right_idx) = {
            let (left_part, right_part) = indices.split_at_mut(split_at);
            let l = Self::grow(x, y, left_part, depth + 1, config, max_features, rng, nodes);
            let r = Self::grow(
                x,
                y,
                right_part,
                depth + 1,
                config,
                max_features,
                rng,
                nodes,
            );
            (l, r)
        };
        nodes[node_index] = Node::Split {
            feature,
            threshold,
            left: left_idx,
            right: right_idx,
        };
        node_index
    }

    /// Predict one sample.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }
}

/// Stable partition: moves elements satisfying `pred` to the front,
/// returning the boundary.
fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut next = 0;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(i, next);
            next += 1;
        }
    }
    next
}

/// Best threshold for `feature` over `indices` by weighted-variance
/// (SSE) minimization; returns `(threshold, sse)`.
fn best_split(x: &[Vec<f64>], y: &[f64], indices: &[usize], feature: usize) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by(|&a, &b| {
        x[a][feature]
            .partial_cmp(&x[b][feature])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = order.len();
    if n < 2 {
        return None;
    }
    // Prefix sums for O(n) scan.
    let mut prefix_sum = 0.0;
    let mut prefix_sq = 0.0;
    let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();
    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let yi = y[order[k]];
        prefix_sum += yi;
        prefix_sq += yi * yi;
        let xv = x[order[k]][feature];
        let xn = x[order[k + 1]][feature];
        if xn <= xv {
            continue; // cannot split between equal values
        }
        let left_n = (k + 1) as f64;
        let right_n = (n - k - 1) as f64;
        let left_sse = prefix_sq - prefix_sum * prefix_sum / left_n;
        let right_sum = total_sum - prefix_sum;
        let right_sse = (total_sq - prefix_sq) - right_sum * right_sum / right_n;
        let score = left_sse + right_sse;
        if best.is_none_or(|(_, s)| score < s) {
            best = Some(((xv + xn) / 2.0, score));
        }
    }
    best
}

/// A bagged ensemble of regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Train on row-major features `x` and targets `y`. Trees are
    /// fitted in parallel; the forest is deterministic for a given
    /// `config.seed`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &ForestConfig) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n = x.len();
        let trees: Vec<DecisionTree> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let bootstrap: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                DecisionTree::fit(x, y, &bootstrap, config, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Predict one sample (mean over trees).
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict many samples in parallel.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.par_iter().map(|f| self.predict(f)).collect()
    }

    /// Predict with an ensemble uncertainty estimate: the mean and
    /// standard deviation of the per-tree predictions. Disagreement
    /// across the bagged trees is the classic random-forest proxy for
    /// epistemic uncertainty — the "uncertainty quantification" stage
    /// scientific workflows attach after inference (paper §II).
    pub fn predict_with_uncertainty(&self, features: &[f64]) -> (f64, f64) {
        let per_tree: Vec<f64> = self.trees.iter().map(|t| t.predict(features)).collect();
        let n = per_tree.len() as f64;
        let mean = per_tree.iter().sum::<f64>() / n;
        let variance = per_tree
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / n;
        (mean, variance.sqrt())
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean absolute error over a labelled set.
    pub fn mae(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        let preds = self.predict_batch(x);
        preds.iter().zip(y).map(|(p, t)| (p - t).abs()).sum::<f64>() / y.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3*x0 - 2*x1 with a little structure; learnable by trees.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        (x, y)
    }

    #[test]
    fn single_tree_fits_constant_data() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 5.0];
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&x, &y, &[0, 1, 2], &ForestConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[7.0]), 5.0);
    }

    #[test]
    fn single_tree_learns_a_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let idx: Vec<usize> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let config = ForestConfig {
            max_features: Some(1),
            ..ForestConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &idx, &config, &mut rng);
        assert_eq!(tree.predict(&[3.0]), 0.0);
        assert_eq!(tree.predict(&[15.0]), 1.0);
    }

    #[test]
    fn forest_reduces_error_on_linear_target() {
        let (x, y) = toy_data(400, 1);
        let (xt, yt) = toy_data(100, 2);
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 40,
                ..ForestConfig::default()
            },
        );
        let mae = forest.mae(&xt, &yt);
        // Target stddev is ~2; the forest must do far better than the
        // mean predictor.
        assert!(mae < 0.6, "forest MAE too high: {mae}");
    }

    #[test]
    fn forest_is_deterministic_for_a_seed() {
        let (x, y) = toy_data(100, 1);
        let config = ForestConfig {
            n_trees: 8,
            seed: 42,
            ..ForestConfig::default()
        };
        let f1 = RandomForest::fit(&x, &y, &config);
        let f2 = RandomForest::fit(&x, &y, &config);
        let probe = vec![0.3, -0.4];
        assert_eq!(f1.predict(&probe), f2.predict(&probe));
        let f3 = RandomForest::fit(&x, &y, &ForestConfig { seed: 43, ..config });
        assert_ne!(f1.predict(&probe), f3.predict(&probe));
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (x, y) = toy_data(100, 1);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default());
        let batch = forest.predict_batch(&x[..5]);
        for (row, expected) in x[..5].iter().zip(&batch) {
            assert_eq!(forest.predict(row), *expected);
        }
    }

    #[test]
    fn uncertainty_mean_matches_predict() {
        let (x, y) = toy_data(300, 5);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default());
        let probe = vec![0.1, -0.2];
        let (mean, std) = forest.predict_with_uncertainty(&probe);
        assert!((mean - forest.predict(&probe)).abs() < 1e-12);
        // The toy target varies, so bootstrapped trees must disagree
        // at least a little.
        assert!(std > 0.0);
    }

    #[test]
    fn uncertainty_is_zero_when_trees_cannot_disagree() {
        // Constant targets: every bootstrap learns the same constant.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 50];
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default());
        let (mean, std) = forest.predict_with_uncertainty(&[25.0]);
        assert!((mean - 4.2).abs() < 1e-12);
        // Up to float rounding in the variance accumulation.
        assert!(std < 1e-9, "std {std}");
    }

    #[test]
    fn max_depth_bounds_tree_depth() {
        let (x, y) = toy_data(200, 3);
        let idx: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let config = ForestConfig {
            max_depth: 3,
            ..ForestConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &idx, &config, &mut rng);
        assert!(tree.depth() <= 4); // root at depth 1 + 3 levels
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        RandomForest::fit(&[vec![1.0]], &[1.0, 2.0], &ForestConfig::default());
    }
}
