//! Chemical-formula parsing (the pymatgen step of the pipeline).
//!
//! Supports element symbols, integer and fractional amounts, and
//! nested parentheses: `NaCl`, `SiO2`, `Ca(OH)2`, `Mg0.5Fe0.5O`,
//! `Ba(Ti0.8Zr0.2)O3`.

use crate::elements::{by_symbol, Element};
use std::collections::BTreeMap;
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FormulaError {
    /// Empty input.
    Empty,
    /// Symbol not in the element table.
    UnknownElement(String),
    /// Unbalanced or misplaced parenthesis at byte offset.
    UnbalancedParen(usize),
    /// Unexpected character at byte offset.
    UnexpectedChar(char, usize),
    /// Amount failed to parse at byte offset.
    BadAmount(usize),
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::Empty => write!(f, "empty formula"),
            FormulaError::UnknownElement(s) => write!(f, "unknown element: {s}"),
            FormulaError::UnbalancedParen(i) => write!(f, "unbalanced parenthesis at {i}"),
            FormulaError::UnexpectedChar(c, i) => write!(f, "unexpected '{c}' at {i}"),
            FormulaError::BadAmount(i) => write!(f, "bad amount at {i}"),
        }
    }
}

impl std::error::Error for FormulaError {}

/// A parsed composition: element symbol → amount, plus normalized
/// fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Raw amounts as written (e.g. `{"Ca":1, "O":2, "H":2}`).
    pub amounts: BTreeMap<&'static str, f64>,
}

impl Composition {
    /// Number of distinct elements.
    pub fn n_elements(&self) -> usize {
        self.amounts.len()
    }

    /// Total atom count.
    pub fn total_atoms(&self) -> f64 {
        self.amounts.values().sum()
    }

    /// `(element, fraction)` pairs, fractions summing to 1.
    pub fn fractions(&self) -> Vec<(&'static Element, f64)> {
        let total = self.total_atoms();
        self.amounts
            .iter()
            .map(|(sym, amt)| {
                (
                    by_symbol(sym).expect("symbol validated during parse"),
                    amt / total,
                )
            })
            .collect()
    }

    /// Fraction-weighted mean atomic weight.
    pub fn mean_weight(&self) -> f64 {
        self.fractions().iter().map(|(e, f)| e.weight * f).sum()
    }

    /// Reduced formula string with elements in Hill-ish (alphabetical)
    /// order, e.g. `Cl1Na1` for NaCl.
    pub fn reduced_formula(&self) -> String {
        let mut out = String::new();
        for (sym, amt) in &self.amounts {
            if (amt - amt.round()).abs() < 1e-9 {
                out.push_str(&format!("{sym}{}", amt.round() as i64));
            } else {
                out.push_str(&format!("{sym}{amt}"));
            }
        }
        out
    }
}

/// Parse a formula string into a [`Composition`].
pub fn parse_formula(input: &str) -> Result<Composition, FormulaError> {
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(FormulaError::Empty);
    }
    let chars: Vec<char> = trimmed.chars().collect();
    let mut pos = 0usize;
    let mut amounts: BTreeMap<&'static str, f64> = BTreeMap::new();
    parse_group(&chars, &mut pos, 1.0, &mut amounts, 0)?;
    if pos != chars.len() {
        // A stray ')' stops parse_group early at depth 0.
        return Err(FormulaError::UnbalancedParen(pos));
    }
    if amounts.is_empty() {
        return Err(FormulaError::Empty);
    }
    Ok(Composition { amounts })
}

fn parse_group(
    chars: &[char],
    pos: &mut usize,
    multiplier: f64,
    amounts: &mut BTreeMap<&'static str, f64>,
    depth: usize,
) -> Result<(), FormulaError> {
    while *pos < chars.len() {
        let c = chars[*pos];
        if c == '(' {
            let open = *pos;
            *pos += 1;
            let mut inner: BTreeMap<&'static str, f64> = BTreeMap::new();
            parse_group(chars, pos, 1.0, &mut inner, depth + 1)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err(FormulaError::UnbalancedParen(open));
            }
            *pos += 1; // consume ')'
            let amount = parse_amount(chars, pos)?.unwrap_or(1.0);
            for (sym, amt) in inner {
                *amounts.entry(sym).or_insert(0.0) += amt * amount * multiplier;
            }
        } else if c == ')' {
            if depth == 0 {
                return Ok(()); // caller reports the imbalance
            }
            return Ok(());
        } else if c.is_ascii_uppercase() {
            let start = *pos;
            *pos += 1;
            while *pos < chars.len() && chars[*pos].is_ascii_lowercase() {
                *pos += 1;
            }
            let symbol: String = chars[start..*pos].iter().collect();
            let element = by_symbol(&symbol).ok_or(FormulaError::UnknownElement(symbol.clone()))?;
            let amount = parse_amount(chars, pos)?.unwrap_or(1.0);
            *amounts.entry(element.symbol).or_insert(0.0) += amount * multiplier;
        } else if c.is_whitespace() {
            *pos += 1;
        } else {
            return Err(FormulaError::UnexpectedChar(c, *pos));
        }
    }
    Ok(())
}

fn parse_amount(chars: &[char], pos: &mut usize) -> Result<Option<f64>, FormulaError> {
    let start = *pos;
    while *pos < chars.len() && (chars[*pos].is_ascii_digit() || chars[*pos] == '.') {
        *pos += 1;
    }
    if *pos == start {
        return Ok(None);
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Some)
        .map_err(|_| FormulaError::BadAmount(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn amount(c: &Composition, sym: &str) -> f64 {
        *c.amounts.get(sym).unwrap()
    }

    #[test]
    fn simple_binary() {
        let c = parse_formula("NaCl").unwrap();
        assert_eq!(c.n_elements(), 2);
        assert_eq!(amount(&c, "Na"), 1.0);
        assert_eq!(amount(&c, "Cl"), 1.0);
    }

    #[test]
    fn integer_subscripts() {
        let c = parse_formula("SiO2").unwrap();
        assert_eq!(amount(&c, "Si"), 1.0);
        assert_eq!(amount(&c, "O"), 2.0);
        assert_eq!(c.total_atoms(), 3.0);
    }

    #[test]
    fn parentheses_multiply() {
        let c = parse_formula("Ca(OH)2").unwrap();
        assert_eq!(amount(&c, "Ca"), 1.0);
        assert_eq!(amount(&c, "O"), 2.0);
        assert_eq!(amount(&c, "H"), 2.0);
    }

    #[test]
    fn nested_parentheses() {
        let c = parse_formula("Ba(Ti(O2)2)3").unwrap();
        assert_eq!(amount(&c, "Ba"), 1.0);
        assert_eq!(amount(&c, "Ti"), 3.0);
        assert_eq!(amount(&c, "O"), 12.0);
    }

    #[test]
    fn fractional_amounts() {
        let c = parse_formula("Mg0.5Fe0.5O").unwrap();
        assert_eq!(amount(&c, "Mg"), 0.5);
        assert_eq!(amount(&c, "Fe"), 0.5);
        assert_eq!(amount(&c, "O"), 1.0);
        let fracs = c.fractions();
        let total: f64 = fracs.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_element_accumulates() {
        let c = parse_formula("FeOFe").unwrap();
        assert_eq!(amount(&c, "Fe"), 2.0);
    }

    #[test]
    fn two_letter_symbols_not_confused() {
        // "Co" is cobalt, "CO" is carbon + oxygen.
        let cobalt = parse_formula("Co").unwrap();
        assert_eq!(cobalt.n_elements(), 1);
        let carbon_monoxide = parse_formula("CO").unwrap();
        assert_eq!(carbon_monoxide.n_elements(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(parse_formula(""), Err(FormulaError::Empty));
        assert_eq!(parse_formula("   "), Err(FormulaError::Empty));
        assert!(matches!(
            parse_formula("Xx2"),
            Err(FormulaError::UnknownElement(_))
        ));
        assert!(matches!(
            parse_formula("Ca(OH"),
            Err(FormulaError::UnbalancedParen(_))
        ));
        assert!(matches!(
            parse_formula("Ca)2"),
            Err(FormulaError::UnbalancedParen(_))
        ));
        assert!(matches!(
            parse_formula("Na+Cl"),
            Err(FormulaError::UnexpectedChar('+', _))
        ));
    }

    #[test]
    fn mean_weight_of_nacl() {
        let c = parse_formula("NaCl").unwrap();
        // (22.99 + 35.45) / 2
        assert!((c.mean_weight() - 29.22).abs() < 0.01);
    }

    #[test]
    fn reduced_formula_is_alphabetical() {
        let c = parse_formula("NaCl").unwrap();
        assert_eq!(c.reduced_formula(), "Cl1Na1");
    }

    proptest! {
        #[test]
        fn parser_never_panics(s in "\\PC{0,24}") {
            let _ = parse_formula(&s);
        }

        #[test]
        fn valid_binary_round_trips(
            a in 0usize..94, b in 0usize..94, na in 1u32..9, nb in 1u32..9
        ) {
            prop_assume!(a != b);
            let ea = crate::elements::ELEMENTS[a];
            let eb = crate::elements::ELEMENTS[b];
            let formula = format!("{}{}{}{}", ea.symbol, na, eb.symbol, nb);
            let c = parse_formula(&formula).unwrap();
            prop_assert_eq!(c.n_elements(), 2);
            prop_assert_eq!(c.total_atoms(), (na + nb) as f64);
        }

        #[test]
        fn fractions_always_sum_to_one(
            a in 0usize..94, n in 1u32..5, m in 1u32..5
        ) {
            let e = crate::elements::ELEMENTS[a];
            let formula = format!("{}{}O{}", e.symbol, n, m);
            if let Ok(c) = parse_formula(&formula) {
                let total: f64 = c.fractions().iter().map(|(_, f)| f).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }
}
