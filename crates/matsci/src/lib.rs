#![warn(missing_docs)]

//! # dlhub-matsci
//!
//! Materials-science substrate standing in for the pymatgen → matminer
//! → scikit-learn stack used by the paper's materials-stability
//! servables (§V-A) and the formation-enthalpy pipeline (§VI-D):
//!
//! 1. **`matminer util`** — parse a composition string ("NaCl",
//!    "Ca(OH)2") into element fractions: [`formula::parse_formula`].
//! 2. **`matminer featurize`** — compute Ward-2016 (Magpie) statistical
//!    features from elemental properties: [`featurize::featurize`].
//! 3. **`matminer model`** — a from-scratch random-forest regressor
//!    predicting stability / formation enthalpy:
//!    [`forest::RandomForest`], trained on a synthetic OQMD-like
//!    dataset ([`dataset`]).
//!
//! The element property table ([`elements`]) carries real (rounded)
//! values for Z ≤ 94: atomic weight, period, group, Pauling
//! electronegativity, covalent radius, valence electron count and
//! melting point.

pub mod dataset;
pub mod elements;
pub mod featurize;
pub mod forest;
pub mod formula;

pub use featurize::{featurize, FEATURE_COUNT};
pub use forest::{DecisionTree, ForestConfig, RandomForest};
pub use formula::{parse_formula, Composition, FormulaError};
