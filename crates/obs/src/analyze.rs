//! Critical-path analysis over collected traces: reconstruct a
//! request's span tree and decompose its wall time into named stages.
//!
//! The paper's evaluation (§V) asks *where latency comes from* as a
//! request crosses Management Service → broker → Task Manager →
//! executor replica. This module answers that per trace: every
//! nanosecond of a request's duration is attributed to exactly one
//! [`Stage`], so the stage vector always sums to the recorded total —
//! the attribution is computed by interval subtraction (child-covered
//! time is classified by the child, residuals by the enclosing tier),
//! never by adding up independently measured numbers that may drift.
//!
//! Stage semantics:
//! * [`Stage::MemoLookup`] — time under `memo_lookup` spans;
//! * [`Stage::BrokerWait`] — attempt time not covered by any
//!   invocation: serialization, broker enqueue, queue wait, transport
//!   and reply transport (the invocation span's `queue_wait_ns`
//!   attribute, stamped from the broker's lease accounting, reports
//!   the in-queue share);
//! * [`Stage::TmDispatch`] — invocation time before the work is
//!   handed to a replica, plus reply collection;
//! * [`Stage::ReplicaWait`] — hand-off to inference start, measured
//!   from the replica queue's `queued_ns` stamp;
//! * [`Stage::Execute`] — time covered by `inference` spans;
//! * [`Stage::BatchWait`] — time a flushed input sat in the batcher
//!   (from the `batch_flush` span's `batch_wait_ns` attribute);
//! * [`Stage::Management`] — everything the Management Service did not
//!   delegate: preflight, memo keying, retry backoff, async pool wait.

use serde_json::{json, Value};

use crate::trace::{SpanRecord, TraceExport};

/// A named latency stage in the serving critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Management Service overhead (preflight, keying, backoff,
    /// async-pool wait).
    Management,
    /// Memo-cache lookup.
    MemoLookup,
    /// Broker enqueue, queue wait and transport.
    BrokerWait,
    /// Task Manager dispatch and reply collection.
    TmDispatch,
    /// Waiting in a replica's job queue.
    ReplicaWait,
    /// Servable inference execution.
    Execute,
    /// Waiting for a batch to fill before flushing.
    BatchWait,
}

impl Stage {
    /// Every stage, in critical-path order.
    pub const ALL: [Stage; 7] = [
        Stage::Management,
        Stage::MemoLookup,
        Stage::BrokerWait,
        Stage::TmDispatch,
        Stage::ReplicaWait,
        Stage::Execute,
        Stage::BatchWait,
    ];

    /// Stable snake_case name used in JSON and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Management => "management",
            Stage::MemoLookup => "memo_lookup",
            Stage::BrokerWait => "broker_wait",
            Stage::TmDispatch => "tm_dispatch",
            Stage::ReplicaWait => "replica_wait",
            Stage::Execute => "execute",
            Stage::BatchWait => "batch_wait",
        }
    }
}

/// Nanoseconds attributed to each stage. Always sums to the total the
/// breakdown was computed for.
pub type StageNs = Vec<(Stage, u64)>;

fn zeroed() -> StageNs {
    Stage::ALL.iter().map(|s| (*s, 0)).collect()
}

fn add(stages: &mut StageNs, stage: Stage, ns: u64) {
    for (s, v) in stages.iter_mut() {
        if *s == stage {
            *v += ns;
            return;
        }
    }
}

/// Merge possibly-overlapping `[start, end)` intervals and return the
/// total covered length.
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.retain(|(s, e)| e > s);
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for (s, e) in intervals {
        let s = s.max(cursor);
        if e > s {
            covered += e - s;
            cursor = e;
        }
        cursor = cursor.max(e);
    }
    covered
}

fn clamp(span: &SpanRecord, lo: u64, hi: u64) -> (u64, u64) {
    (span.start_ns.clamp(lo, hi), span.end_ns.clamp(lo, hi))
}

fn attr_u64(span: &SpanRecord, key: &str) -> Option<u64> {
    span.attr(key).and_then(|v| v.parse().ok())
}

/// Stage decomposition of one request-like span (`request` or
/// `batch_flush`).
#[derive(Debug, Clone)]
pub struct RequestBreakdown {
    /// Trace the request belongs to.
    pub trace: u64,
    /// Span id of the request.
    pub span: u64,
    /// Servable the request targeted (empty when unattributed).
    pub servable: String,
    /// Total wall time attributed, nanoseconds. Equals the span's
    /// duration plus any `batch_wait_ns`.
    pub total_ns: u64,
    /// Per-stage attribution; sums exactly to `total_ns`.
    pub stages: StageNs,
    /// Delivery attempts observed.
    pub attempts: usize,
    /// Whether the request was answered from the memo cache.
    pub cache_hit: bool,
    /// Whether the request ended in an error.
    pub error: bool,
}

/// Full analysis of one trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// The analyzed trace id.
    pub trace: u64,
    /// Root kind: `"request"`, `"pipeline"` or `"batch_flush"`.
    pub kind: &'static str,
    /// Total wall time of the root, nanoseconds.
    pub total_ns: u64,
    /// Per-request breakdowns (pipelines have one per step).
    pub requests: Vec<RequestBreakdown>,
    /// Aggregate per-stage attribution; sums exactly to `total_ns`.
    pub stages: StageNs,
    /// False when any span references a parent missing from the trace
    /// — pair with the snapshot's `spans_dropped` before trusting the
    /// attribution of an incomplete trace.
    pub complete: bool,
}

/// Decompose the span `inv` (an `invocation`) into
/// `(tm_dispatch, replica_wait, execute)` nanoseconds summing exactly
/// to its duration.
fn decompose_invocation(spans: &[&SpanRecord], inv: &SpanRecord) -> (u64, u64, u64) {
    let dur = inv.end_ns.saturating_sub(inv.start_ns);
    let inferences: Vec<&&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent == inv.span && s.name == "inference")
        .collect();
    if inferences.is_empty() {
        return (dur, 0, 0);
    }
    let execute = union_len(
        inferences
            .iter()
            .map(|s| clamp(s, inv.start_ns, inv.end_ns))
            .collect(),
    );
    let first_inference = inferences
        .iter()
        .map(|s| s.start_ns.clamp(inv.start_ns, inv.end_ns))
        .min()
        .unwrap_or(inv.start_ns);
    let pre_gap = first_inference - inv.start_ns;
    // The replica queue stamps `queued_ns` when the job is enqueued;
    // hand-off-to-inference-start is replica queue wait, the rest of
    // the pre-inference gap (routing, job construction) is dispatch.
    let replica_wait = inferences
        .iter()
        .filter_map(|s| attr_u64(s, "queued_ns"))
        .min()
        .map(|queued| first_inference.saturating_sub(queued.max(inv.start_ns)))
        .unwrap_or(0)
        .min(pre_gap);
    let tm_dispatch = dur - execute.min(dur) - replica_wait.min(dur - execute.min(dur));
    (tm_dispatch, replica_wait, execute.min(dur))
}

/// Decompose one request-like root/step span into stages.
fn decompose_request(spans: &[&SpanRecord], req: &SpanRecord) -> RequestBreakdown {
    let (lo, hi) = (req.start_ns, req.end_ns);
    let total_span = hi.saturating_sub(lo);
    let mut stages = zeroed();

    let children: Vec<&&SpanRecord> = spans.iter().filter(|s| s.parent == req.span).collect();

    let batch_wait = attr_u64(req, "batch_wait_ns").unwrap_or(0);
    add(&mut stages, Stage::BatchWait, batch_wait);

    let mut memo = 0u64;
    for lookup in children.iter().filter(|s| s.name == "memo_lookup") {
        let (s, e) = clamp(lookup, lo, hi);
        memo += e - s;
    }
    add(&mut stages, Stage::MemoLookup, memo);

    let attempts: Vec<&&SpanRecord> = children
        .iter()
        .filter(|s| s.name == "attempt")
        .copied()
        .collect();
    let invocations: Vec<&&SpanRecord> = children
        .iter()
        .filter(|s| s.name == "invocation")
        .copied()
        .collect();

    let mut delegated = 0u64;
    for attempt in &attempts {
        let (a_start, a_end) = clamp(attempt, lo, hi);
        let a_dur = a_end - a_start;
        delegated += a_dur;
        let overlapping: Vec<&&SpanRecord> = invocations
            .iter()
            .filter(|i| i.start_ns < a_end && i.end_ns > a_start)
            .copied()
            .collect();
        let covered = union_len(
            overlapping
                .iter()
                .map(|i| clamp(i, a_start, a_end))
                .collect(),
        );
        add(&mut stages, Stage::BrokerWait, a_dur - covered);
        for inv in overlapping {
            let (tm, rw, ex) = decompose_invocation(spans, inv);
            let inv_dur = inv.end_ns.saturating_sub(inv.start_ns);
            let (c_start, c_end) = clamp(inv, a_start, a_end);
            let clipped = c_end - c_start;
            // An invocation clipped by the attempt boundary (e.g. a
            // redelivered task still running when the retry fired) is
            // scaled proportionally so the partition stays exact.
            let (tm, rw, ex) = if clipped == inv_dur || inv_dur == 0 {
                (tm, rw, ex)
            } else {
                let scaled_ex = ex * clipped / inv_dur;
                let scaled_rw = rw * clipped / inv_dur;
                (clipped - scaled_ex - scaled_rw, scaled_rw, scaled_ex)
            };
            add(&mut stages, Stage::TmDispatch, tm);
            add(&mut stages, Stage::ReplicaWait, rw);
            add(&mut stages, Stage::Execute, ex);
        }
    }

    let management = total_span.saturating_sub(memo + delegated);
    add(&mut stages, Stage::Management, management);

    RequestBreakdown {
        trace: req.trace,
        span: req.span,
        servable: req.attr("servable").unwrap_or_default().to_string(),
        total_ns: total_span + batch_wait,
        stages,
        attempts: attempts.len(),
        cache_hit: req.attr("cache_hit") == Some("true"),
        error: req.attr("error").is_some(),
    }
}

/// Analyze one trace in an export: find the root (`pipeline` >
/// `request` > `batch_flush`), decompose every request under it, and
/// return stage attributions that sum exactly to the root's wall time.
/// `None` when the trace has no spans or no recognizable root.
pub fn analyze(export: &TraceExport, trace: u64) -> Option<TraceAnalysis> {
    let spans: Vec<&SpanRecord> = export.spans.iter().filter(|s| s.trace == trace).collect();
    if spans.is_empty() {
        return None;
    }
    let present = |id: u64| spans.iter().any(|s| s.span == id);
    let complete = spans.iter().all(|s| s.parent == 0 || present(s.parent));
    let roots: Vec<&&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent == 0 || !present(s.parent))
        .collect();
    let root = ["pipeline", "request", "batch_flush"]
        .iter()
        .find_map(|name| roots.iter().find(|s| s.name == *name))?;

    let (kind, requests, total_ns, batch_wait) = match root.name {
        "pipeline" => {
            let steps: Vec<RequestBreakdown> = spans
                .iter()
                .filter(|s| s.parent == root.span && s.name == "request")
                .map(|s| decompose_request(&spans, s))
                .collect();
            let total = root.end_ns.saturating_sub(root.start_ns);
            ("pipeline", steps, total, 0)
        }
        name => {
            let breakdown = decompose_request(&spans, root);
            let batch_wait = attr_u64(root, "batch_wait_ns").unwrap_or(0);
            let total = root.end_ns.saturating_sub(root.start_ns) + batch_wait;
            let kind = if name == "batch_flush" {
                "batch_flush"
            } else {
                "request"
            };
            (kind, vec![breakdown], total, batch_wait)
        }
    };

    let mut stages = zeroed();
    add(&mut stages, Stage::BatchWait, batch_wait);
    let mut step_total = batch_wait;
    for req in &requests {
        step_total += req.total_ns;
        for (stage, ns) in &req.stages {
            // For non-pipeline roots the request *is* the root, so its
            // batch wait was already added above.
            if kind != "pipeline" && *stage == Stage::BatchWait {
                continue;
            }
            add(&mut stages, *stage, *ns);
        }
    }
    if kind != "pipeline" {
        step_total -= batch_wait;
    }
    // Time the root spent outside its request children (pipeline glue,
    // step hand-off) is management overhead.
    add(
        &mut stages,
        Stage::Management,
        total_ns.saturating_sub(step_total),
    );

    Some(TraceAnalysis {
        trace,
        kind,
        total_ns,
        requests,
        stages,
        complete,
    })
}

/// Analyze every trace present in an export, skipping traces without a
/// recognizable root (bare events, orphan spans).
pub fn analyze_all(export: &TraceExport) -> Vec<TraceAnalysis> {
    export
        .trace_ids()
        .into_iter()
        .filter_map(|t| analyze(export, t))
        .collect()
}

/// Sum stage attributions across analyses (for fleet-wide CLI views).
pub fn aggregate_stages(analyses: &[TraceAnalysis]) -> StageNs {
    let mut total = zeroed();
    for analysis in analyses {
        for (stage, ns) in &analysis.stages {
            add(&mut total, *stage, *ns);
        }
    }
    total
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render a stage vector as an indented table with percentages of
/// `total_ns`; zero stages are skipped.
pub fn render_stages(stages: &StageNs, total_ns: u64, out: &mut String) {
    for (stage, ns) in stages {
        if *ns == 0 {
            continue;
        }
        let pct = if total_ns > 0 {
            *ns as f64 * 100.0 / total_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<12} {:>10.3}ms  {pct:>5.1}%\n",
            stage.name(),
            ms(*ns)
        ));
    }
}

impl RequestBreakdown {
    /// JSON form used by `dlhub analyze --json`.
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|(s, ns)| json!({ "stage": s.name(), "ns": ns }))
            .collect();
        json!({
            "span": self.span,
            "servable": self.servable,
            "total_ns": self.total_ns,
            "stages": Value::Array(stages),
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "error": self.error,
        })
    }
}

impl TraceAnalysis {
    /// JSON form used by `dlhub analyze --json`.
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|(s, ns)| json!({ "stage": s.name(), "ns": ns }))
            .collect();
        let requests: Vec<Value> = self.requests.iter().map(|r| r.to_json()).collect();
        json!({
            "trace": self.trace,
            "kind": self.kind,
            "total_ns": self.total_ns,
            "stages": Value::Array(stages),
            "requests": Value::Array(requests),
            "complete": self.complete,
        })
    }

    /// Terminal rendering for `dlhub analyze`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let subject = self
            .requests
            .first()
            .map(|r| r.servable.clone())
            .unwrap_or_default();
        out.push_str(&format!(
            "trace {:#x}  {} {}  total {:.3}ms{}\n",
            self.trace,
            self.kind,
            subject,
            ms(self.total_ns),
            if self.complete { "" } else { "  [incomplete]" },
        ));
        render_stages(&self.stages, self.total_ns, &mut out);
        if self.requests.len() > 1 {
            for req in &self.requests {
                out.push_str(&format!(
                    "  step {}  total {:.3}ms  attempts {}{}{}\n",
                    req.servable,
                    ms(req.total_ns),
                    req.attempts,
                    if req.cache_hit { "  cached" } else { "" },
                    if req.error { "  ERROR" } else { "" },
                ));
            }
        }
        out
    }

    /// The sum of the stage vector — always equals
    /// [`total_ns`](TraceAnalysis::total_ns); exposed so tests and
    /// callers can assert the invariant cheaply.
    pub fn stage_sum(&self) -> u64 {
        self.stages.iter().map(|(_, ns)| ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn span(
        trace: u64,
        span: u64,
        parent: u64,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        attrs: Vec<(&'static str, String)>,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            name,
            start_ns,
            end_ns,
            attrs,
        }
    }

    fn stage(analysis: &TraceAnalysis, s: Stage) -> u64 {
        analysis
            .stages
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, ns)| *ns)
            .unwrap()
    }

    #[test]
    fn synthetic_request_partitions_exactly() {
        // request 0..1000; memo 10..30; attempt 50..950;
        // invocation 100..900; inference 300..800 queued at 150.
        let export = TraceExport {
            spans: vec![
                span(
                    1,
                    10,
                    0,
                    "request",
                    0,
                    1000,
                    vec![("servable", "a/b".into())],
                ),
                span(1, 11, 10, "memo_lookup", 10, 30, vec![]),
                span(1, 12, 10, "attempt", 50, 950, vec![]),
                span(1, 13, 10, "invocation", 100, 900, vec![]),
                span(
                    1,
                    14,
                    13,
                    "inference",
                    300,
                    800,
                    vec![("queued_ns", "150".into())],
                ),
            ],
        };
        let a = analyze(&export, 1).unwrap();
        assert_eq!(a.kind, "request");
        assert_eq!(a.total_ns, 1000);
        assert_eq!(a.stage_sum(), 1000);
        assert!(a.complete);
        assert_eq!(stage(&a, Stage::MemoLookup), 20);
        // attempt 900ns, invocation covers 800 → broker 100.
        assert_eq!(stage(&a, Stage::BrokerWait), 100);
        assert_eq!(stage(&a, Stage::Execute), 500);
        // queued at 150, inference at 300 → 150 replica wait.
        assert_eq!(stage(&a, Stage::ReplicaWait), 150);
        // invocation 800 − 500 execute − 150 wait = 150 dispatch.
        assert_eq!(stage(&a, Stage::TmDispatch), 150);
        // request 1000 − memo 20 − attempt 900 = 80 management.
        assert_eq!(stage(&a, Stage::Management), 80);
    }

    #[test]
    fn cache_hit_is_memo_plus_management() {
        let export = TraceExport {
            spans: vec![
                span(
                    2,
                    20,
                    0,
                    "request",
                    0,
                    100,
                    vec![("servable", "a/b".into()), ("cache_hit", "true".into())],
                ),
                span(2, 21, 20, "memo_lookup", 5, 45, vec![]),
            ],
        };
        let a = analyze(&export, 2).unwrap();
        assert_eq!(a.stage_sum(), 100);
        assert_eq!(stage(&a, Stage::MemoLookup), 40);
        assert_eq!(stage(&a, Stage::Management), 60);
        assert!(a.requests[0].cache_hit);
    }

    #[test]
    fn pipeline_aggregates_steps_and_glue() {
        let export = TraceExport {
            spans: vec![
                span(3, 30, 0, "pipeline", 0, 1000, vec![]),
                span(
                    3,
                    31,
                    30,
                    "request",
                    100,
                    400,
                    vec![("servable", "p/one".into())],
                ),
                span(
                    3,
                    32,
                    30,
                    "request",
                    450,
                    900,
                    vec![("servable", "p/two".into())],
                ),
            ],
        };
        let a = analyze(&export, 3).unwrap();
        assert_eq!(a.kind, "pipeline");
        assert_eq!(a.requests.len(), 2);
        assert_eq!(a.total_ns, 1000);
        assert_eq!(a.stage_sum(), 1000);
        // Steps are pure management here (no attempts recorded), plus
        // 250ns of pipeline glue.
        assert_eq!(stage(&a, Stage::Management), 1000);
        assert!(a.render_text().contains("step p/two"));
    }

    #[test]
    fn batch_flush_accounts_the_batcher_wait() {
        let export = TraceExport {
            spans: vec![
                span(
                    4,
                    40,
                    0,
                    "batch_flush",
                    1000,
                    1600,
                    vec![("servable", "a/b".into()), ("batch_wait_ns", "400".into())],
                ),
                span(4, 41, 40, "attempt", 1100, 1500, vec![]),
            ],
        };
        let a = analyze(&export, 4).unwrap();
        assert_eq!(a.kind, "batch_flush");
        assert_eq!(a.total_ns, 1000); // 600 span + 400 wait
        assert_eq!(a.stage_sum(), 1000);
        assert_eq!(stage(&a, Stage::BatchWait), 400);
        assert_eq!(stage(&a, Stage::BrokerWait), 400);
        assert_eq!(stage(&a, Stage::Management), 200);
    }

    #[test]
    fn incomplete_traces_are_flagged() {
        let export = TraceExport {
            spans: vec![
                span(5, 50, 0, "request", 0, 100, vec![]),
                span(5, 51, 999, "inference", 10, 90, vec![]), // orphan
            ],
        };
        let a = analyze(&export, 5).unwrap();
        assert!(!a.complete);
        assert!(a.render_text().contains("[incomplete]"));
        assert_eq!(a.stage_sum(), a.total_ns);
    }

    #[test]
    fn unrecognized_traces_yield_none() {
        let tracer = Tracer::new();
        tracer.event(None, "slo_alert", vec![]);
        let export = tracer.export(None);
        assert!(analyze(&export, 12345).is_none());
        assert!(analyze_all(&export).is_empty());
    }

    #[test]
    fn aggregate_sums_across_traces() {
        let export = TraceExport {
            spans: vec![
                span(6, 60, 0, "request", 0, 100, vec![]),
                span(7, 70, 0, "request", 0, 300, vec![]),
            ],
        };
        let analyses = analyze_all(&export);
        assert_eq!(analyses.len(), 2);
        let total = aggregate_stages(&analyses);
        assert_eq!(total.iter().map(|(_, ns)| ns).sum::<u64>(), 400);
    }
}
