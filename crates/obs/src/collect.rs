//! The telemetry collector: a background sampler feeding the
//! time-series store from the live metric registry.
//!
//! Mirrors the profiler's lifecycle contract ([`crate::profile`]):
//! the handle starts disabled and statically near-free — one relaxed
//! pointer load on any query path — and [`TelemetryHandle::enable`]
//! arms it for the life of a deployment. With a non-zero interval a
//! `dlhub-telemetry` thread wakes every interval, walks every
//! registered counter, gauge, histogram, per-servable series, and SLO
//! tracker, and writes one cumulative snapshot per instrument into
//! the store (see [`crate::tsdb`] for the slot protocol). The thread
//! holds only a [`std::sync::Weak`] to the collector, so it exits on
//! its own once the deployment drops its `Obs` handles.
//!
//! With a zero interval ([`TelemetryHandle::enable_manual`]) no
//! thread is spawned and the embedder drives sampling passes through
//! [`TelemetryHandle::sample_now`] on a clock of its choosing — the
//! sim harness uses this with its virtual clock, which is what makes
//! seeded runs export bit-identical series.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use crate::metrics::Registry;
use crate::slo::SloRegistry;
use crate::tsdb::ControlSignals;
use crate::tsdb::{default_tiers, servable_series, slo_series, SeriesStore, TierSpec};

/// The instrument surfaces one sampling pass reads.
#[derive(Clone)]
pub struct TelemetrySources {
    /// Metric registry whose instruments are sampled.
    pub metrics: Registry,
    /// SLO registry whose burn rates are sampled.
    pub slo: SloRegistry,
}

struct TelemetryInner {
    interval: Duration,
    store: Arc<SeriesStore>,
    sources: TelemetrySources,
    /// Serializes sampling passes: the store's slot protocol assumes a
    /// single writer, and a manual `sample_now` may race the thread.
    pass: Mutex<()>,
    passes: AtomicU64,
}

impl TelemetryInner {
    /// One sampling pass at virtual time `at_ns`. Returns the number
    /// of series written.
    fn sample(&self, at_ns: u64) -> usize {
        let _guard = self.pass.lock();
        let mut written = 0usize;
        for (name, counter) in self.sources.metrics.counter_entries() {
            self.store.record_counter(&name, at_ns, counter.get());
            written += 1;
        }
        for (name, gauge) in self.sources.metrics.gauge_entries() {
            self.store.record_gauge(&name, at_ns, gauge.get() as f64);
            written += 1;
        }
        for (name, histogram) in self.sources.metrics.histogram_entries() {
            self.store.record_histogram(
                &name,
                at_ns,
                histogram.count(),
                histogram.sum(),
                &histogram.bucket_counts(),
            );
            written += 1;
        }
        for (servable, series) in self.sources.metrics.servable_entries() {
            self.store.record_counter(
                &servable_series(&servable, "requests"),
                at_ns,
                series.requests.get(),
            );
            self.store.record_counter(
                &servable_series(&servable, "cache_hits"),
                at_ns,
                series.cache_hits.get(),
            );
            self.store.record_counter(
                &servable_series(&servable, "errors"),
                at_ns,
                series.errors.get(),
            );
            let lat = &series.request_latency;
            self.store.record_histogram(
                &servable_series(&servable, "request_latency_ns"),
                at_ns,
                lat.count(),
                lat.sum(),
                &lat.bucket_counts(),
            );
            written += 4;
        }
        for snap in self.sources.slo.snapshot() {
            let fast = snap.latency_burn_fast.max(snap.availability_burn_fast);
            let slow = snap.latency_burn_slow.max(snap.availability_burn_slow);
            self.store
                .record_gauge(&slo_series(&snap.servable, "burn_fast"), at_ns, fast);
            self.store
                .record_gauge(&slo_series(&snap.servable, "burn_slow"), at_ns, slow);
            self.store.record_gauge(
                &slo_series(&snap.servable, "firing"),
                at_ns,
                if snap.firing { 1.0 } else { 0.0 },
            );
            written += 3;
        }
        self.store.note_pass(at_ns);
        self.passes.fetch_add(1, Ordering::Relaxed);
        written
    }
}

fn wall_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Deployment-scoped handle to the telemetry collector. Cloning
/// shares the same collector; disabled until [`enable`] is called.
///
/// [`enable`]: TelemetryHandle::enable
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    shared: Arc<OnceLock<Arc<TelemetryInner>>>,
}

impl TelemetryHandle {
    /// A handle that is disabled and stays disabled unless enabled.
    pub fn disabled() -> Self {
        TelemetryHandle::default()
    }

    /// Whether a collector is armed behind this handle.
    pub fn enabled(&self) -> bool {
        self.shared.get().is_some()
    }

    /// Arm the collector with an explicit tier ladder. A non-zero
    /// `interval` spawns the `dlhub-telemetry` sampler thread; zero
    /// means the embedder drives passes via [`sample_now`]. Returns
    /// `true` if this call armed the collector (first enable wins;
    /// later calls are no-ops sharing the existing collector).
    ///
    /// [`sample_now`]: TelemetryHandle::sample_now
    pub fn enable_with_tiers(
        &self,
        interval: Duration,
        tiers: Vec<TierSpec>,
        sources: TelemetrySources,
    ) -> bool {
        let mut created = false;
        let inner = self.shared.get_or_init(|| {
            created = true;
            Arc::new(TelemetryInner {
                interval,
                store: Arc::new(SeriesStore::with_tiers(tiers)),
                sources,
                pass: Mutex::new(()),
                passes: AtomicU64::new(0),
            })
        });
        if created && !interval.is_zero() {
            let weak: Weak<TelemetryInner> = Arc::downgrade(inner);
            std::thread::Builder::new()
                .name("dlhub-telemetry".into())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    match weak.upgrade() {
                        Some(inner) => {
                            inner.sample(wall_now_ns());
                        }
                        None => break,
                    }
                })
                .expect("spawn telemetry sampler");
        }
        created
    }

    /// Arm the collector with the [`default_tiers`] ladder over the
    /// sampling interval (1 s base when `interval` is zero).
    pub fn enable(&self, interval: Duration, sources: TelemetrySources) -> bool {
        let base = if interval.is_zero() {
            Duration::from_secs(1)
        } else {
            interval
        };
        self.enable_with_tiers(interval, default_tiers(base), sources)
    }

    /// Arm the collector without a sampler thread: the embedder calls
    /// [`sample_now`] on its own (possibly virtual) clock. `base_step`
    /// sets the finest tier resolution.
    ///
    /// [`sample_now`]: TelemetryHandle::sample_now
    pub fn enable_manual(&self, base_step: Duration, sources: TelemetrySources) -> bool {
        self.enable_with_tiers(Duration::ZERO, default_tiers(base_step), sources)
    }

    /// The sampler thread's interval; zero when manual or disabled.
    pub fn interval(&self) -> Duration {
        self.shared
            .get()
            .map(|i| i.interval)
            .unwrap_or(Duration::ZERO)
    }

    /// The store's base sampling step; `None` when disabled.
    pub fn base_step(&self) -> Option<Duration> {
        self.shared.get().map(|i| i.store.base_step())
    }

    /// Run one sampling pass now at virtual time `at_ns`. Returns the
    /// number of series written, or `None` when disabled.
    pub fn sample_now(&self, at_ns: u64) -> Option<usize> {
        self.shared.get().map(|i| i.sample(at_ns))
    }

    /// The backing store; `None` when disabled.
    pub fn store(&self) -> Option<Arc<SeriesStore>> {
        self.shared.get().map(|i| Arc::clone(&i.store))
    }

    /// Windowed control-plane view; `None` when disabled.
    pub fn signals(&self) -> Option<ControlSignals> {
        self.store().map(ControlSignals::new)
    }

    /// Sampling passes completed; 0 when disabled.
    pub fn samples_taken(&self) -> u64 {
        self.shared
            .get()
            .map(|i| i.passes.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> TelemetrySources {
        TelemetrySources {
            metrics: Registry::new(),
            slo: SloRegistry::default(),
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = TelemetryHandle::disabled();
        assert!(!handle.enabled());
        assert!(handle.store().is_none());
        assert!(handle.signals().is_none());
        assert!(handle.sample_now(0).is_none());
        assert_eq!(handle.samples_taken(), 0);
        assert_eq!(handle.interval(), Duration::ZERO);
    }

    #[test]
    fn manual_sampling_records_every_instrument_kind() {
        let src = sources();
        src.metrics.counter("hits_total").add(7);
        src.metrics.gauge("depth").set(3);
        src.metrics.histogram("wait_ns").record(1024);
        src.metrics.series("dlhub/echo").requests.add(5);
        let handle = TelemetryHandle::disabled();
        assert!(handle.enable_manual(Duration::from_secs(1), src.clone()));
        let written = handle.sample_now(1_000_000_000).unwrap();
        assert!(written >= 7, "{written}");
        src.metrics.counter("hits_total").add(3);
        handle.sample_now(2_000_000_000).unwrap();
        let store = handle.store().unwrap();
        let rate = store.rate("hits_total", Duration::from_secs(2)).unwrap();
        assert!((rate - 3.0).abs() < 1e-9, "{rate}");
        assert_eq!(handle.samples_taken(), 2);
        assert_eq!(handle.interval(), Duration::ZERO);
        assert_eq!(handle.base_step(), Some(Duration::from_secs(1)));
    }

    #[test]
    fn first_enable_wins_and_clones_share() {
        let handle = TelemetryHandle::disabled();
        let clone = handle.clone();
        assert!(handle.enable_manual(Duration::from_secs(1), sources()));
        assert!(!clone.enable_manual(Duration::from_secs(5), sources()));
        assert!(clone.enabled());
        assert_eq!(clone.base_step(), Some(Duration::from_secs(1)));
    }

    #[test]
    fn background_sampler_collects_on_its_own() {
        let src = sources();
        src.metrics.counter("ticks_total").add(1);
        let handle = TelemetryHandle::disabled();
        assert!(handle.enable(Duration::from_millis(5), src.clone()));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.samples_taken() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "sampler thread never ran"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let store = handle.store().unwrap();
        assert!(store.series_names().iter().any(|n| n == "ticks_total"));
    }
}
