//! Named contention sites: who waits, where, and for how long.
//!
//! Every park/wait point in the stack — broker ring condvar parks,
//! token-semaphore claims, reserve-space waits, the RPC pending-reply
//! table, memo shard locks, read-mostly registry locks — registers a
//! named [`ContentionSite`] and reports each *actual* wait into it:
//! a relaxed-atomic wait counter, a total-wait-nanoseconds counter,
//! and a 64-bucket log2 wait-time histogram (same bucketing as the
//! metrics registry's latency histograms).
//!
//! # Cost discipline
//!
//! Sites are only touched on the slow path: an uncontended lock or a
//! non-empty queue never records anything (callers use `try_lock` /
//! fast-path checks and only time the wait once they are actually
//! about to block). Instruments are resolved once at attach time, so
//! the wait path touches plain atomics, never the registry map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde_json::{json, Value};

/// Histogram buckets (log2 of wait nanoseconds), matching
/// `metrics::Histogram`.
const BUCKETS: usize = 64;

fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// One named wait point. All fields are relaxed atomics; recording a
/// wait is three `fetch_add`s.
pub struct ContentionSite {
    name: String,
    waits: AtomicU64,
    wait_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl ContentionSite {
    fn new(name: &str) -> Self {
        ContentionSite {
            name: name.to_string(),
            waits: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The site's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one wait of `waited`.
    pub fn record(&self, waited: Duration) {
        self.record_ns(waited.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one wait of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Waits recorded so far.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the site's counters.
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            name: self.name.clone(),
            waits: self.waits.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time counters for one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionSnapshot {
    /// Site name (`broker.ring.park:dlhub-tasks`, `memo.shard_lock`, …).
    pub name: String,
    /// Number of recorded waits.
    pub waits: u64,
    /// Total nanoseconds spent waiting.
    pub wait_ns: u64,
    /// log2 wait histogram: `buckets[i]` counts waits with
    /// `ns < 2^i` (and at least `2^(i-1)` for `i > 0`).
    pub buckets: Vec<u64>,
}

impl ContentionSnapshot {
    /// Mean wait in microseconds (0 when nothing waited).
    pub fn mean_us(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.wait_ns as f64 / self.waits as f64 / 1_000.0
        }
    }

    /// Upper bound (ns) of the bucket containing quantile `q` in
    /// `(0, 1]`; `None` when the site never waited.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.waits == 0 {
            return None;
        }
        let rank = ((self.waits as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { 1u64 << i });
            }
        }
        Some(u64::MAX)
    }

    /// JSON object for bundles and bench artifacts.
    pub fn to_json(&self) -> Value {
        json!({
            "site": self.name,
            "waits": self.waits,
            "wait_ns": self.wait_ns,
            "mean_us": self.mean_us(),
            "p99_ns": self.quantile_ns(0.99),
        })
    }
}

/// Registry of named contention sites for one deployment. Cheap to
/// clone; clones share state.
#[derive(Clone, Default)]
pub struct ContentionRegistry {
    sites: Arc<RwLock<BTreeMap<String, Arc<ContentionSite>>>>,
}

impl ContentionRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        ContentionRegistry::default()
    }

    /// Find or create the site named `name`. Callers resolve once at
    /// attach time and keep the `Arc`.
    pub fn site(&self, name: &str) -> Arc<ContentionSite> {
        if let Some(site) = self.sites.read().get(name) {
            return Arc::clone(site);
        }
        let mut sites = self.sites.write();
        Arc::clone(
            sites
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ContentionSite::new(name))),
        )
    }

    /// Snapshot every site, ranked by total wait time (descending).
    pub fn snapshot(&self) -> Vec<ContentionSnapshot> {
        let mut out: Vec<ContentionSnapshot> =
            self.sites.read().values().map(|s| s.snapshot()).collect();
        out.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.name.cmp(&b.name)));
        out
    }
}

/// Render a ranked text table of contention sites for the CLI.
pub fn render_contention(sites: &[ContentionSnapshot]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>10} {:>12} {:>12} {:>12}\n",
        "site", "waits", "total ms", "mean us", "p99 <= us"
    ));
    let mut any = false;
    for site in sites {
        if site.waits == 0 {
            continue;
        }
        any = true;
        let p99_us = site
            .quantile_ns(0.99)
            .map(|ns| format!("{:.1}", ns as f64 / 1_000.0))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<44} {:>10} {:>12.3} {:>12.1} {:>12}\n",
            site.name,
            site.waits,
            site.wait_ns as f64 / 1_000_000.0,
            site.mean_us(),
            p99_us,
        ));
    }
    if !any {
        out.push_str("(no waits recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_buckets() {
        let reg = ContentionRegistry::new();
        let site = reg.site("broker.ring.park:t");
        site.record(Duration::from_micros(10)); // 10_000 ns -> bucket 14
        site.record(Duration::from_micros(10));
        site.record(Duration::from_millis(2)); // 2_000_000 ns -> bucket 21
        let snap = site.snapshot();
        assert_eq!(snap.waits, 3);
        assert_eq!(snap.wait_ns, 2_020_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.buckets[bucket_index(10_000)], 2);
        assert_eq!(snap.buckets[bucket_index(2_000_000)], 1);
        // p99 lands in the slowest occupied bucket's upper bound.
        assert!(snap.quantile_ns(0.99).unwrap() >= 2_000_000);
        assert!(snap.mean_us() > 600.0 && snap.mean_us() < 700.0);
    }

    #[test]
    fn same_name_resolves_to_one_site_across_clones() {
        let reg = ContentionRegistry::new();
        let clone = reg.clone();
        reg.site("x").record_ns(5);
        clone.site("x").record_ns(7);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].waits, 2);
        assert_eq!(snap[0].wait_ns, 12);
    }

    #[test]
    fn snapshot_ranks_by_total_wait() {
        let reg = ContentionRegistry::new();
        reg.site("cheap").record_ns(10);
        reg.site("expensive").record_ns(10_000_000);
        let snap = reg.snapshot();
        assert_eq!(snap[0].name, "expensive");
        assert_eq!(snap[1].name, "cheap");
        let table = render_contention(&snap);
        let expensive_at = table.find("expensive").unwrap();
        let cheap_at = table.find("cheap").unwrap();
        assert!(expensive_at < cheap_at, "{table}");
    }

    #[test]
    fn zero_wait_sites_are_elided_from_the_table() {
        let reg = ContentionRegistry::new();
        reg.site("registered-but-quiet");
        let table = render_contention(&reg.snapshot());
        assert!(!table.contains("registered-but-quiet"), "{table}");
        assert!(table.contains("(no waits recorded)"), "{table}");
    }
}
