//! High-resolution log-linear latency histogram.
//!
//! The 64-bucket log2 [`crate::metrics::Histogram`] is the right tool
//! for always-on hot-path instrumentation (one relaxed `fetch_add`
//! per bucket, 64 slots to snapshot), but its power-of-two buckets
//! cannot state an honest p999: every sample between 16 ms and 32 ms
//! is the same bucket, so the tail quantiles of a distribution that
//! lives in one decade are pure guesswork. This module trades memory
//! for resolution the way HdrHistogram does: each power-of-two range
//! is split into [`HDR_SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantile error at `1 / HDR_SUB_BUCKETS` (~1.6 %) — tight
//! enough that p999/p9999 read from the histogram agree with an
//! exact sort of the raw samples to within noise.
//!
//! Recording stays lock-free (relaxed atomics), so the open-loop
//! workload recorder can share one histogram across client threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde_json::{json, Value};

/// log2 of the linear sub-buckets per power-of-two range.
pub const HDR_SUB_BITS: u32 = 6;

/// Linear sub-buckets per power-of-two range; also the width of the
/// exact range `0..HDR_SUB_BUCKETS` at the bottom of the scale.
pub const HDR_SUB_BUCKETS: u64 = 1 << HDR_SUB_BITS;

/// Half a sub-bucket block: every power-of-two range above the exact
/// bottom block contributes this many slots.
const HALF: u64 = HDR_SUB_BUCKETS / 2;

/// Total slots: the exact bottom block plus one half-block per
/// power-of-two range up to 2^64.
const SLOTS: usize = (HDR_SUB_BUCKETS + (64 - HDR_SUB_BITS as u64) * HALF) as usize;

/// Slot index for a value: exact below [`HDR_SUB_BUCKETS`], then the
/// top [`HDR_SUB_BITS`] bits of the value select a linear sub-bucket
/// inside its power-of-two range.
fn slot_index(v: u64) -> usize {
    if v < HDR_SUB_BUCKETS {
        return v as usize;
    }
    let bits = 64 - v.leading_zeros() as u64; // > HDR_SUB_BITS
    let shift = bits - HDR_SUB_BITS as u64;
    let top = v >> shift; // in [HALF*2 / 2, HDR_SUB_BUCKETS) == [HALF, 2*HALF)
    (HDR_SUB_BUCKETS + (shift - 1) * HALF + (top - HALF)) as usize
}

/// Inclusive lower bound of a slot.
fn slot_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < HDR_SUB_BUCKETS {
        return idx;
    }
    let rest = idx - HDR_SUB_BUCKETS;
    let shift = rest / HALF + 1;
    let top = HALF + rest % HALF;
    top << shift
}

/// Inclusive upper bound of a slot.
fn slot_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < HDR_SUB_BUCKETS {
        return idx;
    }
    let rest = idx - HDR_SUB_BUCKETS;
    let shift = rest / HALF + 1;
    let top = HALF + rest % HALF;
    (top << shift) | ((1u64 << shift) - 1)
}

/// Log-linear histogram: [`HDR_SUB_BUCKETS`] linear sub-buckets per
/// power-of-two range, relative quantile error ≤ `1/HDR_SUB_BUCKETS`.
/// Quantiles rank-interpolate inside the slot and clamp to the
/// recorded min/max, so p0 and p100 are exact.
pub struct HdrHistogram {
    slots: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            slots: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.slots[slot_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Estimated quantile (`0.0 ..= 1.0`): rank-interpolated inside
    /// the target slot, clamped to the recorded min/max. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, slot) in self.slots.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 && seen + n >= target {
                let lo = slot_low(idx);
                let hi = slot_high(idx);
                let rank = target - seen;
                let v = lo + ((hi - lo) as f64 * rank as f64 / n as f64) as u64;
                return Some(v.clamp(self.min(), self.max()));
            }
            seen += n;
        }
        Some(self.max())
    }

    /// Point-in-time summary; `None` when no samples were recorded.
    pub fn summary(&self) -> Option<HdrSummary> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let sum = self.sum();
        Some(HdrSummary {
            count,
            sum,
            mean: sum / count,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            p999: self.quantile(0.999).unwrap_or(0),
            p9999: self.quantile(0.9999).unwrap_or(0),
        })
    }
}

/// Quantile summary of an [`HdrHistogram`]; units are whatever was
/// recorded (nanoseconds for latencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdrSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Integer mean.
    pub mean: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
}

impl HdrSummary {
    /// JSON form used in bench artifacts.
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "p9999": self.p9999,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_bounds_partition_the_value_axis() {
        // Every slot's range is contiguous with its neighbour's, and
        // the index function maps both bounds back to the slot.
        for idx in 0..SLOTS - 1 {
            assert_eq!(slot_index(slot_low(idx)), idx, "low of {idx}");
            assert_eq!(slot_index(slot_high(idx)), idx, "high of {idx}");
            assert_eq!(slot_high(idx) + 1, slot_low(idx + 1), "gap at {idx}");
        }
        assert_eq!(slot_index(u64::MAX), SLOTS - 1);
    }

    #[test]
    fn relative_slot_width_is_bounded() {
        // Above the exact range the slot width over its lower bound
        // never exceeds 1/HALF — the advertised resolution.
        for v in [100u64, 1_000, 65_535, 1 << 20, (1 << 40) + 12345] {
            let idx = slot_index(v);
            let width = slot_high(idx) - slot_low(idx);
            assert!(
                (width as f64) / (slot_low(idx) as f64) <= 1.0 / HALF as f64 + 1e-12,
                "v={v} width={width} low={}",
                slot_low(idx)
            );
        }
    }

    #[test]
    fn quantiles_match_an_exact_sort_oracle_within_resolution() {
        // A deterministic heavy-tailed sample set: quantiles up to
        // p9999 must track the exact sorted ranks within the
        // log-linear resolution (~1.6 %), which the log2 histogram
        // cannot do (its tail error reaches 100 %).
        let h = HdrHistogram::new();
        let mut values = Vec::new();
        let mut x = 88172645463325252u64;
        for _ in 0..200_000 {
            // xorshift64 for a seeded spread over several decades.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 1_000 + x % 10_000_000;
            h.record(v);
            values.push(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 0.9999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let got = h.quantile(q).unwrap();
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.02, "q={q} exact={exact} got={got} err={err}");
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 200_000);
        assert_eq!(s.max, *values.last().unwrap());
        assert_eq!(s.min, values[0]);
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let h = HdrHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.summary().is_none());
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        h.record(42);
        assert_eq!(h.quantile(1.0), Some(42));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 42);
    }
}
