//! dlhub-obs: in-tree observability for the DLHub serving stack.
//!
//! The paper's evaluation (§V-A) rests on three nested measurement
//! points — `inference` at the servable, `invocation` at the Task
//! Manager, and `request` at the Management Service. This crate makes
//! those first-class at runtime:
//!
//! * [`trace`] — `TraceId`/`SpanId` propagation across tiers, spans
//!   recorded into lock-free per-thread rings and drained by a
//!   collector;
//! * [`metrics`] — named counters/gauges and log2-bucket latency
//!   histograms over relaxed atomics, with per-servable series;
//! * exposition — [`MetricsSnapshot`] renders Prometheus text, a CLI
//!   dashboard, and JSON for bench artifacts; [`TraceExport`] renders
//!   JSON dumps and terminal span trees.
//!
//! There is deliberately no process-global state: every deployment
//! (a `ManagementService` plus its Task Managers) shares one [`Obs`]
//! handle, so parallel tests in one process never interleave.

#![warn(missing_docs)]

mod ring;

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry, ServableSeries,
    ServableSnapshot,
};
pub use trace::{now_ns, SpanHandle, SpanRecord, TraceContext, TraceExport, Tracer};

/// One deployment's observability handle: a tracer plus a metrics
/// registry. Cheap to clone; clones share state, so the Management
/// Service, Task Managers, executors, cache and broker of one
/// deployment all record into the same place.
#[derive(Clone, Default)]
pub struct Obs {
    /// Span collector for end-to-end request tracing.
    pub tracer: Tracer,
    /// Counter/gauge/histogram registry.
    pub metrics: Registry,
}

impl Obs {
    /// Fresh handle with empty tracer and registry.
    pub fn new() -> Self {
        Obs::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_tracer_and_registry() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.metrics.counter("x").inc();
        assert_eq!(obs.metrics.counter("x").get(), 1);
        let span = clone.tracer.start_root("request");
        clone.tracer.finish(span);
        assert_eq!(obs.tracer.export(None).spans.len(), 1);
    }
}
