//! dlhub-obs: in-tree observability for the DLHub serving stack.
//!
//! The paper's evaluation (§V-A) rests on three nested measurement
//! points — `inference` at the servable, `invocation` at the Task
//! Manager, and `request` at the Management Service. This crate makes
//! those first-class at runtime:
//!
//! * [`trace`] — `TraceId`/`SpanId` propagation across tiers, spans
//!   recorded into lock-free per-thread rings and drained by a
//!   collector;
//! * [`metrics`] — named counters/gauges and log2-bucket latency
//!   histograms over relaxed atomics, with per-servable series;
//! * exposition — [`MetricsSnapshot`] renders Prometheus text, a CLI
//!   dashboard, and JSON for bench artifacts; [`TraceExport`] renders
//!   JSON dumps and terminal span trees.
//!
//! There is deliberately no process-global state: every deployment
//! (a `ManagementService` plus its Task Managers) shares one [`Obs`]
//! handle, so parallel tests in one process never interleave.

#![warn(missing_docs)]

mod ring;

pub mod analyze;
pub mod collect;
pub mod contention;
pub mod hdr;
pub mod metrics;
pub mod openloop;
pub mod profile;
pub mod recorder;
pub mod slo;
pub mod trace;
pub mod tsdb;

pub use analyze::{
    aggregate_stages, analyze, analyze_all, render_stages, RequestBreakdown, Stage, StageNs,
    TraceAnalysis,
};
pub use collect::{TelemetryHandle, TelemetrySources};
pub use contention::{render_contention, ContentionRegistry, ContentionSite, ContentionSnapshot};
pub use hdr::{HdrHistogram, HdrSummary, HDR_SUB_BUCKETS};
pub use metrics::{
    bucket_bound, bucket_index, bucket_quantile_value, escape_label, BucketSnapshot, Counter,
    Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry, ServableSeries,
    ServableSnapshot,
};
pub use openloop::{OpenLoopRecorder, OpenLoopReport, OpenLoopSample};
pub use profile::{CollapsedStack, FrameGuard, ProfileReport, ProfilerHandle, ThreadSamples};
pub use recorder::{Bundle, BundleTrigger, FlightRecorder, RecorderEvent, RecorderSources};
pub use slo::{SloRegistry, SloSnapshot, SloSpec, SloTracker};
pub use trace::{now_ns, SpanHandle, SpanRecord, TraceContext, TraceExport, Tracer};
pub use tsdb::{
    default_tiers, servable_series, slo_series, ControlSignals, GaugeWindow, SeriesKind,
    SeriesStore, TierSpec, WindowHistogram,
};

use std::time::Duration;

/// One deployment's observability handle: a tracer plus a metrics
/// registry. Cheap to clone; clones share state, so the Management
/// Service, Task Managers, executors, cache and broker of one
/// deployment all record into the same place.
#[derive(Clone, Default)]
pub struct Obs {
    /// Span collector for end-to-end request tracing.
    pub tracer: Tracer,
    /// Counter/gauge/histogram registry.
    pub metrics: Registry,
    /// Per-servable SLO burn-rate trackers.
    pub slo: SloRegistry,
    /// Wall-clock sampling profiler (disabled until
    /// [`enable_profiler`](Obs::enable_profiler)).
    pub profile: ProfilerHandle,
    /// Named park/wait sites across the stack.
    pub contention: ContentionRegistry,
    /// Alert-triggered diagnostic bundles (disabled until
    /// [`enable_recorder`](Obs::enable_recorder)).
    pub recorder: FlightRecorder,
    /// Ring-buffered time-series history over this handle's metrics
    /// and SLOs (disabled until
    /// [`enable_telemetry`](Obs::enable_telemetry)).
    pub telemetry: TelemetryHandle,
}

impl Obs {
    /// Fresh handle with empty tracer and registry.
    pub fn new() -> Self {
        Obs::default()
    }

    /// Start the sampling profiler at `hz` samples per second (`0`
    /// enables manual-sampling mode for deterministic tests). Reaches
    /// every clone of this handle, including ones distributed before
    /// the call. Returns whether this call did the enabling.
    pub fn enable_profiler(&self, hz: u32) -> bool {
        self.profile.enable(hz)
    }

    /// Arm the flight recorder with room for `capacity` bundles,
    /// snapshotting this handle's tracer, metrics, contention table
    /// and profiler on every trigger. Returns whether this call did
    /// the arming.
    pub fn enable_recorder(&self, capacity: usize) -> bool {
        self.recorder.enable(
            capacity,
            RecorderSources {
                tracer: self.tracer.clone(),
                metrics: self.metrics.clone(),
                contention: self.contention.clone(),
                profiler: self.profile.clone(),
            },
        )
    }

    /// Start the telemetry collector sampling this handle's metrics
    /// and SLO registries every `interval` into the time-series store.
    /// Reaches every clone of this handle. Returns whether this call
    /// did the enabling.
    pub fn enable_telemetry(&self, interval: Duration) -> bool {
        self.telemetry.enable(
            interval,
            TelemetrySources {
                metrics: self.metrics.clone(),
                slo: self.slo.clone(),
            },
        )
    }

    /// Arm the telemetry store without a sampler thread: passes are
    /// driven through [`TelemetryHandle::sample_now`] on a caller
    /// clock (the sim harness's virtual clock, typically). `base_step`
    /// sets the finest ring resolution.
    pub fn enable_telemetry_manual(&self, base_step: Duration) -> bool {
        self.telemetry.enable_manual(
            base_step,
            TelemetrySources {
                metrics: self.metrics.clone(),
                slo: self.slo.clone(),
            },
        )
    }

    /// Install an SLO for a servable, wiring its alert transitions into
    /// this handle's tracer, registry (`slo_alerts_fired_total`,
    /// `slo_alerts_active`) and flight recorder.
    pub fn register_slo(&self, spec: SloSpec) {
        self.slo.register_with_recorder(
            spec,
            self.tracer.clone(),
            self.metrics.counter_with_help(
                "slo_alerts_fired_total",
                "SLO alert firing transitions since startup",
            ),
            self.metrics
                .gauge_with_help("slo_alerts_active", "SLO alerts currently firing"),
            self.recorder.clone(),
        );
    }

    /// Record one request outcome against the servable's SLO, if one
    /// is registered. A miss is a single read-locked map lookup.
    pub fn observe_slo(&self, servable: &str, latency: Duration, ok: bool) {
        self.slo.observe(servable, latency, ok);
    }

    /// Full snapshot: the metrics registry plus cross-cutting obs
    /// state — spans dropped by the tracer (ring overflow / store
    /// eviction) and every SLO tracker's burn rates and alert state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.spans_dropped = self.tracer.dropped();
        snap.slos = self.slo.snapshot();
        snap.contention = self.contention.snapshot();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_tracer_and_registry() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.metrics.counter("x").inc();
        assert_eq!(obs.metrics.counter("x").get(), 1);
        let span = clone.tracer.start_root("request");
        clone.tracer.finish(span);
        assert_eq!(obs.tracer.export(None).spans.len(), 1);
    }

    #[test]
    fn obs_snapshot_carries_slos_and_dropped_spans() {
        let obs = Obs::new();
        obs.register_slo(
            SloSpec::new("dlhub/echo", Duration::from_millis(1))
                .latency_objective(0.9)
                .windows(Duration::from_millis(200), Duration::from_secs(2)),
        );
        for _ in 0..20 {
            obs.observe_slo("dlhub/echo", Duration::from_millis(50), true);
        }
        obs.observe_slo("dlhub/not-registered", Duration::from_secs(1), false);
        let snap = obs.snapshot();
        assert_eq!(snap.slos.len(), 1);
        assert!(snap.slos[0].firing, "{:?}", snap.slos[0]);
        assert_eq!(obs.metrics.counter("slo_alerts_fired_total").get(), 1);
        assert_eq!(obs.metrics.gauge("slo_alerts_active").get(), 1);
        assert_eq!(obs.tracer.export(None).named("slo_alert").len(), 1);
        assert_eq!(snap.spans_dropped, 0);
    }

    #[test]
    fn slo_firing_freezes_a_flight_recorder_bundle() {
        let obs = Obs::new();
        obs.enable_recorder(4);
        obs.register_slo(
            SloSpec::new("dlhub/echo", Duration::from_millis(1))
                .latency_objective(0.9)
                .windows(Duration::from_millis(200), Duration::from_secs(2)),
        );
        obs.contention
            .site("broker.ring.park:tasks")
            .record(Duration::from_micros(120));
        for _ in 0..50 {
            obs.observe_slo("dlhub/echo", Duration::from_millis(50), true);
        }
        let bundles = obs.recorder.bundles();
        assert_eq!(bundles.len(), 1, "one firing transition, one bundle");
        let bundle = &bundles[0];
        assert_eq!(bundle.trigger.kind(), "slo_firing");
        assert!(bundle.trigger.summary().contains("dlhub/echo"));
        assert!(bundle
            .contention
            .iter()
            .any(|c| c.name == "broker.ring.park:tasks"));
        // The snapshot carries the contention table too.
        let snap = obs.snapshot();
        assert_eq!(snap.contention.len(), 1);
    }

    #[test]
    fn ring_overflow_is_counted_in_the_snapshot() {
        let obs = Obs::new();
        // A single thread's SPSC ring holds 256 spans between drains;
        // recording more without draining must overflow and be counted.
        for _ in 0..400 {
            obs.tracer.finish(obs.tracer.start_root("request"));
        }
        let snap = obs.snapshot();
        assert!(
            snap.spans_dropped >= 144,
            "expected overflow, got {}",
            snap.spans_dropped
        );
        let prom = snap.render_prometheus();
        assert!(prom.contains("dlhub_spans_dropped_total"), "{prom}");
    }
}
