//! Metrics registry: named counters, gauges and log-scale histograms,
//! plus per-servable series covering the paper's three measurement
//! points (inference / invocation / request, §V-A).
//!
//! Everything on the record path is a relaxed atomic — matching the
//! contention discipline of the serving hot path — and snapshots are
//! taken by reading the atomics without stopping writers, so a
//! snapshot is a consistent-enough view, not a linearisable one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde_json::{json, Value};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Shift the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets. Bucket `i` holds values whose bit length is
/// `i` (i.e. `2^(i-1) <= v < 2^i`), bucket 0 holds zero, and the last
/// bucket absorbs everything above `2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Recent trace ids retained per bucket ([exemplars]). Slots rotate
/// with the bucket's own counter, so a bucket remembers its last few
/// contributing traces without any extra synchronisation.
///
/// [exemplars]: Histogram::record_with_exemplar
pub const EXEMPLAR_SLOTS: usize = 4;

/// Index of the log2 bucket that `v` lands in: `v`'s bit length,
/// clamped to the last bucket. Shared with the telemetry layer so
/// windowed histograms merged from ring slots agree bucket-for-bucket
/// with the live histograms they were sampled from.
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket.
pub fn bucket_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Rank-interpolated quantile estimate inside log2 bucket `idx`: the
/// value at rank `rank` (1-based) of the bucket's `n` samples,
/// assuming they spread uniformly across the bucket's value range.
/// Returning the bucket's *upper bound* instead — the old behaviour —
/// overestimates the tail by up to 2x (a p999 answered from a
/// `[2^k, 2^(k+1))` bucket was always reported as `2^(k+1)-1`).
/// The interpolated value always stays inside the bucket, so it maps
/// back to `idx` under [`bucket_index`].
pub fn bucket_quantile_value(idx: usize, rank: u64, n: u64) -> u64 {
    if idx == 0 {
        return 0;
    }
    let hi = bucket_bound(idx);
    if idx >= HISTOGRAM_BUCKETS - 1 || n == 0 {
        // The overflow bucket has no finite width to interpolate over.
        return hi;
    }
    let lo = bucket_bound(idx - 1) + 1;
    let frac = (rank.min(n)) as f64 / n as f64;
    lo + ((hi - lo) as f64 * frac) as u64
}

/// Fixed-bucket log-scale histogram over `u64` samples (nanoseconds
/// for latencies, raw counts for sizes). Recording is two relaxed
/// `fetch_add`s plus a bucket increment; quantiles are
/// rank-interpolated inside the target bucket, so they are exact to
/// within the in-bucket spread (for honest p999s use the log-linear
/// [`crate::HdrHistogram`] instead).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    exemplars: [[AtomicU64; EXEMPLAR_SLOTS]; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.record_with_exemplar(value, 0);
    }

    /// Record one sample and remember `trace` (when nonzero) as an
    /// exemplar for the sample's bucket. The bucket's pre-increment
    /// count picks the slot, so concurrent writers rotate through the
    /// [`EXEMPLAR_SLOTS`] slots instead of fighting over one.
    pub fn record_with_exemplar(&self, value: u64, trace: u64) {
        let idx = bucket_index(value);
        let seen = self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if trace != 0 {
            self.exemplars[idx][seen as usize % EXEMPLAR_SLOTS].store(trace, Ordering::Relaxed);
        }
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record a duration in nanoseconds with a trace exemplar.
    pub fn record_duration_with_exemplar(&self, d: Duration, trace: u64) {
        self.record_with_exemplar(d.as_nanos().min(u64::MAX as u128) as u64, trace);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated quantile (`0.0 ..= 1.0`): rank-interpolated within
    /// the bucket containing the q-th sample (see
    /// [`bucket_quantile_value`]), so the estimate is off by at most
    /// the in-bucket spread rather than a full power of two. `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 && seen + n >= target {
                return Some(bucket_quantile_value(idx, target - seen, n));
            }
            seen += n;
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Point-in-time summary, `None` when no samples were recorded.
    pub fn summary(&self) -> Option<HistogramSummary> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let sum = self.sum();
        Some(HistogramSummary {
            count,
            sum,
            mean: sum / count.max(1),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        })
    }

    /// All [`HISTOGRAM_BUCKETS`] cumulative bucket counts, empty ones
    /// included — the raw form the telemetry collector samples, so a
    /// per-step histogram stays mergeable by bucket-wise subtraction.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// for Prometheus-style cumulative bucket exposition.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_bound(idx), n))
            })
            .collect()
    }

    /// Non-empty buckets with their retained exemplar trace ids.
    pub fn bucket_snapshots(&self) -> Vec<BucketSnapshot> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| BucketSnapshot {
                    bound: bucket_bound(idx),
                    count: n,
                    exemplars: self.exemplars[idx]
                        .iter()
                        .map(|slot| slot.load(Ordering::Relaxed))
                        .filter(|t| *t != 0)
                        .collect(),
                })
            })
            .collect()
    }
}

/// One non-empty histogram bucket with the traces that recently
/// landed in it. Units match the recorded samples (nanoseconds for
/// latency histograms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Inclusive upper bound of the bucket.
    pub bound: u64,
    /// Samples recorded into the bucket.
    pub count: u64,
    /// Up to [`EXEMPLAR_SLOTS`] recent trace ids from this bucket.
    pub exemplars: Vec<u64>,
}

impl BucketSnapshot {
    /// JSON form used in snapshot exports.
    pub fn to_json(&self) -> Value {
        json!({
            "le_ns": self.bound,
            "count": self.count,
            "exemplars": self.exemplars,
        })
    }
}

/// Scalar digest of a histogram. Units match the recorded samples
/// (nanoseconds for latency histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// JSON form embedded in bench artifacts and CLI output.
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        })
    }
}

/// Pre-resolved metric family for one servable: one registry lookup
/// per request, then plain atomic traffic.
#[derive(Debug, Default)]
pub struct ServableSeries {
    /// Requests answered (hits, misses and failures alike).
    pub requests: Counter,
    /// Requests answered from the memo cache.
    pub cache_hits: Counter,
    /// Requests that returned an error.
    pub errors: Counter,
    /// End-to-end request latency (Management Service), nanoseconds.
    pub request_latency: Histogram,
    /// Task Manager invocation latency, nanoseconds.
    pub invocation_latency: Histogram,
    /// Servable inference latency, nanoseconds.
    pub inference_latency: Histogram,
    /// Batch flush sizes routed to this servable.
    pub batch_sizes: Histogram,
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    series: RwLock<BTreeMap<String, Arc<ServableSeries>>>,
    /// One-line descriptions keyed by metric name, surfaced as
    /// `# HELP` lines in the Prometheus exposition.
    help: RwLock<BTreeMap<String, String>>,
}

/// Named metrics registry. Cheap to clone; clones share state.
///
/// Lookups are read-locked (uncontended after warm-up since callers
/// cache the returned `Arc`s); creation takes the write lock once per
/// name.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().get(name) {
        return Arc::clone(found);
    }
    let mut map = map.write();
    Arc::clone(map.entry(name.to_string()).or_default())
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.inner.counters, name)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.inner.gauges, name)
    }

    /// Get or create a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.inner.histograms, name)
    }

    /// Get or create the per-servable series.
    pub fn series(&self, servable: &str) -> Arc<ServableSeries> {
        get_or_insert(&self.inner.series, servable)
    }

    /// Attach a one-line description to a metric name (emitted as a
    /// `# HELP` line in the Prometheus exposition). The first
    /// description for a name wins, so registration sites may call
    /// this idempotently.
    pub fn describe(&self, name: &str, help: &str) {
        if self.inner.help.read().contains_key(name) {
            return;
        }
        self.inner
            .help
            .write()
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// [`counter`](Self::counter) plus a [`describe`](Self::describe).
    pub fn counter_with_help(&self, name: &str, help: &str) -> Arc<Counter> {
        self.describe(name, help);
        self.counter(name)
    }

    /// [`gauge`](Self::gauge) plus a [`describe`](Self::describe).
    pub fn gauge_with_help(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.describe(name, help);
        self.gauge(name)
    }

    /// [`histogram`](Self::histogram) plus a
    /// [`describe`](Self::describe).
    pub fn histogram_with_help(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.describe(name, help);
        self.histogram(name)
    }

    /// Live counter instruments, name-sorted (telemetry collector
    /// hook: the collector reads the atomics directly rather than
    /// paying for a full snapshot per sampling pass).
    pub fn counter_entries(&self) -> Vec<(String, Arc<Counter>)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Live gauge instruments, name-sorted.
    pub fn gauge_entries(&self) -> Vec<(String, Arc<Gauge>)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Live named histograms, name-sorted.
    pub fn histogram_entries(&self) -> Vec<(String, Arc<Histogram>)> {
        self.inner
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Live per-servable series, name-sorted.
    pub fn servable_entries(&self) -> Vec<(String, Arc<ServableSeries>)> {
        self.inner
            .series
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .iter()
            .filter_map(|(k, v)| v.summary().map(|s| (k.clone(), s)))
            .collect();
        let servables = self
            .inner
            .series
            .read()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    ServableSnapshot {
                        requests: v.requests.get(),
                        cache_hits: v.cache_hits.get(),
                        errors: v.errors.get(),
                        request_latency: v.request_latency.summary(),
                        request_latency_buckets: v.request_latency.bucket_snapshots(),
                        invocation_latency: v.invocation_latency.summary(),
                        inference_latency: v.inference_latency.summary(),
                        batch_sizes: v.batch_sizes.summary(),
                    },
                )
            })
            .collect();
        let help = self
            .inner
            .help
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            servables,
            help,
            spans_dropped: 0,
            slos: Vec::new(),
            contention: Vec::new(),
        }
    }

    /// Snapshot the registry and subtract `baseline`, yielding the
    /// activity *between* the two points — the primitive behind
    /// `dlhub stats --delta` and flight-recorder metric deltas. See
    /// [`MetricsSnapshot::delta_since`] for the exact semantics.
    pub fn snapshot_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        self.snapshot().delta_since(baseline)
    }
}

/// Frozen view of one servable's series.
#[derive(Debug, Clone)]
pub struct ServableSnapshot {
    /// Total requests answered.
    pub requests: u64,
    /// Requests served from the memo cache.
    pub cache_hits: u64,
    /// Requests that errored.
    pub errors: u64,
    /// Request-latency digest (ns), if any samples.
    pub request_latency: Option<HistogramSummary>,
    /// Request-latency buckets with exemplar trace ids, so a tail
    /// bucket links to concrete slow traces.
    pub request_latency_buckets: Vec<BucketSnapshot>,
    /// Invocation-latency digest (ns), if any samples.
    pub invocation_latency: Option<HistogramSummary>,
    /// Inference-latency digest (ns), if any samples.
    pub inference_latency: Option<HistogramSummary>,
    /// Batch-size digest, if any batches flushed.
    pub batch_sizes: Option<HistogramSummary>,
}

/// Frozen view of the whole registry, ready for rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Name-sorted counters.
    pub counters: Vec<(String, u64)>,
    /// Name-sorted gauges.
    pub gauges: Vec<(String, i64)>,
    /// Name-sorted named histograms with at least one sample.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Name-sorted per-servable series.
    pub servables: Vec<(String, ServableSnapshot)>,
    /// Name-sorted metric descriptions registered via
    /// [`Registry::describe`], rendered as `# HELP` lines.
    pub help: Vec<(String, String)>,
    /// Spans lost to ring overflow or store eviction (filled by
    /// [`crate::Obs::snapshot`]; a bare [`Registry::snapshot`] reports
    /// zero). Nonzero means trace analytics may see incomplete trees.
    pub spans_dropped: u64,
    /// Per-servable SLO state (filled by [`crate::Obs::snapshot`]).
    pub slos: Vec<crate::slo::SloSnapshot>,
    /// Named contention sites ranked by total wait time (filled by
    /// [`crate::Obs::snapshot`]).
    pub contention: Vec<crate::contention::ContentionSnapshot>,
}

/// Escape a label value for the Prometheus text exposition format:
/// backslashes, double quotes and newlines must be escaped, everything
/// else passes through. Servable names are user-controlled, so every
/// interpolation into `{label="..."}` goes through here.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape a `# HELP` text for the Prometheus exposition format:
/// backslashes and newlines must be escaped so every help line stays a
/// single physical line.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn latency_line(label: &str, summary: &Option<HistogramSummary>) -> String {
    match summary {
        Some(s) => format!(
            "  {label:<11} p50 {:>9.3}ms  p95 {:>9.3}ms  p99 {:>9.3}ms  mean {:>9.3}ms  n={}\n",
            ms(s.p50),
            ms(s.p95),
            ms(s.p99),
            ms(s.mean),
            s.count
        ),
        None => format!("  {label:<11} (no samples)\n"),
    }
}

impl MetricsSnapshot {
    /// True when nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.servables.is_empty()
    }

    /// The activity between `baseline` (taken earlier) and `self`:
    /// counters, histogram counts/sums, servable traffic, contention
    /// waits and dropped spans become differences; gauges become
    /// level changes (possibly negative). Monotonic fields saturate at
    /// zero if the baseline somehow ran ahead. Histogram quantiles are
    /// *not* re-derivable from two summaries, so the delta keeps the
    /// current quantiles with the delta'd count/sum/mean; SLO state is
    /// point-in-time and is carried over unchanged.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        fn base_u64(pairs: &[(String, u64)], name: &str) -> u64 {
            pairs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        }
        fn summary_delta(
            current: &HistogramSummary,
            baseline: Option<&HistogramSummary>,
        ) -> HistogramSummary {
            let (bcount, bsum) = baseline.map(|b| (b.count, b.sum)).unwrap_or((0, 0));
            let count = current.count.saturating_sub(bcount);
            let sum = current.sum.saturating_sub(bsum);
            HistogramSummary {
                count,
                sum,
                mean: sum.checked_div(count).unwrap_or(0),
                ..*current
            }
        }
        fn opt_summary_delta(
            current: &Option<HistogramSummary>,
            baseline: &Option<HistogramSummary>,
        ) -> Option<HistogramSummary> {
            current
                .as_ref()
                .map(|c| summary_delta(c, baseline.as_ref()))
        }
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(base_u64(&baseline.counters, n))))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| {
                let base = baseline
                    .gauges
                    .iter()
                    .find(|(bn, _)| bn == n)
                    .map(|(_, bv)| *bv)
                    .unwrap_or(0);
                (n.clone(), v - base)
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, s)| {
                let base = baseline
                    .histograms
                    .iter()
                    .find(|(bn, _)| bn == n)
                    .map(|(_, bs)| bs);
                (n.clone(), summary_delta(s, base))
            })
            .filter(|(_, s)| s.count > 0)
            .collect();
        let servables = self
            .servables
            .iter()
            .map(|(name, s)| {
                let base = baseline
                    .servables
                    .iter()
                    .find(|(bn, _)| bn == name)
                    .map(|(_, bs)| bs);
                let bucket_base = |bound: u64| {
                    base.map(|b| {
                        b.request_latency_buckets
                            .iter()
                            .find(|bb| bb.bound == bound)
                            .map(|bb| bb.count)
                            .unwrap_or(0)
                    })
                    .unwrap_or(0)
                };
                let snapshot = ServableSnapshot {
                    requests: s
                        .requests
                        .saturating_sub(base.map(|b| b.requests).unwrap_or(0)),
                    cache_hits: s
                        .cache_hits
                        .saturating_sub(base.map(|b| b.cache_hits).unwrap_or(0)),
                    errors: s.errors.saturating_sub(base.map(|b| b.errors).unwrap_or(0)),
                    request_latency: opt_summary_delta(
                        &s.request_latency,
                        &base.and_then(|b| b.request_latency),
                    ),
                    request_latency_buckets: s
                        .request_latency_buckets
                        .iter()
                        .map(|b| BucketSnapshot {
                            bound: b.bound,
                            count: b.count.saturating_sub(bucket_base(b.bound)),
                            exemplars: b.exemplars.clone(),
                        })
                        .filter(|b| b.count > 0)
                        .collect(),
                    invocation_latency: opt_summary_delta(
                        &s.invocation_latency,
                        &base.and_then(|b| b.invocation_latency),
                    ),
                    inference_latency: opt_summary_delta(
                        &s.inference_latency,
                        &base.and_then(|b| b.inference_latency),
                    ),
                    batch_sizes: opt_summary_delta(
                        &s.batch_sizes,
                        &base.and_then(|b| b.batch_sizes),
                    ),
                };
                (name.clone(), snapshot)
            })
            .collect();
        let contention = self
            .contention
            .iter()
            .map(|site| {
                let base = baseline.contention.iter().find(|b| b.name == site.name);
                crate::contention::ContentionSnapshot {
                    name: site.name.clone(),
                    waits: site
                        .waits
                        .saturating_sub(base.map(|b| b.waits).unwrap_or(0)),
                    wait_ns: site
                        .wait_ns
                        .saturating_sub(base.map(|b| b.wait_ns).unwrap_or(0)),
                    buckets: site
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            c.saturating_sub(
                                base.and_then(|b| b.buckets.get(i).copied()).unwrap_or(0),
                            )
                        })
                        .collect(),
                }
            })
            .filter(|site| site.waits > 0)
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            servables,
            help: self.help.clone(),
            spans_dropped: self.spans_dropped.saturating_sub(baseline.spans_dropped),
            slos: self.slos.clone(),
            contention,
        }
    }

    /// JSON form (latencies in nanoseconds) embedded in `BENCH_*.json`
    /// artifacts.
    pub fn to_json(&self) -> Value {
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|(k, v)| json!({ "name": k.clone(), "value": *v }))
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|(k, v)| json!({ "name": k.clone(), "value": *v }))
            .collect();
        let histograms: Vec<Value> = self
            .histograms
            .iter()
            .map(|(k, s)| json!({ "name": k.clone(), "summary": s.to_json() }))
            .collect();
        let servables: Vec<Value> = self
            .servables
            .iter()
            .map(|(k, s)| {
                let opt = |o: &Option<HistogramSummary>| match o {
                    Some(s) => s.to_json(),
                    None => Value::Null,
                };
                json!({
                    "servable": k.clone(),
                    "requests": s.requests,
                    "cache_hits": s.cache_hits,
                    "errors": s.errors,
                    "request_latency_ns": opt(&s.request_latency),
                    "request_latency_buckets": s
                        .request_latency_buckets
                        .iter()
                        .map(BucketSnapshot::to_json)
                        .collect::<Vec<Value>>(),
                    "invocation_latency_ns": opt(&s.invocation_latency),
                    "inference_latency_ns": opt(&s.inference_latency),
                    "batch_sizes": opt(&s.batch_sizes),
                })
            })
            .collect();
        let slos: Vec<Value> = self.slos.iter().map(|s| s.to_json()).collect();
        let contention: Vec<Value> = self.contention.iter().map(|s| s.to_json()).collect();
        json!({
            "counters": Value::Array(counters),
            "gauges": Value::Array(gauges),
            "histograms": Value::Array(histograms),
            "servables": Value::Array(servables),
            "spans_dropped": self.spans_dropped,
            "slos": Value::Array(slos),
            "contention": Value::Array(contention),
        })
    }

    /// Prometheus text exposition (latencies as seconds, summary
    /// quantiles rather than raw buckets). Metric names carrying a
    /// registered description get a `# HELP` line before their
    /// `# TYPE`.
    pub fn render_prometheus(&self) -> String {
        let help_for = |name: &str| -> Option<&str> {
            self.help
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.as_str())
        };
        let mut out = String::new();
        for (name, value) in &self.counters {
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP dlhub_{name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE dlhub_{name} counter\n"));
            out.push_str(&format!("dlhub_{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP dlhub_{name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE dlhub_{name} gauge\n"));
            out.push_str(&format!("dlhub_{name} {value}\n"));
        }
        for (name, s) in &self.histograms {
            if let Some(help) = help_for(name) {
                out.push_str(&format!("# HELP dlhub_{name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE dlhub_{name} summary\n"));
            for (q, v) in [(0.5, s.p50), (0.95, s.p95), (0.99, s.p99)] {
                out.push_str(&format!("dlhub_{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("dlhub_{name}_sum {}\n", s.sum));
            out.push_str(&format!("dlhub_{name}_count {}\n", s.count));
        }
        out.push_str(
            "# HELP dlhub_spans_dropped_total Spans lost to ring overflow or store eviction.\n",
        );
        out.push_str("# TYPE dlhub_spans_dropped_total counter\n");
        out.push_str(&format!(
            "dlhub_spans_dropped_total {}\n",
            self.spans_dropped
        ));
        if !self.servables.is_empty() {
            out.push_str(
                "# HELP dlhub_servable_requests_total Requests answered per servable (hits, misses and failures alike).\n\
                 # TYPE dlhub_servable_requests_total counter\n\
                 # HELP dlhub_servable_cache_hits_total Requests answered from the memo cache.\n\
                 # TYPE dlhub_servable_cache_hits_total counter\n\
                 # HELP dlhub_servable_errors_total Requests that returned an error.\n\
                 # TYPE dlhub_servable_errors_total counter\n",
            );
        }
        for (servable, s) in &self.servables {
            let servable = escape_label(servable);
            let label = format!("{{servable=\"{servable}\"}}");
            out.push_str(&format!(
                "dlhub_servable_requests_total{label} {}\n",
                s.requests
            ));
            out.push_str(&format!(
                "dlhub_servable_cache_hits_total{label} {}\n",
                s.cache_hits
            ));
            out.push_str(&format!(
                "dlhub_servable_errors_total{label} {}\n",
                s.errors
            ));
            for (stage, summary) in [
                ("request", &s.request_latency),
                ("invocation", &s.invocation_latency),
                ("inference", &s.inference_latency),
            ] {
                if let Some(sum) = summary {
                    for (q, v) in [(0.5, sum.p50), (0.95, sum.p95), (0.99, sum.p99)] {
                        out.push_str(&format!(
                            "dlhub_servable_{stage}_latency_seconds{{servable=\"{servable}\",quantile=\"{q}\"}} {:.9}\n",
                            secs(v)
                        ));
                    }
                    out.push_str(&format!(
                        "dlhub_servable_{stage}_latency_seconds_sum{label} {:.9}\n",
                        secs(sum.sum)
                    ));
                    out.push_str(&format!(
                        "dlhub_servable_{stage}_latency_seconds_count{label} {}\n",
                        sum.count
                    ));
                }
            }
            // Cumulative request-latency buckets with OpenMetrics
            // exemplars: a tail bucket links straight to recent traces
            // that landed in it.
            let mut cumulative = 0u64;
            for bucket in &s.request_latency_buckets {
                cumulative += bucket.count;
                let le = if bucket.bound == u64::MAX {
                    "+Inf".to_string()
                } else {
                    format!("{:.9}", secs(bucket.bound))
                };
                let exemplar = match bucket.exemplars.last() {
                    Some(trace) => {
                        format!(" # {{trace_id=\"{trace:#x}\"}} {:.9}", secs(bucket.bound))
                    }
                    None => String::new(),
                };
                out.push_str(&format!(
                    "dlhub_servable_request_latency_seconds_bucket{{servable=\"{servable}\",le=\"{le}\"}} {cumulative}{exemplar}\n",
                ));
            }
            if let Some(batch) = &s.batch_sizes {
                out.push_str(&format!(
                    "dlhub_servable_batch_size{{servable=\"{servable}\",quantile=\"0.5\"}} {}\n",
                    batch.p50
                ));
                out.push_str(&format!(
                    "dlhub_servable_batch_size_count{label} {}\n",
                    batch.count
                ));
            }
        }
        if !self.slos.is_empty() {
            out.push_str(
                "# HELP dlhub_slo_burn_rate Error-budget burn rate per objective and window.\n\
                 # TYPE dlhub_slo_burn_rate gauge\n\
                 # HELP dlhub_slo_firing Whether the multi-window SLO alert is firing.\n\
                 # TYPE dlhub_slo_firing gauge\n",
            );
        }
        for slo in &self.slos {
            let servable = escape_label(&slo.servable);
            for (objective, fast, slow) in [
                ("latency", slo.latency_burn_fast, slo.latency_burn_slow),
                (
                    "availability",
                    slo.availability_burn_fast,
                    slo.availability_burn_slow,
                ),
            ] {
                for (window, burn) in [("fast", fast), ("slow", slow)] {
                    out.push_str(&format!(
                        "dlhub_slo_burn_rate{{servable=\"{servable}\",objective=\"{objective}\",window=\"{window}\"}} {burn:.6}\n",
                    ));
                }
            }
            out.push_str(&format!(
                "dlhub_slo_firing{{servable=\"{servable}\"}} {}\n",
                u64::from(slo.firing)
            ));
            out.push_str(&format!(
                "dlhub_slo_alerts_fired_total{{servable=\"{servable}\"}} {}\n",
                slo.alerts_fired
            ));
        }
        if !self.contention.is_empty() {
            out.push_str("# TYPE dlhub_contention_waits_total counter\n");
            out.push_str("# TYPE dlhub_contention_wait_seconds_total counter\n");
            for site in &self.contention {
                let name = escape_label(&site.name);
                out.push_str(&format!(
                    "dlhub_contention_waits_total{{site=\"{name}\"}} {}\n",
                    site.waits
                ));
                out.push_str(&format!(
                    "dlhub_contention_wait_seconds_total{{site=\"{name}\"}} {:.9}\n",
                    secs(site.wait_ns)
                ));
                // Cumulative log2 wait-time buckets, elided when empty.
                let mut cumulative = 0u64;
                for (idx, &count) in site.buckets.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    cumulative += count;
                    let le = if idx >= site.buckets.len() - 1 {
                        "+Inf".to_string()
                    } else {
                        format!("{:.9}", secs((1u64 << idx) - 1))
                    };
                    out.push_str(&format!(
                        "dlhub_contention_wait_seconds_bucket{{site=\"{name}\",le=\"{le}\"}} {cumulative}\n",
                    ));
                }
            }
        }
        out
    }

    /// Human-oriented per-servable dashboard for the CLI.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        for (servable, s) in &self.servables {
            let hit_pct = if s.requests > 0 {
                s.cache_hits as f64 * 100.0 / s.requests as f64
            } else {
                0.0
            };
            out.push_str(&format!("servable {servable}\n"));
            out.push_str(&format!(
                "  requests {}   cache-hits {} ({hit_pct:.1}%)   errors {}\n",
                s.requests, s.cache_hits, s.errors
            ));
            out.push_str(&latency_line("request", &s.request_latency));
            out.push_str(&latency_line("invocation", &s.invocation_latency));
            out.push_str(&latency_line("inference", &s.inference_latency));
            if let Some(batch) = &s.batch_sizes {
                out.push_str(&format!(
                    "  batch-size  p50 {}  p95 {}  flushes {}\n",
                    batch.p50, batch.p95, batch.count
                ));
            }
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("totals\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} {value}\n"));
            }
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} {value}\n"));
            }
        }
        for (name, s) in &self.histograms {
            out.push_str(&format!(
                "histogram {name}  p50 {}  p95 {}  p99 {}  n={}\n",
                s.p50, s.p95, s.p99, s.count
            ));
        }
        if self.spans_dropped > 0 {
            out.push_str(&format!(
                "spans dropped {} (trace analytics may be incomplete)\n",
                self.spans_dropped
            ));
        }
        if !self.slos.is_empty() {
            out.push_str(&self.render_slos());
        }
        if out.is_empty() {
            out.push_str("no metrics recorded\n");
        }
        out
    }

    /// Per-servable SLO table for the CLI (`dlhub slo`).
    pub fn render_slos(&self) -> String {
        if self.slos.is_empty() {
            return "no SLOs configured\n".to_string();
        }
        let mut out = String::new();
        for slo in &self.slos {
            out.push_str(&slo.render_text());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_bracket_values() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 17, 1024, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_index(v)));
        }
    }

    #[test]
    fn histogram_quantiles_are_log2_accurate() {
        let h = Histogram::new();
        assert!(h.summary().is_none());
        assert!(h.quantile(0.5).is_none());
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.mean, 500);
        // The true p50 is 500; rank interpolation inside the 256..511
        // bucket lands within a few counts of it (the old
        // bucket-bound answer was pinned to 511).
        assert!(s.p50 >= 495 && s.p50 <= 505, "p50={}", s.p50);
        // p99's bucket (512..1023) is only filled up to 1000, so the
        // uniform-spread assumption overshoots slightly — but stays
        // inside the bucket instead of pinning to 1023.
        assert!(s.p99 >= 990 && s.p99 < 1024, "p99={}", s.p99);
    }

    #[test]
    fn interpolated_quantiles_track_an_exact_sort_oracle() {
        // Uniform one-sample-per-value fills every bucket uniformly,
        // which is exactly the interpolation model: the estimate must
        // track the sorted-rank oracle closely at every quantile, not
        // just land in the right power-of-two bucket.
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..4096u64).map(|i| (i * 2_654_435_761) % 60_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let got = h.quantile(q).unwrap();
            // Same bucket as the oracle, and within the in-bucket
            // uniform-spread error (far tighter than the 2x the old
            // bucket-bound estimate allowed).
            assert_eq!(bucket_index(got), bucket_index(exact), "q={q}");
            let err = (got as f64 - exact as f64).abs() / exact.max(1) as f64;
            assert!(err < 0.35, "q={q} exact={exact} got={got}");
        }
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let reg = Registry::new();
        reg.counter("broker_send_total").add(3);
        reg.counter("broker_send_total").add(4);
        assert_eq!(reg.counter("broker_send_total").get(), 7);
        reg.gauge("queue_depth").set(5);
        reg.gauge("queue_depth").add(-2);
        assert_eq!(reg.gauge("queue_depth").get(), 3);
        let series = reg.series("a/b");
        series.requests.inc();
        assert_eq!(reg.series("a/b").requests.get(), 1);
    }

    #[test]
    fn snapshot_renders_everywhere_without_panicking() {
        let reg = Registry::new();
        reg.counter("broker_send_total").add(2);
        reg.gauge("async_pool_active").set(1);
        reg.histogram("queue_wait_ns").record(1500);
        let series = reg.series("dlhub/echo");
        series.requests.add(10);
        series.cache_hits.add(9);
        series
            .request_latency
            .record_duration(Duration::from_micros(120));
        series.batch_sizes.record(4);

        let snap = reg.snapshot();
        assert!(!snap.is_empty());
        let prom = snap.render_prometheus();
        assert!(prom.contains("dlhub_broker_send_total 2"));
        assert!(prom.contains("dlhub_servable_requests_total{servable=\"dlhub/echo\"} 10"));
        assert!(prom.contains("dlhub_servable_request_latency_seconds"));
        let dash = snap.render_dashboard();
        assert!(dash.contains("servable dlhub/echo"));
        assert!(dash.contains("cache-hits 9 (90.0%)"));
        let j = serde_json::to_string(&snap.to_json()).unwrap();
        assert!(j.contains("\"servable\":\"dlhub/echo\""));
        assert!(j.contains("\"invocation_latency_ns\":null"));
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.render_dashboard(), "no metrics recorded\n");
    }

    #[test]
    fn label_values_are_escaped_in_prometheus_output() {
        assert_eq!(escape_label("dlhub/echo"), "dlhub/echo");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        let reg = Registry::new();
        reg.series("evil\"name\\with\nnewline").requests.inc();
        let prom = reg.snapshot().render_prometheus();
        assert!(
            prom.contains("{servable=\"evil\\\"name\\\\with\\nnewline\"} 1"),
            "{prom}"
        );
        // Every emitted line is a single physical line: the raw
        // newline never leaks into the exposition.
        assert!(prom
            .lines()
            .all(|l| l.contains("evil") || !l.contains("newline")));
    }

    #[test]
    fn exemplars_rotate_per_bucket_and_surface_everywhere() {
        let h = Histogram::new();
        // Five samples into one bucket with traces 1..=5: the oldest
        // rotates out, the rest stay (slot = pre-increment count mod 4).
        for trace in 1..=5u64 {
            h.record_with_exemplar(100, trace);
        }
        h.record_with_exemplar(1 << 40, 99); // tail bucket
        h.record(7); // no exemplar
        let buckets = h.bucket_snapshots();
        let b100 = buckets.iter().find(|b| b.count == 5).unwrap();
        assert_eq!(b100.exemplars.len(), 4);
        assert!(b100.exemplars.contains(&5));
        assert!(!b100.exemplars.contains(&1));
        let tail = buckets.iter().find(|b| b.exemplars == vec![99]).unwrap();
        assert_eq!(tail.count, 1);
        let b7 = buckets
            .iter()
            .find(|b| b.count == 1 && b.exemplars.is_empty());
        assert!(b7.is_some(), "{buckets:?}");

        let reg = Registry::new();
        reg.series("dlhub/echo")
            .request_latency
            .record_with_exemplar(1000, 0x2a);
        let snap = reg.snapshot();
        let (_, s) = &snap.servables[0];
        assert_eq!(s.request_latency_buckets[0].exemplars, vec![0x2a]);
        let prom = snap.render_prometheus();
        assert!(
            prom.contains(
                "_bucket{servable=\"dlhub/echo\",le=\"0.000001023\"} 1 # {trace_id=\"0x2a\"}"
            ),
            "{prom}"
        );
        assert!(prom.contains("dlhub_spans_dropped_total 0"), "{prom}");
        let j = serde_json::to_string(&snap.to_json()).unwrap();
        assert!(j.contains("\"request_latency_buckets\""), "{j}");
        assert!(j.contains("\"exemplars\":[42]"), "{j}");
        assert!(j.contains("\"spans_dropped\":0"), "{j}");
    }

    #[test]
    fn snapshot_since_yields_only_the_activity_between_points() {
        let reg = Registry::new();
        reg.counter("requests_total").add(10);
        reg.gauge("depth").set(4);
        let series = reg.series("dlhub/echo");
        series.requests.add(10);
        series.cache_hits.add(5);
        series.request_latency.record(1_000);
        let baseline = reg.snapshot();

        reg.counter("requests_total").add(7);
        reg.counter("born_after_baseline").add(3);
        reg.gauge("depth").set(1);
        series.requests.add(2);
        series.request_latency.record(2_000);
        series.request_latency.record(2_000);

        let delta = reg.snapshot_since(&baseline);
        let counter = |name: &str| {
            delta
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("requests_total"), Some(7));
        assert_eq!(counter("born_after_baseline"), Some(3));
        assert_eq!(delta.gauges, vec![("depth".to_string(), -3)]);
        let (_, s) = &delta.servables[0];
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 0);
        let lat = s.request_latency.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 4_000);
        assert_eq!(lat.mean, 2_000);
        // Bucket deltas drop the baseline-only bucket entirely.
        assert_eq!(s.request_latency_buckets.len(), 1);
        assert_eq!(s.request_latency_buckets[0].count, 2);

        // A delta against the current state is all zeros.
        let now = reg.snapshot();
        let none = reg.snapshot_since(&now);
        assert!(none.counters.iter().all(|(_, v)| *v == 0));
        assert!(none.histograms.is_empty());
    }

    #[test]
    fn contention_sites_render_in_prometheus_and_json() {
        let contention = crate::contention::ContentionRegistry::new();
        contention
            .site("broker.ring.park:dlhub-tasks")
            .record(Duration::from_micros(100));
        let mut snap = Registry::new().snapshot();
        snap.contention = contention.snapshot();
        let prom = snap.render_prometheus();
        assert!(
            prom.contains("dlhub_contention_waits_total{site=\"broker.ring.park:dlhub-tasks\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("dlhub_contention_wait_seconds_total{site=\"broker.ring.park:dlhub-tasks\"} 0.000100000"),
            "{prom}"
        );
        assert!(
            prom.contains("dlhub_contention_wait_seconds_bucket"),
            "{prom}"
        );
        let j = serde_json::to_string(&snap.to_json()).unwrap();
        assert!(
            j.contains("\"site\":\"broker.ring.park:dlhub-tasks\""),
            "{j}"
        );
    }

    #[test]
    fn help_lines_render_before_type_lines() {
        let reg = Registry::new();
        reg.counter_with_help("broker_send_total", "Messages accepted by the broker.")
            .add(2);
        reg.gauge_with_help("async_queue_depth", "Jobs waiting in the injector queue.")
            .set(3);
        reg.histogram_with_help("broker_queue_wait_ns", "Queue wait per message, ns.")
            .record(10);
        // First description wins; later ones are ignored.
        reg.describe("broker_send_total", "a different story");
        reg.describe("weird_help", "text with \\ and\nnewline");
        reg.counter("weird_help").inc();
        let prom = reg.snapshot().render_prometheus();
        let send_help = prom
            .lines()
            .position(|l| l == "# HELP dlhub_broker_send_total Messages accepted by the broker.");
        let send_type = prom
            .lines()
            .position(|l| l == "# TYPE dlhub_broker_send_total counter");
        assert!(send_help.is_some(), "{prom}");
        assert!(send_help < send_type, "{prom}");
        assert!(
            prom.contains("# HELP dlhub_async_queue_depth Jobs waiting in the injector queue."),
            "{prom}"
        );
        assert!(
            prom.contains("# HELP dlhub_broker_queue_wait_ns Queue wait per message, ns."),
            "{prom}"
        );
        assert!(!prom.contains("a different story"), "{prom}");
        // Help text is escaped onto one physical line.
        assert!(prom.contains("text with \\\\ and\\nnewline"), "{prom}");
        // Undescribed metrics still render without a HELP line.
        reg.counter("bare").inc();
        let prom = reg.snapshot().render_prometheus();
        assert!(prom.contains("# TYPE dlhub_bare counter"), "{prom}");
        assert!(!prom.contains("# HELP dlhub_bare"), "{prom}");
    }

    #[test]
    fn entries_expose_live_instruments() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(5);
        reg.series("s/v").requests.inc();
        let counters = reg.counter_entries();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].0, "c");
        assert_eq!(counters[0].1.get(), 7);
        assert_eq!(reg.gauge_entries()[0].1.get(), -2);
        let (name, h) = &reg.histogram_entries()[0];
        assert_eq!(name, "h");
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 1);
        assert_eq!(buckets[bucket_index(5)], 1);
        assert_eq!(reg.servable_entries()[0].1.requests.get(), 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Registry::new();
        let series = reg.series("hot");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let series = Arc::clone(&series);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        series.requests.inc();
                        series.request_latency.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(series.requests.get(), 80_000);
        assert_eq!(series.request_latency.count(), 80_000);
    }
}
