//! Coordinated-omission-correct open-loop latency recording.
//!
//! A closed-loop client measures latency from the moment it *sent* a
//! request — but it only sends after the previous reply arrives, so
//! every stall in the service quietly pauses the load and deletes the
//! samples that would have shown the stall. That is coordinated
//! omission. An open-loop harness fixes it by deciding *when each
//! request should start* up front, from a seeded arrival schedule,
//! and measuring every request from that intended start: a request
//! that sat in the generator's backlog because the service was slow
//! carries its backlog wait in its recorded latency.
//!
//! [`OpenLoopRecorder`] stamps each request with three wall-clock
//! offsets — intended start (from the schedule), actual start (when a
//! client thread picked it up) and completion — and feeds two
//! side-by-side [`HdrHistogram`]s: the **corrected** series measures
//! `completed - intended`, the **uncorrected** series measures
//! `completed - started` (what a closed-loop bench would have
//! reported). The gap between their tails *is* the coordinated
//! omission the closed-loop number hides.

use parking_lot::Mutex;

use serde_json::{json, Value};

use crate::hdr::{HdrHistogram, HdrSummary};

/// One recorded request: schedule stamp, pickup stamp, completion
/// stamp (all nanosecond offsets from the harness epoch) and the
/// request's trace id for stage attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopSample {
    /// When the arrival schedule said this request starts.
    pub intended_ns: u64,
    /// When a client thread actually dequeued and sent it.
    pub started_ns: u64,
    /// When the reply arrived.
    pub completed_ns: u64,
    /// Trace id of the request's span tree (0 when untraced).
    pub trace: u64,
}

impl OpenLoopSample {
    /// Latency measured from the *intended* start: service time plus
    /// any backlog the request accumulated behind a slow service.
    pub fn corrected_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.intended_ns)
    }

    /// Latency a closed-loop client would have reported: measured
    /// from the actual send, blind to backlog.
    pub fn uncorrected_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.started_ns)
    }

    /// Time the request waited in the generator's backlog before a
    /// client thread picked it up.
    pub fn backlog_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.intended_ns)
    }
}

/// Thread-safe recorder for one open-loop run: corrected and
/// uncorrected [`HdrHistogram`]s plus the raw per-request samples
/// (kept for trace-level tail attribution).
#[derive(Default)]
pub struct OpenLoopRecorder {
    corrected: HdrHistogram,
    uncorrected: HdrHistogram,
    backlog: HdrHistogram,
    samples: Mutex<Vec<OpenLoopSample>>,
}

impl OpenLoopRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        OpenLoopRecorder::default()
    }

    /// Record one completed request. Since `intended_ns <=
    /// started_ns` by construction (a request cannot be sent before
    /// its schedule slot), the corrected latency is always >= the
    /// uncorrected one.
    pub fn record(&self, sample: OpenLoopSample) {
        self.corrected.record(sample.corrected_ns());
        self.uncorrected.record(sample.uncorrected_ns());
        self.backlog.record(sample.backlog_ns());
        self.samples.lock().push(sample);
    }

    /// Requests recorded so far.
    pub fn count(&self) -> u64 {
        self.corrected.count()
    }

    /// The corrected (intended-start) latency histogram.
    pub fn corrected(&self) -> &HdrHistogram {
        &self.corrected
    }

    /// The uncorrected (actual-start) latency histogram.
    pub fn uncorrected(&self) -> &HdrHistogram {
        &self.uncorrected
    }

    /// Copy of every recorded sample, in record order.
    pub fn samples(&self) -> Vec<OpenLoopSample> {
        self.samples.lock().clone()
    }

    /// The `n` slowest samples by corrected latency, slowest first —
    /// the requests whose traces explain where the p999 comes from.
    pub fn slowest(&self, n: usize) -> Vec<OpenLoopSample> {
        let mut all = self.samples();
        all.sort_by_key(|s| std::cmp::Reverse(s.corrected_ns()));
        all.truncate(n);
        all
    }

    /// Side-by-side report; `None` until something was recorded.
    pub fn report(&self) -> Option<OpenLoopReport> {
        let corrected = self.corrected.summary()?;
        let uncorrected = self.uncorrected.summary()?;
        let backlog = self.backlog.summary()?;
        Some(OpenLoopReport {
            corrected,
            uncorrected,
            backlog,
        })
    }
}

/// Corrected vs uncorrected tails for one open-loop run. The
/// `gap_*` accessors quantify the coordinated omission a closed-loop
/// bench of the same run would have hidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopReport {
    /// Latency from intended start (includes generator backlog).
    pub corrected: HdrSummary,
    /// Latency from actual send (what closed-loop would report).
    pub uncorrected: HdrSummary,
    /// Generator backlog wait on its own.
    pub backlog: HdrSummary,
}

impl OpenLoopReport {
    /// Coordinated-omission gap at the 99th percentile, nanoseconds.
    pub fn gap_p99_ns(&self) -> u64 {
        self.corrected.p99.saturating_sub(self.uncorrected.p99)
    }

    /// Coordinated-omission gap at the 99.9th percentile.
    pub fn gap_p999_ns(&self) -> u64 {
        self.corrected.p999.saturating_sub(self.uncorrected.p999)
    }

    /// JSON form used in `BENCH_workloads.json`.
    pub fn to_json(&self) -> Value {
        json!({
            "corrected": self.corrected.to_json(),
            "uncorrected": self.uncorrected.to_json(),
            "backlog": self.backlog.to_json(),
            "gap_p99_ns": self.gap_p99_ns(),
            "gap_p999_ns": self.gap_p999_ns(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrected_latency_includes_backlog() {
        let rec = OpenLoopRecorder::new();
        // Scheduled at 0, picked up 5 ms late, served in 1 ms.
        rec.record(OpenLoopSample {
            intended_ns: 0,
            started_ns: 5_000_000,
            completed_ns: 6_000_000,
            trace: 7,
        });
        let report = rec.report().unwrap();
        assert_eq!(report.corrected.p50, 6_000_000);
        assert_eq!(report.uncorrected.p50, 1_000_000);
        assert_eq!(report.backlog.p50, 5_000_000);
        assert_eq!(report.gap_p99_ns(), 5_000_000);
    }

    #[test]
    fn slowest_ranks_by_corrected_latency() {
        let rec = OpenLoopRecorder::new();
        for (i, backlog) in [0u64, 30_000_000, 2_000_000].iter().enumerate() {
            rec.record(OpenLoopSample {
                intended_ns: 0,
                started_ns: *backlog,
                completed_ns: backlog + 1_000_000,
                trace: i as u64 + 1,
            });
        }
        let top = rec.slowest(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].trace, 2, "largest backlog first");
        assert_eq!(top[1].trace, 3);
    }
}
