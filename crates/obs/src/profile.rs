//! Cooperative wall-clock sampling profiler.
//!
//! The trace layer explains *requests* (where one request's latency
//! went); this module explains the *system* — which code paths the
//! worker threads are actually inside, wall-clock weighted, whether or
//! not any request is in flight. Hot paths mark scoped frames
//! ([`ProfilerHandle::frame`]) into a per-thread frame-path slot; a
//! background sampler thread reads every registered thread's current
//! path at a configurable rate and aggregates the observations into
//! collapsed-stack (flamegraph-compatible) counts.
//!
//! # Cost discipline
//!
//! Like `dlhub-fault`, the profiler is built to vanish when disabled:
//! [`ProfilerHandle`] wraps an `Arc<OnceLock<..>>`, so a disabled
//! handle's [`frame`](ProfilerHandle::frame) is one atomic load and a
//! branch — no allocation, no thread-local touch, no registration.
//! Enabled, a frame push is a thread-local lookup, one interned-id
//! store and two epoch stores; the sampler never blocks writers.
//!
//! # Frame protocol (seqlock)
//!
//! Each thread owns one [`ThreadSlot`]: a fixed array of frame-name
//! ids, a depth, and an epoch counter. Only the owning thread writes
//! (frames are scoped guards, and [`FrameGuard`] is `!Send`, so pushes
//! and pops cannot migrate). A writer makes the slot *unstable* by
//! bumping the epoch to an odd value, mutates depth/frames with
//! relaxed stores behind a `Release` fence, then publishes with an
//! even `Release` epoch store. The sampler `Acquire`-loads the epoch,
//! copies the path, issues an `Acquire` fence and re-reads the epoch:
//! any concurrent write changes the epoch, so a torn read can never
//! validate. Samples that fail to stabilize after a few retries are
//! counted against the reserved `(unstable)` frame so the per-thread
//! sample counts still sum to the sampler's total.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use parking_lot::Mutex;
use serde_json::{json, Value};

/// Maximum recorded frame depth per thread; deeper nesting is counted
/// under a `(truncated)` leaf rather than lost.
const MAX_DEPTH: usize = 32;

/// Reserved frame id: the sampler could not get a stable read.
const UNSTABLE: u32 = u32::MAX;
/// Reserved frame id: the thread was deeper than [`MAX_DEPTH`].
const TRUNCATED: u32 = u32::MAX - 1;

/// Sampler retries before giving up on a stable read of one thread.
const SAMPLE_RETRIES: usize = 8;

/// One thread's current frame path, readable by the sampler without
/// stopping the thread. See the module docs for the seqlock protocol.
struct ThreadSlot {
    id: u64,
    epoch: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ThreadSlot {
    fn new(id: u64) -> Self {
        ThreadSlot {
            id,
            epoch: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Owner thread only: enter a frame.
    fn push(&self, frame: u32) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.epoch.store(epoch.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed);
        if depth < MAX_DEPTH {
            self.frames[depth].store(frame, Ordering::Relaxed);
        }
        self.depth.store(depth + 1, Ordering::Relaxed);
        self.epoch.store(epoch.wrapping_add(2), Ordering::Release);
    }

    /// Owner thread only: leave the innermost frame.
    fn pop(&self) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.epoch.store(epoch.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed);
        self.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
        self.epoch.store(epoch.wrapping_add(2), Ordering::Release);
    }

    /// Sampler side: read a consistent frame path, or `None` when the
    /// owner kept the slot unstable for [`SAMPLE_RETRIES`] attempts.
    fn sample(&self) -> Option<Vec<u32>> {
        for _ in 0..SAMPLE_RETRIES {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::Relaxed);
            let take = depth.min(MAX_DEPTH);
            let mut path = Vec::with_capacity(take + 1);
            for frame in self.frames.iter().take(take) {
                path.push(frame.load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            if self.epoch.load(Ordering::Relaxed) == before {
                if depth > MAX_DEPTH {
                    path.push(TRUNCATED);
                }
                return Some(path);
            }
        }
        None
    }
}

/// Interned frame names: ids are dense indices into `list`.
#[derive(Default)]
struct NameTable {
    list: Vec<&'static str>,
    index: HashMap<usize, u32>,
}

/// Registered threads plus their display labels (labels outlive the
/// slot so samples attributed to an exited thread stay resolvable).
#[derive(Default)]
struct ThreadRegistry {
    slots: Vec<Arc<ThreadSlot>>,
    labels: HashMap<u64, String>,
    next_id: u64,
}

struct ProfilerInner {
    hz: u32,
    names: Mutex<NameTable>,
    threads: Mutex<ThreadRegistry>,
    /// (thread id, frame path) -> observations.
    stacks: Mutex<HashMap<(u64, Vec<u32>), u64>>,
    total_samples: AtomicU64,
}

impl ProfilerInner {
    fn new(hz: u32) -> Self {
        ProfilerInner {
            hz,
            names: Mutex::new(NameTable::default()),
            threads: Mutex::new(ThreadRegistry::default()),
            stacks: Mutex::new(HashMap::new()),
            total_samples: AtomicU64::new(0),
        }
    }

    fn intern(&self, name: &'static str) -> u32 {
        let mut names = self.names.lock();
        if let Some(&id) = names.index.get(&(name.as_ptr() as usize)) {
            return id;
        }
        // Distinct call sites may pass equal strings at different
        // addresses; fold them onto one id so collapsed stacks merge.
        if let Some(pos) = names.list.iter().position(|n| *n == name) {
            let id = pos as u32;
            names.index.insert(name.as_ptr() as usize, id);
            return id;
        }
        let id = names.list.len() as u32;
        names.list.push(name);
        names.index.insert(name.as_ptr() as usize, id);
        id
    }

    fn register_thread(&self, base: &str) -> Arc<ThreadSlot> {
        let mut threads = self.threads.lock();
        let id = threads.next_id;
        threads.next_id += 1;
        threads.labels.insert(id, format!("{base}#{id}"));
        let slot = Arc::new(ThreadSlot::new(id));
        threads.slots.push(Arc::clone(&slot));
        slot
    }

    /// Take one observation of every live registered thread.
    fn sample_once(&self) -> usize {
        let slots: Vec<Arc<ThreadSlot>> = {
            let mut threads = self.threads.lock();
            // A slot whose only owner is this registry belongs to an
            // exited thread: stop observing it (its accumulated samples
            // and label are retained).
            threads.slots.retain(|slot| Arc::strong_count(slot) > 1);
            threads.slots.clone()
        };
        let mut stacks = self.stacks.lock();
        for slot in &slots {
            let path = slot.sample().unwrap_or_else(|| vec![UNSTABLE]);
            *stacks.entry((slot.id, path)).or_insert(0) += 1;
            self.total_samples.fetch_add(1, Ordering::Relaxed);
        }
        slots.len()
    }

    fn resolve(&self, id: u32, names: &NameTable) -> String {
        match id {
            UNSTABLE => "(unstable)".to_string(),
            TRUNCATED => "(truncated)".to_string(),
            id => names
                .list
                .get(id as usize)
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("(frame-{id})")),
        }
    }

    fn report(&self) -> ProfileReport {
        let names = self.names.lock();
        let labels = self.threads.lock().labels.clone();
        let stacks_raw = self.stacks.lock();
        let mut per_thread: HashMap<u64, u64> = HashMap::new();
        let mut stacks = Vec::with_capacity(stacks_raw.len());
        for ((thread, path), &count) in stacks_raw.iter() {
            *per_thread.entry(*thread).or_insert(0) += count;
            let label = labels
                .get(thread)
                .cloned()
                .unwrap_or_else(|| format!("thread#{thread}"));
            let frames: Vec<String> = if path.is_empty() {
                vec!["(idle)".to_string()]
            } else {
                path.iter().map(|&id| self.resolve(id, &names)).collect()
            };
            stacks.push(CollapsedStack {
                thread: label,
                frames,
                count,
            });
        }
        stacks.sort_by(|a, b| (&a.thread, &a.frames).cmp(&(&b.thread, &b.frames)));
        let mut threads: Vec<ThreadSamples> = per_thread
            .into_iter()
            .map(|(id, samples)| ThreadSamples {
                thread: labels
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| format!("thread#{id}")),
                samples,
            })
            .collect();
        threads.sort_by(|a, b| a.thread.cmp(&b.thread));
        ProfileReport {
            hz: self.hz,
            total_samples: self.total_samples.load(Ordering::Relaxed),
            threads,
            stacks,
        }
    }
}

/// One observed frame path and how many times the sampler saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsedStack {
    /// Owning thread's display label (`name#id`).
    pub thread: String,
    /// Root-to-leaf frame names; `["(idle)"]` for an empty path.
    pub frames: Vec<String>,
    /// Observations of exactly this path on this thread.
    pub count: u64,
}

/// Per-thread observation totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSamples {
    /// Thread display label.
    pub thread: String,
    /// Total samples attributed to the thread.
    pub samples: u64,
}

/// An aggregated profile: every (thread, path) the sampler observed.
///
/// Invariant: `total_samples` equals both the sum of
/// `threads[i].samples` and the sum of `stacks[i].count` — every
/// observation lands in exactly one collapsed stack.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Configured sampling rate (0 = manual sampling only).
    pub hz: u32,
    /// Observations taken since enablement.
    pub total_samples: u64,
    /// Per-thread totals.
    pub threads: Vec<ThreadSamples>,
    /// Collapsed stacks, sorted by thread then path.
    pub stacks: Vec<CollapsedStack>,
}

impl ProfileReport {
    /// Render `thread;frame;frame count` lines — the collapsed-stack
    /// format `flamegraph.pl` and speedscope ingest directly.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for stack in &self.stacks {
            out.push_str(&stack.thread);
            for frame in &stack.frames {
                out.push(';');
                out.push_str(frame);
            }
            out.push(' ');
            out.push_str(&stack.count.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON for bench artifacts and the CLI `--json` flag.
    pub fn to_json(&self) -> Value {
        json!({
            "hz": self.hz,
            "total_samples": self.total_samples,
            "threads": self.threads.iter().map(|t| json!({
                "thread": t.thread,
                "samples": t.samples,
            })).collect::<Vec<_>>(),
            "stacks": self.stacks.iter().map(|s| json!({
                "thread": s.thread,
                "frames": s.frames,
                "count": s.count,
            })).collect::<Vec<_>>(),
        })
    }
}

struct LocalEntry {
    key: usize,
    inner: Weak<ProfilerInner>,
    slot: Arc<ThreadSlot>,
    /// Per-thread intern cache keyed by the name literal's address, so
    /// the steady-state frame push never takes the name-table lock.
    names: HashMap<usize, u32>,
}

thread_local! {
    static LOCAL: RefCell<Vec<LocalEntry>> = const { RefCell::new(Vec::new()) };
}

/// Cloneable handle to one deployment's profiler. Default-constructed
/// handles are disabled and statically near-free (see module docs);
/// [`enable`](ProfilerHandle::enable) flips every clone at once.
#[derive(Clone, Default)]
pub struct ProfilerHandle {
    shared: Arc<OnceLock<Arc<ProfilerInner>>>,
}

impl ProfilerHandle {
    /// A disabled handle (same as `default()`).
    pub fn disabled() -> Self {
        ProfilerHandle::default()
    }

    /// Enable profiling at `hz` samples per second; `hz == 0` skips the
    /// background sampler (tests drive [`sample_now`](Self::sample_now)
    /// deterministically instead). The first enable wins; returns
    /// whether this call did the enabling.
    pub fn enable(&self, hz: u32) -> bool {
        let mut created = false;
        let inner = self.shared.get_or_init(|| {
            created = true;
            Arc::new(ProfilerInner::new(hz))
        });
        if created && hz > 0 {
            let weak = Arc::downgrade(inner);
            let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
            std::thread::Builder::new()
                .name("dlhub-profile-sampler".to_string())
                .spawn(move || loop {
                    std::thread::sleep(period);
                    // The profiler died with its deployment: exit.
                    let Some(inner) = weak.upgrade() else { break };
                    inner.sample_once();
                })
                .expect("spawn profiler sampler");
        }
        created
    }

    /// Whether any clone of this handle has been enabled.
    pub fn enabled(&self) -> bool {
        self.shared.get().is_some()
    }

    /// Mark a scoped frame on the current thread. Disabled: one atomic
    /// load and a branch. Enabled: the frame is visible to the sampler
    /// until the returned guard drops.
    pub fn frame(&self, name: &'static str) -> FrameGuard {
        let Some(inner) = self.shared.get() else {
            return FrameGuard::noop();
        };
        let key = Arc::as_ptr(inner) as usize;
        LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                // Key equality is necessary but not sufficient: a dead
                // profiler's allocation can be reused by a live one at
                // the same address, so a matching entry must also still
                // hold its profiler alive.
                let idx = match local
                    .iter()
                    .position(|e| e.key == key && e.inner.strong_count() > 0)
                {
                    Some(idx) => idx,
                    None => {
                        local.retain(|e| e.inner.strong_count() > 0);
                        let base = std::thread::current()
                            .name()
                            .map(str::to_string)
                            .unwrap_or_else(|| "thread".to_string());
                        local.push(LocalEntry {
                            key,
                            inner: Arc::downgrade(inner),
                            slot: inner.register_thread(&base),
                            names: HashMap::new(),
                        });
                        local.len() - 1
                    }
                };
                let entry = &mut local[idx];
                let name_key = name.as_ptr() as usize;
                let id = match entry.names.get(&name_key) {
                    Some(&id) => id,
                    None => {
                        let id = inner.intern(name);
                        entry.names.insert(name_key, id);
                        id
                    }
                };
                entry.slot.push(id);
                FrameGuard {
                    slot: Some(Arc::clone(&entry.slot)),
                    _not_send: PhantomData,
                }
            })
            .unwrap_or_else(|_| FrameGuard::noop())
    }

    /// Synchronously sample every registered thread once (deterministic
    /// alternative to the background sampler). Returns the number of
    /// threads observed; 0 when disabled.
    pub fn sample_now(&self) -> usize {
        match self.shared.get() {
            Some(inner) => inner.sample_once(),
            None => 0,
        }
    }

    /// Total observations taken so far (0 when disabled).
    pub fn total_samples(&self) -> u64 {
        self.shared
            .get()
            .map(|inner| inner.total_samples.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Aggregated collapsed-stack report; `None` when disabled.
    pub fn report(&self) -> Option<ProfileReport> {
        self.shared.get().map(|inner| inner.report())
    }
}

/// Scope guard for one profiled frame; pops the frame on drop. `!Send`
/// so pushes and pops stay on the owning thread (the seqlock writer
/// side is single-threaded by construction).
pub struct FrameGuard {
    slot: Option<Arc<ThreadSlot>>,
    _not_send: PhantomData<*const ()>,
}

impl FrameGuard {
    fn noop() -> Self {
        FrameGuard {
            slot: None,
            _not_send: PhantomData,
        }
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn sum_stacks(report: &ProfileReport) -> u64 {
        report.stacks.iter().map(|s| s.count).sum()
    }

    fn sum_threads(report: &ProfileReport) -> u64 {
        report.threads.iter().map(|t| t.samples).sum()
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let profiler = ProfilerHandle::disabled();
        {
            let _a = profiler.frame("outer");
            let _b = profiler.frame("inner");
        }
        assert!(!profiler.enabled());
        assert_eq!(profiler.sample_now(), 0);
        assert_eq!(profiler.total_samples(), 0);
        assert!(profiler.report().is_none());
    }

    #[test]
    fn samples_attribute_to_the_current_frame_path() {
        let profiler = ProfilerHandle::disabled();
        profiler.enable(0);
        {
            let _outer = profiler.frame("serving.run");
            profiler.sample_now();
            {
                let _inner = profiler.frame("memo.get");
                profiler.sample_now();
                profiler.sample_now();
            }
            profiler.sample_now();
        }
        profiler.sample_now();
        let report = profiler.report().unwrap();
        assert_eq!(report.total_samples, 5);
        assert_eq!(sum_stacks(&report), 5);
        assert_eq!(sum_threads(&report), 5);
        let count = |frames: &[&str]| {
            report
                .stacks
                .iter()
                .find(|s| s.frames == frames)
                .map(|s| s.count)
                .unwrap_or(0)
        };
        assert_eq!(count(&["serving.run"]), 2);
        assert_eq!(count(&["serving.run", "memo.get"]), 2);
        assert_eq!(count(&["(idle)"]), 1);
        let collapsed = profiler.report().unwrap().render_collapsed();
        assert!(collapsed.contains(";serving.run;memo.get 2"), "{collapsed}");
    }

    #[test]
    fn clones_share_one_profiler_and_late_enable_reaches_old_clones() {
        let a = ProfilerHandle::disabled();
        let b = a.clone();
        assert!(!b.enabled());
        a.enable(0);
        assert!(b.enabled());
        let _f = b.frame("shared");
        b.sample_now();
        assert_eq!(a.total_samples(), 1);
    }

    #[test]
    fn equal_names_from_different_sites_collapse_onto_one_frame() {
        let profiler = ProfilerHandle::disabled();
        profiler.enable(0);
        // Same contents, different static allocations.
        let name_a: &'static str = "same.frame";
        let name_b: &'static str = Box::leak("same.frame".to_string().into_boxed_str());
        {
            let _f = profiler.frame(name_a);
            profiler.sample_now();
        }
        {
            let _f = profiler.frame(name_b);
            profiler.sample_now();
        }
        let report = profiler.report().unwrap();
        let hits: Vec<_> = report
            .stacks
            .iter()
            .filter(|s| s.frames == ["same.frame"])
            .collect();
        assert_eq!(hits.len(), 1, "{report:?}");
        assert_eq!(hits[0].count, 2);
    }

    #[test]
    fn depth_overflow_truncates_without_losing_samples() {
        let profiler = ProfilerHandle::disabled();
        profiler.enable(0);
        let mut guards = Vec::new();
        for _ in 0..(MAX_DEPTH + 3) {
            guards.push(profiler.frame("deep"));
        }
        profiler.sample_now();
        drop(guards);
        profiler.sample_now();
        let report = profiler.report().unwrap();
        assert_eq!(report.total_samples, 2);
        assert_eq!(sum_stacks(&report), 2);
        let deep = report
            .stacks
            .iter()
            .find(|s| s.frames.last().map(String::as_str) == Some("(truncated)"))
            .expect("truncated sample recorded");
        assert_eq!(deep.frames.len(), MAX_DEPTH + 1);
        assert_eq!(deep.count, 1);
    }

    #[test]
    fn concurrent_sampling_never_tears_a_path() {
        // A worker thrashes push/pop while the sampler reads; every
        // validated sample must be a prefix of the worker's only legal
        // stack [a, b, c] — a torn read would produce something else.
        let profiler = ProfilerHandle::disabled();
        profiler.enable(0);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let profiler = profiler.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _a = profiler.frame("a");
                    let _b = profiler.frame("b");
                    let _c = profiler.frame("c");
                }
            })
        };
        for _ in 0..5_000 {
            profiler.sample_now();
        }
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        let report = profiler.report().unwrap();
        assert_eq!(report.total_samples, sum_stacks(&report));
        let legal: Vec<Vec<&str>> = vec![
            vec!["(idle)"],
            vec!["(unstable)"],
            vec!["a"],
            vec!["a", "b"],
            vec!["a", "b", "c"],
        ];
        for stack in &report.stacks {
            let frames: Vec<&str> = stack.frames.iter().map(String::as_str).collect();
            assert!(legal.contains(&frames), "torn path sampled: {frames:?}");
        }
    }

    #[test]
    fn background_sampler_accumulates_and_sums() {
        let profiler = ProfilerHandle::disabled();
        profiler.enable(997);
        let _f = profiler.frame("busy");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while profiler.total_samples() < 20 {
            assert!(
                std::time::Instant::now() < deadline,
                "sampler made no progress"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = profiler.report().unwrap();
        assert!(report.total_samples >= 20);
        assert_eq!(sum_stacks(&report), report.total_samples);
        assert_eq!(sum_threads(&report), report.total_samples);
        assert!(report
            .stacks
            .iter()
            .any(|s| s.frames == ["busy"] && s.count > 0));
    }
}
